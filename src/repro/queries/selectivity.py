"""Selectivity estimation for indoor range queries (extension).

The paper's future work (Section VII) suggests estimating the
selectivity of distance-aware queries for optimisation.  This module
offers two estimators, both running only the cheap phases:

* :func:`candidate_upper_bound` — the filtering-phase candidate count;
  a *provable* upper bound on the result size (Lemma 6: no false
  negatives, so every true hit is a candidate).
* :func:`estimate_irq_result_size` — a refined estimate that runs the
  subgraph + pruning phases and scores each undecided object by where
  the query range falls inside its distance interval (linear
  interpolation); sure-accepts count 1, sure-rejects 0.

Neither touches the refinement phase, so both are far cheaper than
evaluating the query.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.engine import (
    filtering_phase,
    locate_source,
    pruning_phase,
    subgraph_phase,
)


def candidate_upper_bound(index: CompositeIndex, q: Point, r: float) -> int:
    """Filtering-phase candidate count — an upper bound on |iRQ(q, r)|."""
    if r < 0:
        raise QueryError(f"negative query range {r}")
    filtered, _ = filtering_phase(index, q, r, use_skeleton=True)
    return len(filtered.objects)


def estimate_irq_result_size(
    index: CompositeIndex, q: Point, r: float
) -> float:
    """Estimated |iRQ(q, r)| from distance intervals only.

    For an undecided object with interval ``[lo, hi]`` straddling
    ``r``, the estimator assumes the (unknown) exact expected distance
    is uniform in the interval and scores ``(r - lo) / (hi - lo)``.
    """
    if r < 0:
        raise QueryError(f"negative query range {r}")
    source = locate_source(index, q)
    filtered, _ = filtering_phase(index, q, r, use_skeleton=True)
    if not filtered.objects:
        return 0.0
    dd, _ = subgraph_phase(index, q, source, filtered.partitions, cutoff=r)
    intervals, _ = pruning_phase(
        index, q, filtered.objects, dd, search_radius=r
    )
    estimate = 0.0
    for obj in filtered.objects:
        interval = intervals[obj.object_id]
        if interval.entirely_within(r):
            estimate += 1.0
        elif interval.entirely_beyond(r):
            continue
        else:
            width = interval.upper - interval.lower
            if width <= 0.0 or width != width or width == float("inf"):
                estimate += 0.5  # degenerate interval: coin flip
            else:
                estimate += min(
                    1.0, max(0.0, (r - interval.lower) / width)
                )
    return estimate
