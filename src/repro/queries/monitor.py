"""Continuous query monitoring over streams of object updates.

The paper evaluates one-shot queries, but its setting is *moving*
objects: positions change continuously while the composite index absorbs
updates cheaply (Section III-C).  A :class:`QueryMonitor` closes the
loop: it keeps standing iRQ and ikNNQ queries registered and maintains
each result set **incrementally** as the population streams position
updates through :meth:`repro.index.composite.CompositeIndex.update_objects`.

The delta/shard contract
------------------------

The monitor's public mutation API speaks *deltas*, not result sets:
``apply_moves``, ``apply_insert``, ``apply_delete`` and ``apply_event``
each return a :class:`~repro.queries.deltas.DeltaBatch` holding one
:class:`~repro.queries.deltas.ResultDelta` — ``(entered, left,
distance_changed)`` — per standing query whose result changed, so
downstream consumers never diff result sets themselves.  Registration
and deregistration emit deltas too, and a topology resync triggered
*outside* a mutation (an external ``topology_version`` bump noticed on
result access) parks its deltas until the next mutation or an explicit
:meth:`drain_pending_deltas`.  Replaying every delta for one query from
the empty state reproduces its current result exactly — the property
``tests/properties/test_prop_deltas.py`` enforces.

Two maintenance entry points exist per mutation: the ``apply_*``
methods own the index (they mutate it, then maintain results), while
the ``ingest_*`` methods maintain results only — they are the hooks the
sharded front-end (:class:`~repro.queries.shard.ShardedMonitor`) uses
to fan one shared index mutation into many per-shard monitors, and
:meth:`influence_radii` exposes the per-query reach (iRQ radius /
current ikNNQ threshold) its router prunes shards with.

The incremental argument reuses the paper's own machinery:

* every standing query keeps a full (unrestricted) single-source
  Dijkstra from its query point, memoised in a
  :class:`~repro.queries.session.QuerySession` — valid until the
  *topology* changes, no matter how objects move (and evicted when the
  last standing query at that point deregisters);
* when one object moves, only the (object, query) pairs are touched:
  the Table III distance interval of the moved object is recomputed
  against the cached search, and usually *decides* membership outright
  (``upper <= r`` / ``lower > r`` for iRQ; ``lower > kth`` for ikNNQ);
* only an undecided pair pays one exact expected-distance refinement,
  and only an ikNNQ whose k-th-distance bound is violated (a member
  drifting past the current threshold, or a member deletion) falls back
  to full re-execution — the counters in :class:`MonitorStats` prove how
  rarely that happens.

Soundness of the ikNNQ maintenance rests on one invariant: *at every
consistent state, each non-member's expected distance is at least the
current k-th member distance* ``tau``.  A member whose refreshed
distance stays ``<= tau`` keeps the invariant (``tau`` can only
shrink); an outsider entering with ``d < tau`` evicts the worst member,
whose distance equals the old ``tau`` and therefore still satisfies the
invariant from the outside.  Every transition that could break the
invariant triggers the full fallback instead.  When the reachable
population drops below ``k`` the result simply shrinks and ``tau``
becomes infinite — every later update is a potential entry.

Topology events (door closures, splits, merges) invalidate every cached
search — the monitor detects the space's ``topology_version`` bump,
re-executes all standing queries once, and resumes incremental
maintenance.
"""

from __future__ import annotations

import itertools
import math
import threading
import warnings
from dataclasses import dataclass, field, fields

from repro.api.specs import KNNSpec, RangeSpec, standing_spec
from repro.distances.bounds import object_bounds
from repro.distances.expected import expected_indoor_distance
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.queries.deltas import DeltaBatch, ResultDelta, diff_results
from repro.queries.knn import ikNNQ
from repro.queries.range_query import iRQ
from repro.queries.session import QuerySession
from repro.space.doors_graph import DoorDistances
from repro.space.events import TopologyEvent

#: Distinguishes "not a member" from a stored ``None`` distance (an iRQ
#: member accepted by bounds alone) in result-dict lookups.
_MISSING = object()


def claim_query_id(
    taken,
    query_id: str | None,
    kind: str,
    counter,
) -> str:
    """Allocate (or validate) a standing-query id against the ids in
    ``taken`` — shared by :class:`QueryMonitor` and the sharded
    front-end so both allocate identically."""
    if query_id is None:
        # Skip over ids the caller claimed explicitly.
        while (query_id := f"{kind}-{next(counter)}") in taken:
            pass
    elif query_id in taken:
        raise QueryError(f"standing query id {query_id!r} already used")
    return query_id


@dataclass
class MonitorStats:
    """Work accounting across the lifetime of one monitor.

    A *pair* is one ``(object update, standing query)`` combination; the
    three pair counters partition ``pairs_evaluated`` by the work each
    pair cost:

    * ``pairs_skipped`` — decided without any exact distance work:
      either by the safe Table III interval alone, or trivially (a
      deletion touching a non-member, or an iRQ member simply dropped);
    * ``pairs_refined`` — needed one exact expected-distance evaluation
      against the cached full search;
    * ``pairs_recomputed`` — violated a safe bound and escalated to full
      re-execution of the standing query (a pair that refined first and
      then escalated counts only here).

    Query-level work is counted separately, in units of *standing-query
    re-executions*: ``full_recomputes`` counts bound-violation fallbacks
    (one per escalated pair, but a different dimension — one
    re-execution touches the whole population, not one pair) and
    ``event_recomputes`` counts re-executions forced by a
    ``topology_version`` bump.  ``recompute_ratio`` therefore divides
    pair-level by pair-level and ``recomputes_per_update`` query-level
    by updates — the two never mix.
    """

    updates_seen: int = 0
    pairs_evaluated: int = 0
    pairs_skipped: int = 0
    pairs_refined: int = 0
    pairs_recomputed: int = 0
    full_recomputes: int = 0
    event_recomputes: int = 0
    topology_invalidations: int = 0
    deltas_emitted: int = 0

    @property
    def recompute_ratio(self) -> float:
        """Share of *pairs* that escalated to full re-execution; the
        monitor provably skips work whenever this is < 1.0."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_recomputed / self.pairs_evaluated

    @property
    def skip_ratio(self) -> float:
        """Share of pairs decided without exact distance work."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_evaluated

    @property
    def refine_ratio(self) -> float:
        """Share of pairs that paid exactly one exact refinement."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_refined / self.pairs_evaluated

    @property
    def recomputes_per_update(self) -> float:
        """Standing-query re-executions (bound fallbacks) per absorbed
        update — the query-level fallback rate."""
        if self.updates_seen == 0:
            return 0.0
        return self.full_recomputes / self.updates_seen

    def merge(self, other: "MonitorStats") -> "MonitorStats":
        """Counter-wise sum (sharded monitors aggregate shard stats).

        ``updates_seen`` sums too — callers aggregating shards that saw
        the *same* updates must override it (see
        :attr:`repro.queries.shard.ShardedMonitor.stats`)."""
        return MonitorStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


@dataclass
class _StandingIRQ:
    """A registered iRQ: ``result`` maps member id -> exact distance,
    or ``None`` for members accepted purely by bounds."""

    query_id: str
    q: Point
    r: float
    result: dict[str, float | None] = field(default_factory=dict)

    def influence_radius(self) -> float:
        """Only objects within this (indoor) distance of ``q`` can
        change the result: the query radius itself."""
        return self.r


@dataclass
class _StandingKNN:
    """A registered ikNNQ: ``result`` maps member id -> exact distance
    (always refined, so the k-th distance threshold is available)."""

    query_id: str
    q: Point
    k: int
    result: dict[str, float] = field(default_factory=dict)

    def kth_distance(self) -> float:
        """The maintenance threshold ``tau``: the worst member distance
        when the result is full, else infinity (any reachable object
        could still enter)."""
        if len(self.result) < self.k:
            return math.inf
        return max(self.result.values())

    def influence_radius(self) -> float:
        """Only objects within the current ``tau`` can change the
        result (members always are; an unfull result reaches forever)."""
        return self.kth_distance()


class QueryMonitor:
    """Standing iRQ/ikNNQ queries maintained over streaming updates.

    Usage::

        monitor = QueryMonitor(index)
        kiosk = monitor.register(RangeSpec(q_kiosk, 60.0))
        desk = monitor.register(KNNSpec(q_desk, 5))
        for batch in stream.batches(100, 50):
            for delta in monitor.apply_moves(batch):   # index + results
                push_to_subscribers(delta)             # ...updated
        monitor.apply_event(CloseDoor("d7"))           # full resync, once

    The monitor owns the update path: :meth:`apply_moves`,
    :meth:`apply_insert`, :meth:`apply_delete` and :meth:`apply_event`
    mutate the underlying index *and* maintain every standing result,
    returning the per-query deltas.  The ``ingest_*`` twins maintain
    results for an index mutation that already happened (the sharded
    front-end's entry points).  External topology mutations are also
    tolerated — any ``topology_version`` bump is detected on the next
    access, all standing queries resynchronise, and the resync deltas
    surface on the next mutation or :meth:`drain_pending_deltas`.

    ``session`` may be shared between monitors over the same index
    (shards share one cache so a query point pays its Dijkstra once).
    """

    def __init__(
        self, index: CompositeIndex, session: QuerySession | None = None
    ) -> None:
        if session is not None and session.index is not index:
            raise QueryError("session must wrap the monitor's own index")
        self.index = index
        self.session = session or QuerySession(index)
        self.stats = MonitorStats()
        self._queries: dict[str, _StandingIRQ | _StandingKNN] = {}
        self._id_counter = itertools.count(1)
        self._topology_version = index.space.topology_version
        self._pending: list[ResultDelta] = []
        # Serialises the maintenance-only ingest hooks: the parallel
        # sharded front-end runs different shards' hooks on pool
        # threads, and this lock is what makes one *shard* safe even if
        # a caller ever routes two batches into it concurrently.
        self._ingest_lock = threading.Lock()
        # Pre-mutation copies of the results actually touched in the
        # current mutation scope (lazy: an untouched query costs
        # nothing), consumed by _collect().
        self._before: dict[str, dict[str, float | None]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self,
        spec: RangeSpec | KNNSpec,
        query_id: str | None = None,
    ) -> str:
        """Register a standing query from its declarative spec; returns
        its id.  The one registration path: every surface (sharded
        front-end, serving layer, :class:`repro.api.QueryService`)
        funnels through here, so capability plumbing happens once.  The
        initial result is emitted as a ``register`` delta (pending
        until the next mutation / drain)."""
        spec = standing_spec(spec)
        query_id = self._claim_id(query_id, spec.kind)
        if isinstance(spec, RangeSpec):
            sq: _StandingIRQ | _StandingKNN = _StandingIRQ(
                query_id, spec.q, spec.r
            )
        else:
            sq = _StandingKNN(query_id, spec.q, spec.k)
        self._register(sq)
        return query_id

    def register_irq(
        self, q: Point, r: float, query_id: str | None = None
    ) -> str:
        """Deprecated shim: use ``register(RangeSpec(q, r))``."""
        warnings.warn(
            "register_irq is deprecated; use register(RangeSpec(q, r))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register(RangeSpec(q, r), query_id=query_id)

    def register_iknn(
        self, q: Point, k: int, query_id: str | None = None
    ) -> str:
        """Deprecated shim: use ``register(KNNSpec(q, k))``."""
        warnings.warn(
            "register_iknn is deprecated; use register(KNNSpec(q, k))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.register(KNNSpec(q, k), query_id=query_id)

    def _register(self, sq: _StandingIRQ | _StandingKNN) -> None:
        # Under the ingest lock: a registration from the event-loop
        # thread must not mutate _queries/_pending while an offloaded
        # parallel batch iterates them on a pool thread.
        with self._ingest_lock:
            self._ensure_topology_current()
            # Execute first, commit after: a failing first execution
            # (query point outside every partition, say) must not leave
            # a broken standing query — or its session pin — behind.
            try:
                self._recompute(sq)  # touches sq with its pre-result ({})
            except Exception:
                self._before.pop(sq.query_id, None)
                raise
            self._queries[sq.query_id] = sq
            self.session.pin(sq.q)
            self._pending.extend(self._collect("register"))

    def deregister(self, query_id: str) -> None:
        """Remove a standing query.

        Emits a ``deregister`` delta (every member leaves) and releases
        the query point's pin on the session-cached full Dijkstra; the
        last pin at a point evicts the search, so long-running monitors
        with churning query populations do not accumulate dead searches.
        Pins are counted on the (possibly shared) session itself, so
        monitors sharing one session never evict each other's searches.
        """
        with self._ingest_lock:
            sq = self._queries.pop(query_id, None)
            if sq is None:
                raise QueryError(f"unknown standing query {query_id!r}")
            self._before.pop(query_id, None)
            if sq.result:
                self._push_pending(
                    ResultDelta(
                        query_id,
                        "deregister",
                        left=tuple(sorted(sq.result)),
                    )
                )
            self.session.unpin(sq.q)

    def _claim_id(self, query_id: str | None, kind: str) -> str:
        return claim_query_id(
            self._queries, query_id, kind, self._id_counter
        )

    # ------------------------------------------------------------------
    # result access
    # ------------------------------------------------------------------

    def result_ids(self, query_id: str) -> set[str]:
        """The standing query's current result set (object ids)."""
        return set(self._standing(query_id).result)

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        """Member id -> exact expected distance (``None`` marks an iRQ
        member accepted by bounds alone)."""
        return dict(self._standing(query_id).result)

    def results(self) -> dict[str, set[str]]:
        """Every standing query's current result ids."""
        self._ensure_topology_current()
        return {qid: set(sq.result) for qid, sq in self._queries.items()}

    def query_ids(self) -> list[str]:
        return list(self._queries)

    def query_spec(self, query_id: str) -> RangeSpec | KNNSpec:
        """The declarative :class:`~repro.api.specs.QuerySpec` of a
        standing query (a real spec object — serializable through
        :mod:`repro.api.wire`, re-registrable as-is)."""
        sq = self._queries.get(query_id)
        if sq is None:
            raise QueryError(f"unknown standing query {query_id!r}")
        if isinstance(sq, _StandingIRQ):
            return RangeSpec(sq.q, sq.r)
        return KNNSpec(sq.q, sq.k)

    def influence_radii(self) -> list[tuple[str, Point, float]]:
        """``(query_id, q, reach)`` per standing query: the indoor
        distance beyond which an object provably cannot change the
        result right now (iRQ radius / current ikNNQ ``tau``).  The
        shard router turns these into conservative skip decisions."""
        with self._ingest_lock:
            self._ensure_topology_current()
            return [
                (qid, sq.q, sq.influence_radius())
                for qid, sq in self._queries.items()
            ]

    def influence_radii_by_floor(
        self,
    ) -> dict[int, list[tuple[str, Point, float]]]:
        """:meth:`influence_radii` grouped by the query point's floor —
        the shape the sharded router's per-floor reach table consumes
        (queries on one floor share their z elevation, so their reaches
        bucket into tight same-floor boxes)."""
        with self._ingest_lock:
            self._ensure_topology_current()
            out: dict[int, list[tuple[str, Point, float]]] = {}
            for qid, sq in self._queries.items():
                out.setdefault(sq.q.floor, []).append(
                    (qid, sq.q, sq.influence_radius())
                )
            return out

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._queries

    def _standing(self, query_id: str) -> _StandingIRQ | _StandingKNN:
        self._ensure_topology_current()
        try:
            return self._queries[query_id]
        except KeyError:
            raise QueryError(
                f"unknown standing query {query_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # stream consumption (index mutation + maintenance)
    # ------------------------------------------------------------------

    def apply_moves(self, moves: list[ObjectMove]) -> DeltaBatch:
        """Absorb a batch of position updates: the index takes them via
        its batched path, then every standing result is maintained
        incrementally.  Returns the per-query deltas (plus the moved
        objects in ``batch.moved``)."""
        self._ensure_topology_current()
        moved = self.index.update_objects(moves)
        return self.ingest_moves(moved)

    def apply_insert(self, obj: UncertainObject) -> DeltaBatch:
        """A brand-new object appears (index insert + maintenance)."""
        self._ensure_topology_current()
        self.index.insert_object(obj)
        return self.ingest_insert(obj)

    def apply_delete(self, object_id: str) -> DeltaBatch:
        """An object disappears.  An iRQ just drops it; an ikNNQ that
        loses a member must refill the vacated slot from scratch (the
        refill may come back with fewer than ``k`` members when the
        surviving population runs short).  The removed object rides
        along as ``batch.deleted``."""
        self._ensure_topology_current()
        obj = self.index.delete_object(object_id)
        return self.ingest_delete(object_id, deleted=obj)

    def apply_event(self, event: TopologyEvent) -> DeltaBatch:
        """Apply a topology event through the index, then resynchronise
        every standing query (cached searches are all invalid).  The
        space-level outcome rides along as ``batch.event_result``."""
        result = self.index.apply_event(event)
        self._ensure_topology_current()
        return DeltaBatch(
            deltas=self._drain_pending(), event_result=result
        )

    # ------------------------------------------------------------------
    # maintenance-only ingestion (the sharded front-end's entry points)
    # ------------------------------------------------------------------

    def ingest_moves(self, moved: list[UncertainObject]) -> DeltaBatch:
        """Maintain standing results for objects the *shared* index
        already moved (no index mutation here).  Thread-safe: shards run
        their hooks concurrently under the parallel front-end."""
        with self._ingest_lock:
            self._ensure_topology_current()
            for obj in moved:
                self._absorb_update(obj)
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("move"),
                moved=tuple(moved),
            )

    def ingest_insert(self, obj: UncertainObject) -> DeltaBatch:
        """Maintain standing results for an already-inserted object."""
        with self._ingest_lock:
            self._ensure_topology_current()
            self._absorb_update(obj)
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("insert")
            )

    def ingest_delete(
        self, object_id: str, deleted: UncertainObject | None = None
    ) -> DeltaBatch:
        """Maintain standing results for an already-deleted object."""
        with self._ingest_lock:
            self._ensure_topology_current()
            self.stats.updates_seen += 1
            for sq in self._queries.values():
                self.stats.pairs_evaluated += 1
                if object_id not in sq.result:
                    self.stats.pairs_skipped += 1
                    continue
                if isinstance(sq, _StandingKNN):
                    self.stats.pairs_recomputed += 1
                    self.stats.full_recomputes += 1
                    self._recompute(sq)
                else:
                    self._touch(sq)
                    del sq.result[object_id]
                    self.stats.pairs_skipped += 1
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("delete"),
                deleted=deleted,
            )

    def drain_pending_deltas(self) -> DeltaBatch:
        """Collect deltas parked by out-of-band work: registrations,
        deregistrations, and topology resyncs triggered by result
        access instead of a mutation call."""
        with self._ingest_lock:
            self._ensure_topology_current()
            return DeltaBatch(deltas=self._drain_pending())

    # ------------------------------------------------------------------
    # delta bookkeeping
    # ------------------------------------------------------------------

    def _touch(self, sq: _StandingIRQ | _StandingKNN) -> None:
        """Record ``sq``'s pre-mutation result (first write wins; later
        touches in the same scope are free).  Every code path that
        writes ``sq.result`` calls this first, so _collect() diffs only
        the queries that actually changed."""
        self._before.setdefault(sq.query_id, dict(sq.result))

    def _collect(self, cause: str) -> tuple[ResultDelta, ...]:
        """Close the current mutation scope: diff every touched query
        against its recorded pre-state."""
        if not self._before:
            return ()
        out = []
        for qid, before in self._before.items():
            sq = self._queries.get(qid)
            if sq is None:  # deregistered while touched
                continue
            delta = diff_results(qid, cause, before, sq.result)
            if delta is not None:
                out.append(delta)
        self._before.clear()
        self.stats.deltas_emitted += len(out)
        return tuple(out)

    def _push_pending(self, delta: ResultDelta) -> None:
        self._pending.append(delta)
        self.stats.deltas_emitted += 1

    def _drain_pending(self) -> tuple[ResultDelta, ...]:
        drained = tuple(self._pending)
        self._pending.clear()
        return drained

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def _ensure_topology_current(self) -> None:
        version = self.index.space.topology_version
        if version == self._topology_version:
            return
        self._topology_version = version
        self.stats.topology_invalidations += 1
        for sq in self._queries.values():
            self._recompute(sq)  # touches each query pre-resync
            self.stats.event_recomputes += 1
        self._pending.extend(self._collect("topology"))

    def _absorb_update(self, obj: UncertainObject) -> None:
        self.stats.updates_seen += 1
        for sq in self._queries.values():
            self.stats.pairs_evaluated += 1
            if isinstance(sq, _StandingIRQ):
                self._update_irq(sq, obj)
            else:
                self._update_knn(sq, obj)

    def _update_irq(self, sq: _StandingIRQ, obj: UncertainObject) -> None:
        """Membership of the moved object is re-decided in isolation —
        the cached full search makes the interval machinery of Table III
        sufficient, so no other pair is ever touched."""
        dd = self.session.door_distances(sq.q)
        interval = object_bounds(
            sq.q, obj, dd, self.index.space, self.index.population.grid
        )
        oid = obj.object_id
        if interval.entirely_within(sq.r):
            # A moved member's stored exact distance is stale either
            # way, so the bounds-accepted marker always overwrites it.
            if sq.result.get(oid, _MISSING) is not None:
                self._touch(sq)
                sq.result[oid] = None
            self.stats.pairs_skipped += 1
        elif interval.entirely_beyond(sq.r):
            if oid in sq.result:
                self._touch(sq)
                del sq.result[oid]
            self.stats.pairs_skipped += 1
        else:
            d = self._exact(sq.q, obj, dd)
            self.stats.pairs_refined += 1
            if d <= sq.r:
                if sq.result.get(oid, _MISSING) != d:
                    self._touch(sq)
                    sq.result[oid] = d
            elif oid in sq.result:
                self._touch(sq)
                del sq.result[oid]

    def _update_knn(self, sq: _StandingKNN, obj: UncertainObject) -> None:
        dd = self.session.door_distances(sq.q)
        oid = obj.object_id
        tau = sq.kth_distance()
        if oid in sq.result:
            # A member moved: its stored distance is stale, refine it.
            d = self._exact(sq.q, obj, dd)
            if math.isfinite(d) and d <= tau:
                if sq.result[oid] != d:  # invariant holds; tau shrinks
                    self._touch(sq)
                    sq.result[oid] = d
                self.stats.pairs_refined += 1
            else:
                # The member drifted past the threshold (or became
                # unreachable): an outsider may now beat it.  The pair
                # escalated (not also refined — the pair counters
                # partition pairs_evaluated) and one query-level
                # re-execution was paid.
                self.stats.pairs_recomputed += 1
                self.stats.full_recomputes += 1
                self._recompute(sq)
            return
        if len(sq.result) >= sq.k:
            interval = object_bounds(
                sq.q, obj, dd, self.index.space, self.index.population.grid
            )
            if interval.lower > tau:
                # Certainly no closer than the current k-th member.
                self.stats.pairs_skipped += 1
                return
        d = self._exact(sq.q, obj, dd)
        self.stats.pairs_refined += 1
        if not math.isfinite(d):
            return
        if len(sq.result) < sq.k:
            self._touch(sq)
            sq.result[oid] = d
        elif d < tau:
            self._touch(sq)
            worst = max(sq.result, key=sq.result.__getitem__)
            del sq.result[worst]
            sq.result[oid] = d

    # ------------------------------------------------------------------
    # full re-execution (registration, fallbacks, topology resync)
    # ------------------------------------------------------------------

    def _recompute(self, sq: _StandingIRQ | _StandingKNN) -> None:
        self._touch(sq)  # the whole result is about to be replaced
        dd = self.session.door_distances(sq.q)
        if isinstance(sq, _StandingIRQ):
            res = iRQ(sq.q, sq.r, self.index, precomputed_dd=dd)
            sq.result = dict(res.distances)
        else:
            res = ikNNQ(sq.q, sq.k, self.index, precomputed_dd=dd)
            distances: dict[str, float] = {}
            for obj in res.objects:
                d = res.distances[obj.object_id]
                if d is None:  # accepted by bounds: refine for the tau
                    d = self._exact(sq.q, obj, dd)
                if math.isfinite(d):
                    # An unreachable "member" would poison tau (= max of
                    # the stored distances) forever; with fewer than k
                    # reachable objects the result legitimately shrinks.
                    distances[obj.object_id] = d
            sq.result = distances

    def _exact(
        self, q: Point, obj: UncertainObject, dd: DoorDistances
    ) -> float:
        return expected_indoor_distance(
            q, obj, dd, self.index.space, self.index.population.grid
        ).value
