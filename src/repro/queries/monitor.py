"""Continuous query monitoring over streams of object updates.

The paper evaluates one-shot queries, but its setting is *moving*
objects: positions change continuously while the composite index absorbs
updates cheaply (Section III-C).  A :class:`QueryMonitor` closes the
loop: it keeps standing queries registered and maintains each result
set **incrementally** as the population streams position updates
through :meth:`repro.index.composite.CompositeIndex.update_objects`.

Per-query maintenance is *pluggable*: the monitor holds one
:class:`~repro.queries.maintainers.StandingQuery` maintainer per
registered query and dispatches every per-kind decision — update
absorption, deletions, full re-execution, influence radius, result
snapshots — through that protocol.  The built-in maintainers cover the
paper's standing iRQ/ikNNQ plus the probabilistic-threshold range
query (standing iPRQ); adding a query kind is one maintainer class in
:mod:`repro.queries.maintainers`, nothing here changes.

The delta/shard contract
------------------------

The monitor's public mutation API speaks *deltas*, not result sets:
``apply_moves``, ``apply_insert``, ``apply_delete`` and ``apply_event``
each return a :class:`~repro.queries.deltas.DeltaBatch` holding one
:class:`~repro.queries.deltas.ResultDelta` — ``(entered, left,
distance_changed / probability_changed)`` — per standing query whose
result changed, so downstream consumers never diff result sets
themselves.  Registration and deregistration emit deltas too, and a
topology resync triggered *outside* a mutation (an external
``topology_version`` bump noticed on result access) parks its deltas
until the next mutation or an explicit :meth:`drain_pending_deltas`.
Replaying every delta for one query from the empty state reproduces
its current result exactly — the property
``tests/properties/test_prop_monitor.py`` (and friends) enforce.

Two maintenance entry points exist per mutation: the ``apply_*``
methods own the index (they mutate it, then maintain results), while
the ``ingest_*`` methods maintain results only — they are the hooks the
sharded front-end (:class:`~repro.queries.shard.ShardedMonitor`) uses
to fan one shared index mutation into many per-shard monitors, and
:meth:`influence_radii` exposes the per-query reach (iRQ/iPRQ radius /
current ikNNQ threshold) its router prunes shards with.
:attr:`reach_epoch` counts the moments that reach *may* have moved
(registration churn, or a result change of a maintainer whose reach is
dynamic), so the router can cache its reach tables between batches.

The incremental argument reuses the paper's own machinery:

* every standing query keeps a full (unrestricted) single-source
  Dijkstra from its query point, memoised in a
  :class:`~repro.queries.session.QuerySession` — valid until the
  *topology* changes, no matter how objects move (and evicted when the
  last standing query at that point deregisters);
* when one object moves, only the (object, query) pairs are touched:
  the maintainer re-decides the moved object against the cached search
  using the paper's interval machinery (Table III for distances, the
  subregion mass bounds for probabilities), and usually *decides*
  membership outright;
* only an undecided pair pays one exact refinement, and only a bound
  violation (an ikNNQ member drifting past the current threshold, or a
  member deletion) falls back to full re-execution — the counters in
  :class:`MonitorStats` prove how rarely that happens.

Topology events (door closures, splits, merges) invalidate every cached
search — the monitor detects the space's ``topology_version`` bump,
re-executes all standing queries once, and resumes incremental
maintenance.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, fields

from repro.api.specs import QuerySpec, standing_spec
from repro.distances.batch import pack_block
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.queries.deltas import DeltaBatch, ResultDelta, diff_results
from repro.queries.maintainers import StandingQuery, maintainer_for
from repro.queries.session import QuerySession
from repro.space.events import TopologyEvent


def claim_query_id(
    taken,
    query_id: str | None,
    kind: str,
    counter,
) -> str:
    """Allocate (or validate) a standing-query id against the ids in
    ``taken`` — shared by :class:`QueryMonitor` and the sharded
    front-end so both allocate identically."""
    if query_id is None:
        # Skip over ids the caller claimed explicitly.
        while (query_id := f"{kind}-{next(counter)}") in taken:
            pass
    elif query_id in taken:
        raise QueryError(f"standing query id {query_id!r} already used")
    return query_id


@dataclass
class MonitorStats:
    """Work accounting across the lifetime of one monitor.

    A *pair* is one ``(object update, standing query)`` combination; the
    three pair counters partition ``pairs_evaluated`` by the work each
    pair cost:

    * ``pairs_skipped`` — decided without any exact distance work:
      either by the safe interval bounds alone, or trivially (a
      deletion touching a non-member, or an iRQ/iPRQ member simply
      dropped);
    * ``pairs_refined`` — needed one exact refinement (an expected
      distance, or an iPRQ qualifying probability) against the cached
      full search;
    * ``pairs_recomputed`` — violated a safe bound and escalated to full
      re-execution of the standing query (a pair that refined first and
      then escalated counts only here).

    Query-level work is counted separately, in units of *standing-query
    re-executions*: ``full_recomputes`` counts bound-violation fallbacks
    (one per escalated pair, but a different dimension — one
    re-execution touches the whole population, not one pair) and
    ``event_recomputes`` counts re-executions forced by a
    ``topology_version`` bump.  ``recompute_ratio`` therefore divides
    pair-level by pair-level and ``recomputes_per_update`` query-level
    by updates — the two never mix.
    """

    updates_seen: int = 0
    pairs_evaluated: int = 0
    pairs_skipped: int = 0
    pairs_refined: int = 0
    pairs_recomputed: int = 0
    full_recomputes: int = 0
    event_recomputes: int = 0
    topology_invalidations: int = 0
    deltas_emitted: int = 0
    #: Pairs dispatched through the vectorized bounds kernel
    #: (``kernel="vector"`` move batches hitting batch-aware
    #: maintainers).  Always 0 under ``kernel="scalar"``.
    kernel_pairs: int = 0
    #: Of :attr:`kernel_pairs`, those the kernel's bounds decided
    #: without exact refinement (the batch-path share of
    #: ``pairs_skipped``).
    kernel_pruned: int = 0
    #: Pairs a ``kernel="vector"`` monitor had to absorb through the
    #: scalar per-object path because the maintainer does not implement
    #: the batch hook (e.g. occupancy watches).
    kernel_fallbacks: int = 0

    @property
    def recompute_ratio(self) -> float:
        """Share of *pairs* that escalated to full re-execution; the
        monitor provably skips work whenever this is < 1.0."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_recomputed / self.pairs_evaluated

    @property
    def skip_ratio(self) -> float:
        """Share of pairs decided without exact distance work."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_evaluated

    @property
    def refine_ratio(self) -> float:
        """Share of pairs that paid exactly one exact refinement."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_refined / self.pairs_evaluated

    @property
    def recomputes_per_update(self) -> float:
        """Standing-query re-executions (bound fallbacks) per absorbed
        update — the query-level fallback rate."""
        if self.updates_seen == 0:
            return 0.0
        return self.full_recomputes / self.updates_seen

    def merge(self, other: "MonitorStats") -> "MonitorStats":
        """Counter-wise sum (sharded monitors aggregate shard stats).

        ``updates_seen`` sums too — callers aggregating shards that saw
        the *same* updates must override it (see
        :attr:`repro.queries.shard.ShardedMonitor.stats`)."""
        return MonitorStats(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )


class QueryMonitor:
    """Standing queries maintained over streaming updates.

    Usage::

        monitor = QueryMonitor(index)
        kiosk = monitor.register(RangeSpec(q_kiosk, 60.0))
        desk = monitor.register(KNNSpec(q_desk, 5))
        vip = monitor.register(ProbRangeSpec(q_door, 30.0, 0.8))
        for batch in stream.batches(100, 50):
            for delta in monitor.apply_moves(batch):   # index + results
                push_to_subscribers(delta)             # ...updated
        monitor.apply_event(CloseDoor("d7"))           # full resync, once

    The monitor owns the update path: :meth:`apply_moves`,
    :meth:`apply_insert`, :meth:`apply_delete` and :meth:`apply_event`
    mutate the underlying index *and* maintain every standing result,
    returning the per-query deltas.  The ``ingest_*`` twins maintain
    results for an index mutation that already happened (the sharded
    front-end's entry points).  External topology mutations are also
    tolerated — any ``topology_version`` bump is detected on the next
    access, all standing queries resynchronise, and the resync deltas
    surface on the next mutation or :meth:`drain_pending_deltas`.

    ``session`` may be shared between monitors over the same index
    (shards share one cache so a query point pays its Dijkstra once).
    """

    def __init__(
        self,
        index: CompositeIndex,
        session: QuerySession | None = None,
        kernel: str = "scalar",
    ) -> None:
        if session is not None and session.index is not index:
            raise QueryError("session must wrap the monitor's own index")
        if kernel not in ("scalar", "vector"):
            raise QueryError(
                f"kernel must be 'scalar' or 'vector', got {kernel!r}"
            )
        self.index = index
        self.kernel = kernel
        self.session = session or QuerySession(index)
        self.stats = MonitorStats()
        self._queries: dict[str, StandingQuery] = {}
        self._id_counter = itertools.count(1)
        self._topology_version = index.space.topology_version
        self._pending: list[ResultDelta] = []
        #: Bumped whenever the per-query influence radii *may* have
        #: changed: registration churn, or an emitted delta for a
        #: dynamic-reach maintainer (an ikNNQ whose ``tau`` moved).
        #: The sharded router caches its reach tables against this.
        self.reach_epoch = 0
        # Serialises the maintenance-only ingest hooks: the parallel
        # sharded front-end runs different shards' hooks on pool
        # threads, and this lock is what makes one *shard* safe even if
        # a caller ever routes two batches into it concurrently.
        self._ingest_lock = threading.Lock()
        # Pre-mutation copies of the results actually touched in the
        # current mutation scope (lazy: an untouched query costs
        # nothing), consumed by _collect().
        self._before: dict[str, dict[str, float | None]] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(
        self,
        spec: QuerySpec,
        query_id: str | None = None,
    ) -> str:
        """Register a standing query from its declarative spec; returns
        its id.  The one registration path: every surface (sharded
        front-end, serving layer, :class:`repro.api.QueryService`)
        funnels through here, and the maintainer registry in
        :mod:`repro.queries.maintainers` supplies the per-kind
        maintenance — so a new watchable query kind needs no change
        here.  The initial result is emitted as a ``register`` delta
        (pending until the next mutation / drain)."""
        spec = standing_spec(spec)
        query_id = self._claim_id(query_id, spec.kind)
        self._register(maintainer_for(spec, query_id, self))
        return query_id

    def _register(self, sq: StandingQuery) -> None:
        # Under the ingest lock: a registration from the event-loop
        # thread must not mutate _queries/_pending while an offloaded
        # parallel batch iterates them on a pool thread.
        with self._ingest_lock:
            self._ensure_topology_current()
            # Execute first, commit after: a failing first execution
            # (query point outside every partition, say) must not leave
            # a broken standing query — or its session pin — behind.
            try:
                sq.recompute()  # touches sq with its pre-result ({})
            except Exception:
                self._before.pop(sq.query_id, None)
                raise
            self._queries[sq.query_id] = sq
            self.session.pin(sq.q)
            self.reach_epoch += 1
            self._pending.extend(self._collect("register"))

    def restore_query(
        self, spec: QuerySpec, query_id: str, state
    ) -> None:
        """Reinstate a checkpointed standing query *exactly*: the
        maintainer is constructed from ``spec`` and handed the captured
        :meth:`~repro.queries.maintainers.StandingQuery.snapshot`
        ``state`` via ``restore()`` — no recompute, no register delta,
        no ``reach_epoch`` bump.  The restore path of
        :mod:`repro.persist` uses this so a restored monitor is
        bit-identical to the checkpointed one (identical deltas from
        identical subsequent updates); the caller owns restoring
        ``reach_epoch`` itself."""
        spec = standing_spec(spec)
        with self._ingest_lock:
            if query_id in self._queries:
                raise QueryError(
                    f"standing query id {query_id!r} already used"
                )
            sq = maintainer_for(spec, query_id, self)
            sq.restore(state)
            self._queries[query_id] = sq
            self.session.pin(sq.q)

    def deregister(self, query_id: str) -> None:
        """Remove a standing query.

        Emits a ``deregister`` delta (every member leaves) and releases
        the query point's pin on the session-cached full Dijkstra; the
        last pin at a point evicts the search, so long-running monitors
        with churning query populations do not accumulate dead searches.
        Pins are counted on the (possibly shared) session itself, so
        monitors sharing one session never evict each other's searches.
        """
        with self._ingest_lock:
            sq = self._queries.pop(query_id, None)
            if sq is None:
                raise QueryError(f"unknown standing query {query_id!r}")
            self._before.pop(query_id, None)
            self.reach_epoch += 1
            if sq.result:
                self._push_pending(
                    ResultDelta(
                        query_id,
                        "deregister",
                        left=tuple(sorted(sq.result)),
                    )
                )
            self.session.unpin(sq.q)

    def _claim_id(self, query_id: str | None, kind: str) -> str:
        return claim_query_id(
            self._queries, query_id, kind, self._id_counter
        )

    # ------------------------------------------------------------------
    # result access
    # ------------------------------------------------------------------

    def result_ids(self, query_id: str) -> set[str]:
        """The standing query's current result set (object ids)."""
        return set(self._standing(query_id).result)

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        """Member id -> per-member annotation: the exact expected
        distance (or, for a standing iPRQ, the exact qualifying
        probability), with ``None`` marking a member accepted by bounds
        alone.  Reads the *published* result — distinct from
        :meth:`snapshot_query`, whose payload is the maintainer's full
        persistence state (possibly more than the result)."""
        return dict(self._standing(query_id).result)

    def snapshot_query(self, query_id: str):
        """The standing query's full persistence state — the value its
        maintainer's ``restore()`` reinstates exactly (see
        :meth:`restore_query`)."""
        return self._standing(query_id).snapshot()

    def snapshot_queries(self) -> list[tuple[str, QuerySpec, object]]:
        """``(query_id, spec, state)`` for every standing query, in
        registration order — the order matters: the checkpoint restores
        queries in this order so delta *emission* order (dict iteration
        over ``_queries``) survives the round trip."""
        with self._ingest_lock:
            self._ensure_topology_current()
            return [
                (qid, sq.spec(), sq.snapshot())
                for qid, sq in self._queries.items()
            ]

    def results(self) -> dict[str, set[str]]:
        """Every standing query's current result ids."""
        self._ensure_topology_current()
        return {qid: set(sq.result) for qid, sq in self._queries.items()}

    def query_ids(self) -> list[str]:
        return list(self._queries)

    def query_spec(self, query_id: str) -> QuerySpec:
        """The declarative :class:`~repro.api.specs.QuerySpec` of a
        standing query (a real spec object — serializable through
        :mod:`repro.api.wire`, re-registrable as-is)."""
        sq = self._queries.get(query_id)
        if sq is None:
            raise QueryError(f"unknown standing query {query_id!r}")
        return sq.spec()

    def influence_radii(self) -> list[tuple[str, Point, float]]:
        """``(query_id, q, reach)`` per standing query: the indoor
        distance beyond which an object provably cannot change the
        result right now (iRQ/iPRQ radius / current ikNNQ ``tau``).
        The shard router turns these into conservative skip decisions."""
        with self._ingest_lock:
            self._ensure_topology_current()
            return [
                (qid, sq.q, sq.influence_radius())
                for qid, sq in self._queries.items()
            ]

    def influence_radii_by_floor(
        self,
    ) -> dict[int, list[tuple[str, Point, float]]]:
        """:meth:`influence_radii` grouped by the query point's floor —
        the shape the sharded router's per-floor reach table consumes
        (queries on one floor share their z elevation, so their reaches
        bucket into tight same-floor boxes)."""
        with self._ingest_lock:
            self._ensure_topology_current()
            out: dict[int, list[tuple[str, Point, float]]] = {}
            for qid, sq in self._queries.items():
                out.setdefault(sq.q.floor, []).append(
                    (qid, sq.q, sq.influence_radius())
                )
            return out

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._queries

    def _standing(self, query_id: str) -> StandingQuery:
        self._ensure_topology_current()
        try:
            return self._queries[query_id]
        except KeyError:
            raise QueryError(
                f"unknown standing query {query_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # stream consumption (index mutation + maintenance)
    # ------------------------------------------------------------------

    def apply_moves(self, moves: list[ObjectMove]) -> DeltaBatch:
        """Absorb a batch of position updates: the index takes them via
        its batched path, then every standing result is maintained
        incrementally.  Returns the per-query deltas (plus the moved
        objects in ``batch.moved``)."""
        self._ensure_topology_current()
        moved = self.index.update_objects(moves)
        return self.ingest_moves(moved)

    def apply_insert(self, obj: UncertainObject) -> DeltaBatch:
        """A brand-new object appears (index insert + maintenance)."""
        self._ensure_topology_current()
        self.index.insert_object(obj)
        return self.ingest_insert(obj)

    def apply_delete(self, object_id: str) -> DeltaBatch:
        """An object disappears; each maintainer absorbs the departure
        its own way (an iRQ/iPRQ drops the member, an ikNNQ refills the
        vacated slot from scratch).  The removed object rides along as
        ``batch.deleted``."""
        self._ensure_topology_current()
        obj = self.index.delete_object(object_id)
        return self.ingest_delete(object_id, deleted=obj)

    def apply_event(self, event: TopologyEvent) -> DeltaBatch:
        """Apply a topology event through the index, then resynchronise
        every standing query (cached searches are all invalid).  The
        space-level outcome rides along as ``batch.event_result``."""
        result = self.index.apply_event(event)
        self._ensure_topology_current()
        return DeltaBatch(
            deltas=self._drain_pending(), event_result=result
        )

    # ------------------------------------------------------------------
    # maintenance-only ingestion (the sharded front-end's entry points)
    # ------------------------------------------------------------------

    def ingest_moves(
        self, moved: list[UncertainObject], block=None
    ) -> DeltaBatch:
        """Maintain standing results for objects the *shared* index
        already moved (no index mutation here).  Thread-safe: shards run
        their hooks concurrently under the parallel front-end.

        ``block`` is an optional pre-packed
        :class:`~repro.distances.batch.ObjectBlock` covering exactly
        ``moved`` (the sharded front-end packs the batch once and hands
        each shard its routed subset); only consulted under
        ``kernel="vector"``, which otherwise packs the batch itself.
        """
        with self._ingest_lock:
            self._ensure_topology_current()
            if self.kernel == "vector":
                self._absorb_block(moved, block)
            else:
                for obj in moved:
                    self._absorb_update(obj)
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("move"),
                moved=tuple(moved),
            )

    def ingest_insert(self, obj: UncertainObject) -> DeltaBatch:
        """Maintain standing results for an already-inserted object."""
        with self._ingest_lock:
            self._ensure_topology_current()
            self._absorb_update(obj)
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("insert")
            )

    def ingest_delete(
        self, object_id: str, deleted: UncertainObject | None = None
    ) -> DeltaBatch:
        """Maintain standing results for an already-deleted object.

        Only queries that actually *hold* the id (result/candidate
        set membership, per
        :meth:`~repro.queries.maintainers.StandingQuery.holds`) are
        dispatched — and counted: a deletion touching none of a query's
        members is no evaluated pair, so the pair counters (and the
        recompute-ratio columns derived from them) measure real work.
        """
        with self._ingest_lock:
            self._ensure_topology_current()
            self.stats.updates_seen += 1
            for sq in self._queries.values():
                if not sq.holds(object_id):
                    continue
                self.stats.pairs_evaluated += 1
                sq.on_delete(object_id)
            return DeltaBatch(
                deltas=self._drain_pending() + self._collect("delete"),
                deleted=deleted,
            )

    def drain_pending_deltas(self) -> DeltaBatch:
        """Collect deltas parked by out-of-band work: registrations,
        deregistrations, and topology resyncs triggered by result
        access instead of a mutation call."""
        with self._ingest_lock:
            self._ensure_topology_current()
            return DeltaBatch(deltas=self._drain_pending())

    def peek_pending_deltas(self) -> tuple[ResultDelta, ...]:
        """The parked deltas, *without* draining them.  The process
        shard engine mirrors these parent-side after every request so a
        crashed worker's replacement can re-park them
        (:meth:`park_deltas`) — a register delta parked between batches
        must survive the restart or the delta stream loses it."""
        with self._ingest_lock:
            return tuple(self._pending)

    def park_deltas(self, deltas) -> None:
        """Append already-emitted deltas to the pending list, to flow
        out on the next mutation or :meth:`drain_pending_deltas`.

        Restart-only plumbing (see :meth:`peek_pending_deltas`): the
        deltas were counted when first emitted, so this does not touch
        ``stats.deltas_emitted``.
        """
        with self._ingest_lock:
            self._pending.extend(deltas)

    # ------------------------------------------------------------------
    # delta bookkeeping
    # ------------------------------------------------------------------

    def touch(self, sq: StandingQuery) -> None:
        """Record ``sq``'s pre-mutation result (first write wins; later
        touches in the same scope are free).  Every maintainer code
        path that writes ``sq.result`` calls this first, so _collect()
        diffs only the queries that actually changed."""
        self._before.setdefault(sq.query_id, dict(sq.result))

    def _collect(self, cause: str) -> tuple[ResultDelta, ...]:
        """Close the current mutation scope: diff every touched query
        against its recorded pre-state, in query *registration* order —
        not first-touch order, which would differ between the scalar
        path (object-major) and the batch kernel (query-major).  One
        emission order for every engine keeps delta histories
        bit-comparable across kernels and backends.  A result change of
        a dynamic-reach maintainer bumps :attr:`reach_epoch` (its
        influence radius may have moved with the result)."""
        if not self._before:
            return ()
        out = []
        reach_moved = False
        for qid, sq in self._queries.items():
            before = self._before.get(qid)
            if before is None:  # untouched this scope
                continue
            delta = diff_results(
                qid,
                cause,
                before,
                sq.result,
                probabilities=sq.annotates == "probability",
            )
            if delta is not None:
                out.append(delta)
                reach_moved = reach_moved or sq.dynamic_reach
        self._before.clear()
        if reach_moved:
            self.reach_epoch += 1
        self.stats.deltas_emitted += len(out)
        return tuple(out)

    def _push_pending(self, delta: ResultDelta) -> None:
        self._pending.append(delta)
        self.stats.deltas_emitted += 1

    def _drain_pending(self) -> tuple[ResultDelta, ...]:
        drained = tuple(self._pending)
        self._pending.clear()
        return drained

    # ------------------------------------------------------------------
    # incremental maintenance (protocol dispatch)
    # ------------------------------------------------------------------

    def _ensure_topology_current(self) -> None:
        version = self.index.space.topology_version
        if version == self._topology_version:
            return
        self._topology_version = version
        self.stats.topology_invalidations += 1
        for sq in self._queries.values():
            sq.recompute()  # touches each query pre-resync
            self.stats.event_recomputes += 1
        self._pending.extend(self._collect("topology"))

    def _absorb_update(self, obj: UncertainObject) -> None:
        self.stats.updates_seen += 1
        for sq in self._queries.values():
            self.stats.pairs_evaluated += 1
            sq.on_update(obj)

    def _absorb_block(self, moved: list[UncertainObject], block) -> None:
        """Vector-kernel absorption: pack the moved batch once, then
        dispatch the whole block to each batch-aware maintainer.  A
        maintainer without the batch hook falls back to the scalar
        per-object loop (counted in ``kernel_fallbacks``), so the two
        kernels are behaviourally identical — the property suite in
        ``tests/properties/test_prop_kernel.py`` holds them to
        bit-identical delta histories.

        ``kernel_pruned`` is measured as the ``pairs_skipped`` delta
        around each batch dispatch: the kernel and the scalar path feed
        the same per-pair decision code, so the counter partition
        (evaluated = skipped + refined + recomputed) is preserved
        exactly."""
        if not moved:
            return
        self.stats.updates_seen += len(moved)
        if not self._queries:
            return
        space = self.index.space
        if block is None or (
            block.layout.topology_version != space.topology_version
        ):
            # Not pre-packed by a sharded front-end (or packed against a
            # topology that has since changed): pack here.
            block = pack_block(
                moved,
                space,
                self.index.population.grid,
                self.session.door_layout(),
            )
        n = len(moved)
        for sq in self._queries.values():
            self.stats.pairs_evaluated += n
            if sq.supports_batch:
                self.stats.kernel_pairs += n
                skipped_before = self.stats.pairs_skipped
                sq.on_update_batch(block)
                self.stats.kernel_pruned += (
                    self.stats.pairs_skipped - skipped_before
                )
            else:
                self.stats.kernel_fallbacks += n
                for obj in moved:
                    sq.on_update(obj)
