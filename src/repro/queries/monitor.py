"""Continuous query monitoring over streams of object updates.

The paper evaluates one-shot queries, but its setting is *moving*
objects: positions change continuously while the composite index absorbs
updates cheaply (Section III-C).  A :class:`QueryMonitor` closes the
loop: it keeps standing iRQ and ikNNQ queries registered and maintains
each result set **incrementally** as the population streams position
updates through :meth:`repro.index.composite.CompositeIndex.update_objects`.

The incremental argument reuses the paper's own machinery:

* every standing query keeps a full (unrestricted) single-source
  Dijkstra from its query point, memoised in a
  :class:`~repro.queries.session.QuerySession` — valid until the
  *topology* changes, no matter how objects move;
* when one object moves, only the (object, query) pairs are touched:
  the Table III distance interval of the moved object is recomputed
  against the cached search, and usually *decides* membership outright
  (``upper <= r`` / ``lower > r`` for iRQ; ``lower > kth`` for ikNNQ);
* only an undecided pair pays one exact expected-distance refinement,
  and only an ikNNQ whose k-th-distance bound is violated (a member
  drifting past the current threshold, or a member deletion) falls back
  to full re-execution — the counters in :class:`MonitorStats` prove how
  rarely that happens.

Soundness of the ikNNQ maintenance rests on one invariant: *at every
consistent state, each non-member's expected distance is at least the
current k-th member distance* ``tau``.  A member whose refreshed
distance stays ``<= tau`` keeps the invariant (``tau`` can only
shrink); an outsider entering with ``d < tau`` evicts the worst member,
whose distance equals the old ``tau`` and therefore still satisfies the
invariant from the outside.  Every transition that could break the
invariant triggers the full fallback instead.

Topology events (door closures, splits, merges) invalidate every cached
search — the monitor detects the space's ``topology_version`` bump,
re-executes all standing queries once, and resumes incremental
maintenance.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from repro.distances.bounds import object_bounds
from repro.distances.expected import expected_indoor_distance
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.queries.knn import ikNNQ
from repro.queries.range_query import iRQ
from repro.queries.session import QuerySession
from repro.space.doors_graph import DoorDistances
from repro.space.events import EventResult, TopologyEvent


@dataclass
class MonitorStats:
    """Work accounting across the lifetime of one monitor.

    A *pair* is one ``(object update, standing query)`` combination; the
    three pair counters partition them by the work they cost:

    * ``pairs_skipped`` — decided without any exact distance work:
      either by the safe Table III interval alone, or trivially (a
      deletion touching a non-member, or an iRQ member simply dropped);
    * ``pairs_refined`` — needed one exact expected-distance evaluation
      against the cached full search;
    * ``full_recomputes`` — violated a safe bound and re-executed the
      standing query from scratch (the bound-violation fallback; a pair
      that refined first and then escalated counts only here).

    Topology events are tracked separately: ``event_recomputes`` counts
    per-query re-executions forced by a ``topology_version`` bump.
    """

    updates_seen: int = 0
    pairs_evaluated: int = 0
    pairs_skipped: int = 0
    pairs_refined: int = 0
    full_recomputes: int = 0
    event_recomputes: int = 0
    topology_invalidations: int = 0

    @property
    def recompute_ratio(self) -> float:
        """Share of pairs that fell back to full re-execution; the
        monitor provably skips work whenever this is < 1.0."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.full_recomputes / self.pairs_evaluated

    @property
    def skip_ratio(self) -> float:
        """Share of pairs decided without exact distance work."""
        if self.pairs_evaluated == 0:
            return 0.0
        return self.pairs_skipped / self.pairs_evaluated


@dataclass
class _StandingIRQ:
    """A registered iRQ: ``result`` maps member id -> exact distance,
    or ``None`` for members accepted purely by bounds."""

    query_id: str
    q: Point
    r: float
    result: dict[str, float | None] = field(default_factory=dict)


@dataclass
class _StandingKNN:
    """A registered ikNNQ: ``result`` maps member id -> exact distance
    (always refined, so the k-th distance threshold is available)."""

    query_id: str
    q: Point
    k: int
    result: dict[str, float] = field(default_factory=dict)

    def kth_distance(self) -> float:
        """The maintenance threshold ``tau``: the worst member distance
        when the result is full, else infinity (any reachable object
        could still enter)."""
        if len(self.result) < self.k:
            return math.inf
        return max(self.result.values())


class QueryMonitor:
    """Standing iRQ/ikNNQ queries maintained over streaming updates.

    Usage::

        monitor = QueryMonitor(index)
        kiosk = monitor.register_irq(q_kiosk, r=60.0)
        desk = monitor.register_iknn(q_desk, k=5)
        for batch in stream.batches(100, 50):
            monitor.apply_moves(batch)          # index + results updated
            serve(monitor.result_ids(kiosk))
        monitor.apply_event(CloseDoor("d7"))    # full resync, once

    The monitor owns the update path: :meth:`apply_moves`,
    :meth:`apply_insert`, :meth:`apply_delete` and :meth:`apply_event`
    mutate the underlying index *and* maintain every standing result.
    External topology mutations are also tolerated — any
    ``topology_version`` bump is detected on the next access and all
    standing queries resynchronise.
    """

    def __init__(self, index: CompositeIndex) -> None:
        self.index = index
        self.session = QuerySession(index)
        self.stats = MonitorStats()
        self._queries: dict[str, _StandingIRQ | _StandingKNN] = {}
        self._id_counter = itertools.count(1)
        self._topology_version = index.space.topology_version

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register_irq(
        self, q: Point, r: float, query_id: str | None = None
    ) -> str:
        """Register a standing range query; returns its id."""
        if r < 0:
            raise QueryError(f"negative query range {r}")
        query_id = self._claim_id(query_id, "irq")
        sq = _StandingIRQ(query_id, q, r)
        self._queries[query_id] = sq
        self._recompute(sq)
        return query_id

    def register_iknn(
        self, q: Point, k: int, query_id: str | None = None
    ) -> str:
        """Register a standing k-nearest-neighbour query; returns its id."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        query_id = self._claim_id(query_id, "iknn")
        sq = _StandingKNN(query_id, q, k)
        self._queries[query_id] = sq
        self._recompute(sq)
        return query_id

    def deregister(self, query_id: str) -> None:
        """Remove a standing query."""
        if query_id not in self._queries:
            raise QueryError(f"unknown standing query {query_id!r}")
        del self._queries[query_id]

    def _claim_id(self, query_id: str | None, kind: str) -> str:
        if query_id is None:
            # Skip over ids the caller claimed explicitly.
            while (
                query_id := f"{kind}-{next(self._id_counter)}"
            ) in self._queries:
                pass
        elif query_id in self._queries:
            raise QueryError(f"standing query id {query_id!r} already used")
        return query_id

    # ------------------------------------------------------------------
    # result access
    # ------------------------------------------------------------------

    def result_ids(self, query_id: str) -> set[str]:
        """The standing query's current result set (object ids)."""
        return set(self._standing(query_id).result)

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        """Member id -> exact expected distance (``None`` marks an iRQ
        member accepted by bounds alone)."""
        return dict(self._standing(query_id).result)

    def results(self) -> dict[str, set[str]]:
        """Every standing query's current result ids."""
        self._ensure_topology_current()
        return {qid: set(sq.result) for qid, sq in self._queries.items()}

    def query_ids(self) -> list[str]:
        return list(self._queries)

    def query_spec(self, query_id: str) -> tuple[str, Point, float | int]:
        """``("irq", q, r)`` or ``("iknn", q, k)`` for a standing query."""
        sq = self._queries.get(query_id)
        if sq is None:
            raise QueryError(f"unknown standing query {query_id!r}")
        if isinstance(sq, _StandingIRQ):
            return ("irq", sq.q, sq.r)
        return ("iknn", sq.q, sq.k)

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._queries

    def _standing(self, query_id: str) -> _StandingIRQ | _StandingKNN:
        self._ensure_topology_current()
        try:
            return self._queries[query_id]
        except KeyError:
            raise QueryError(
                f"unknown standing query {query_id!r}"
            ) from None

    # ------------------------------------------------------------------
    # stream consumption
    # ------------------------------------------------------------------

    def apply_moves(self, moves: list[ObjectMove]) -> list[UncertainObject]:
        """Absorb a batch of position updates: the index takes them via
        its batched path, then every standing result is maintained
        incrementally."""
        self._ensure_topology_current()
        moved = self.index.update_objects(moves)
        for obj in moved:
            self._absorb_update(obj)
        return moved

    def apply_insert(self, obj: UncertainObject) -> None:
        """A brand-new object appears (index insert + maintenance)."""
        self._ensure_topology_current()
        self.index.insert_object(obj)
        self._absorb_update(obj)

    def apply_delete(self, object_id: str) -> UncertainObject:
        """An object disappears.  An iRQ just drops it; an ikNNQ that
        loses a member must refill the vacated slot from scratch."""
        self._ensure_topology_current()
        obj = self.index.delete_object(object_id)
        self.stats.updates_seen += 1
        for sq in self._queries.values():
            self.stats.pairs_evaluated += 1
            if object_id not in sq.result:
                self.stats.pairs_skipped += 1
                continue
            if isinstance(sq, _StandingKNN):
                self.stats.full_recomputes += 1
                self._recompute(sq)
            else:
                del sq.result[object_id]
                self.stats.pairs_skipped += 1
        return obj

    def apply_event(self, event: TopologyEvent) -> EventResult:
        """Apply a topology event through the index, then resynchronise
        every standing query (cached searches are all invalid)."""
        result = self.index.apply_event(event)
        self._ensure_topology_current()
        return result

    # ------------------------------------------------------------------
    # incremental maintenance
    # ------------------------------------------------------------------

    def _ensure_topology_current(self) -> None:
        version = self.index.space.topology_version
        if version == self._topology_version:
            return
        self._topology_version = version
        self.stats.topology_invalidations += 1
        for sq in self._queries.values():
            self._recompute(sq)
            self.stats.event_recomputes += 1

    def _absorb_update(self, obj: UncertainObject) -> None:
        self.stats.updates_seen += 1
        for sq in self._queries.values():
            self.stats.pairs_evaluated += 1
            if isinstance(sq, _StandingIRQ):
                self._update_irq(sq, obj)
            else:
                self._update_knn(sq, obj)

    def _update_irq(self, sq: _StandingIRQ, obj: UncertainObject) -> None:
        """Membership of the moved object is re-decided in isolation —
        the cached full search makes the interval exact machinery of
        Table III sufficient, so no other pair is ever touched."""
        dd = self.session.door_distances(sq.q)
        interval = object_bounds(
            sq.q, obj, dd, self.index.space, self.index.population.grid
        )
        oid = obj.object_id
        if interval.entirely_within(sq.r):
            sq.result[oid] = None
            self.stats.pairs_skipped += 1
        elif interval.entirely_beyond(sq.r):
            sq.result.pop(oid, None)
            self.stats.pairs_skipped += 1
        else:
            d = self._exact(sq.q, obj, dd)
            self.stats.pairs_refined += 1
            if d <= sq.r:
                sq.result[oid] = d
            else:
                sq.result.pop(oid, None)

    def _update_knn(self, sq: _StandingKNN, obj: UncertainObject) -> None:
        dd = self.session.door_distances(sq.q)
        oid = obj.object_id
        tau = sq.kth_distance()
        if oid in sq.result:
            # A member moved: its stored distance is stale, refine it.
            d = self._exact(sq.q, obj, dd)
            if math.isfinite(d) and d <= tau:
                sq.result[oid] = d  # invariant holds; tau only shrinks
                self.stats.pairs_refined += 1
            else:
                # The member drifted past the threshold (or became
                # unreachable): an outsider may now beat it.  The pair
                # counts as a full recompute (not also as refined — the
                # counters partition pairs_evaluated).
                self.stats.full_recomputes += 1
                self._recompute(sq)
            return
        if len(sq.result) >= sq.k:
            interval = object_bounds(
                sq.q, obj, dd, self.index.space, self.index.population.grid
            )
            if interval.lower > tau:
                # Certainly no closer than the current k-th member.
                self.stats.pairs_skipped += 1
                return
        d = self._exact(sq.q, obj, dd)
        self.stats.pairs_refined += 1
        if not math.isfinite(d):
            return
        if len(sq.result) < sq.k:
            sq.result[oid] = d
        elif d < tau:
            worst = max(sq.result, key=sq.result.__getitem__)
            del sq.result[worst]
            sq.result[oid] = d

    # ------------------------------------------------------------------
    # full re-execution (registration, fallbacks, topology resync)
    # ------------------------------------------------------------------

    def _recompute(self, sq: _StandingIRQ | _StandingKNN) -> None:
        dd = self.session.door_distances(sq.q)
        if isinstance(sq, _StandingIRQ):
            res = iRQ(sq.q, sq.r, self.index, precomputed_dd=dd)
            sq.result = dict(res.distances)
        else:
            res = ikNNQ(sq.q, sq.k, self.index, precomputed_dd=dd)
            distances: dict[str, float] = {}
            for obj in res.objects:
                d = res.distances[obj.object_id]
                if d is None:  # accepted by bounds: refine for the tau
                    d = self._exact(sq.q, obj, dd)
                distances[obj.object_id] = d
            sq.result = distances

    def _exact(
        self, q: Point, obj: UncertainObject, dd: DoorDistances
    ) -> float:
        return expected_indoor_distance(
            q, obj, dd, self.index.space, self.index.population.grid
        ).value
