"""The indoor k nearest neighbour query ikNNQ (Definition 4,
Algorithms 2 and 5).

Returns the ``k`` objects with the smallest expected indoor distances.
The search radius is not given — it is derived: kSeedsSelection expands
partitions around ``q`` until ``k`` objects are seen, the Topological
Looser Upper Bound (Lemma 3) of the worst seed becomes ``kbound``, and
a range search with ``kbound`` then guarantees zero false negatives
(Lemma 6).
"""

from __future__ import annotations

import bisect
import heapq
import itertools
import math
import time

from repro.errors import QueryError
from repro.distances.bounds import topological_looser_upper_bound
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.uncertain import UncertainObject
from repro.queries.engine import (
    QueryResult,
    Refiner,
    filtering_phase,
    locate_source,
    pruning_phase,
    subgraph_phase,
)
from repro.queries.stats import QueryStats


def k_seeds_selection(
    index: CompositeIndex, q: Point, k: int, source: str
) -> tuple[list[UncertainObject], set[str], dict[str, tuple[Point, float]]]:
    """Algorithm 5: greedy partition expansion until ``k`` objects.

    Expands partitions in order of (greedy) accumulated path length from
    ``q``, collecting the objects bucketed in each.  Returns the seed
    objects, the expanded partitions ``R^p_1``, and per-partition known
    paths ``{pid: (arrival_point, path_length)}`` feeding the TLU.
    """
    space = index.space
    fh = space.floor_height
    seeds: list[UncertainObject] = []
    seen_objects: set[str] = set()
    expanded: set[str] = set()
    known_paths: dict[str, tuple[Point, float]] = {source: (q, 0.0)}
    counter = itertools.count()
    heap: list[tuple[float, int, str, Point]] = [(0.0, next(counter), source, q)]
    while heap and len(seeds) < k:
        length, _, pid, arrival = heapq.heappop(heap)
        if pid in expanded:
            continue
        expanded.add(pid)
        for unit in index.indr.units_of_partition.get(pid, ()):
            for object_id in index.otable.objects_in(unit.unit_id):
                if object_id in seen_objects:
                    continue
                seen_objects.add(object_id)
                seeds.append(index.population.get(object_id))
        for door in space.exit_doors(pid):
            nbr = door.other_side(pid)
            if nbr in expanded:
                continue
            nbr_length = length + arrival.distance(door.midpoint, fh)
            prev = known_paths.get(nbr)
            if prev is None or nbr_length < prev[1]:
                known_paths[nbr] = (door.midpoint, nbr_length)
            heapq.heappush(
                heap, (nbr_length, next(counter), nbr, door.midpoint)
            )
    return seeds, expanded, known_paths


def ikNNQ(
    q: Point,
    k: int,
    index: CompositeIndex,
    with_pruning: bool = True,
    use_skeleton: bool = True,
    stats: QueryStats | None = None,
    precomputed_dd=None,
) -> QueryResult:
    """Evaluate an indoor k nearest neighbour query (Algorithm 2).

    ``precomputed_dd`` — a full single-source search from ``q`` (e.g.
    from a :class:`repro.queries.session.QuerySession`) that replaces
    the subgraph phase.
    """
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if stats is None:
        stats = QueryStats()
    stats.total_objects = len(index.population)

    source = locate_source(index, q)

    # Phase 1a: seeds + kbound (Lemma 3).  kbound is the k-th smallest
    # finite seed TLU — with exactly k seeds this is the paper's "max
    # over the seeds"; a seed whose TLU is infinite (a straddler whose
    # partition lies beyond the expansion frontier) triggers a wider
    # seed pool instead of an unbounded search.
    t0 = time.perf_counter()
    kbound = math.inf
    for k_eff in (k, 2 * k, 4 * k):
        seeds, _seed_partitions, known_paths = k_seeds_selection(
            index, q, k_eff, source
        )
        tlus = sorted(
            tlu
            for seed in seeds
            if math.isfinite(
                tlu := topological_looser_upper_bound(
                    q, seed, known_paths, index.space, index.population.grid
                )
            )
        )
        if len(tlus) >= k:
            kbound = tlus[k - 1]
            break
        if len(seeds) < k_eff:
            break  # the whole building holds fewer seeds than requested
    t_seeds = time.perf_counter() - t0

    # Phase 1b: range search with the kbound radius.
    filtered, t_range = filtering_phase(
        index, q, kbound if math.isfinite(kbound) else math.inf, use_skeleton
    )
    stats.t_filtering = t_seeds + t_range
    stats.candidates_after_filtering = len(filtered.objects)
    stats.partitions_retrieved = len(filtered.partitions)
    stats.nodes_visited = filtered.nodes_visited

    # Phase 2: subgraph Dijkstra (or a session-cached full search).
    if precomputed_dd is not None:
        dd = precomputed_dd
        search_radius = None
    else:
        cutoff = kbound if math.isfinite(kbound) else None
        dd, stats.t_subgraph = subgraph_phase(
            index, q, source, filtered.partitions, cutoff=cutoff
        )
        search_radius = kbound
    stats.doors_settled = len(dd.dist)

    candidates = list(filtered.objects)
    result = QueryResult()
    if with_pruning and len(candidates) > k:
        # Phase 3: bounds.
        intervals, stats.t_pruning = pruning_phase(
            index, q, candidates, dd, search_radius=search_radius
        )
        # O_k = candidate with the k-th smallest upper bound; objects
        # whose lower bound exceeds O_k's upper cannot be in the top-k
        # (at least k candidates are certainly closer) — Algorithm 2's
        # rejection rule, line 13.
        uppers = sorted(intervals[o.object_id].upper for o in candidates)
        ok_upper = uppers[k - 1]
        # Acceptance (line 11) is implemented in its provably safe form:
        # accept O without refinement only when at most k-1 *other*
        # candidates could possibly be closer, i.e. have a lower bound
        # not above O's upper bound.  (The paper's literal
        # "O.u < O_k.l" test can mis-rank tie-dense boundaries.)
        lowers = sorted(intervals[o.object_id].lower for o in candidates)
        sure: list[UncertainObject] = []
        undecided: list[UncertainObject] = []
        for obj in candidates:
            interval = intervals[obj.object_id]
            if interval.lower > ok_upper:
                stats.rejected_by_bounds += 1
                continue
            # Count candidates (other than this one) whose lower bound
            # does not exceed this object's upper bound.
            possibly_closer = bisect.bisect_right(lowers, interval.upper) - 1
            if possibly_closer <= k - 1 and math.isfinite(interval.upper):
                stats.accepted_by_bounds += 1
                sure.append(obj)
            else:
                undecided.append(obj)
    else:
        sure = []
        undecided = candidates

    # Phase 4: refinement.
    t0 = time.perf_counter()
    refiner = Refiner(index, q, dd)
    refined: list[tuple[float, str, UncertainObject]] = []
    for obj in undecided:
        stats.refined += 1
        d = refiner.exact(obj)
        refined.append((d, obj.object_id, obj))
    stats.fallback_recomputes = refiner.fallbacks
    refined.sort()
    for obj in sure:
        result.objects.append(obj)
        result.distances[obj.object_id] = None
    for d, _oid, obj in refined[: max(0, k - len(sure))]:
        if math.isinf(d):
            continue  # unreachable objects never qualify
        result.objects.append(obj)
        result.distances[obj.object_id] = d
    stats.t_refinement = time.perf_counter() - t0
    stats.result_size = len(result.objects)
    return result
