"""Process-based shard execution: the ``backend="process"`` engine of
:class:`~repro.queries.shard.ShardedMonitor`.

Thread workers measured flat (0.94-0.99x) because the GIL serialises
pair maintenance; this module moves the shard monitors into **worker
processes** so routed maintenance runs on real cores.  The parent
keeps the authoritative :class:`~repro.index.composite.CompositeIndex`
(registration claims, one-shot queries, routing, checkpoints all stay
parent-side); each worker process owns a disjoint subset of the shard
:class:`~repro.queries.monitor.QueryMonitor` instances over its own
**world replica** — a space + population rebuilt from messages, exactly
the rebuild the persist layer already proves bit-identical (every
distance and probability bound the maintainers consume is
tree-independent).

Wire format
-----------

Requests and responses are JSON objects sent as length-prefixed byte
messages over a :func:`multiprocessing.Pipe` — strictly lockstep (one
request in flight per worker), which is what makes crash recovery
reasoning tractable.  Result deltas cross the boundary as the existing
:mod:`repro.api.wire` records (canonical JSON lines, exact float
round-trip: the wire protocol *is* the serialization, as ROADMAP item
2 specifies); object/move inputs use the :mod:`repro.persist.codec`
dict forms, except instance coordinates, which ride a shared-memory
numpy table (:class:`_PositionTable`) — the parent writes each batch's
``(x, y, prob)`` rows once, the message carries only ``(row, n)``
spans, and every worker reads the same slab with zero copies per
float.

Parent -> worker ops: ``init`` (world replica + owned shards +
restored query states), ``moves`` / ``insert`` / ``delete`` /
``event`` / ``drain`` (an index mutation plus the router's per-shard
plan), ``register`` / ``deregister`` / ``restore`` / ``set_epoch``
(shard-targeted), ``stop``.  Every data-op response carries one
section per owned shard: the wire-encoded
:class:`~repro.queries.deltas.DeltaBatch`, the parked pending deltas,
``reach_epoch`` / topology version / influence radii (what the
parent-side router needs), monitor stats, and — whenever states may
have moved — every query's spec, snapshot state and result.  The
parent mirrors all of it on :class:`_ShardProxy` objects, so result
access, reach routing, checkpointing and crash re-initialisation never
need an extra round trip.

Supervision
-----------

A worker that dies (or hangs past ``request_timeout_s``) degrades
gracefully instead of hanging ingest: the supervisor kills it, spawns
a replacement initialised from the parent-side mirrors (states as of
the last *successful* response), re-issues the in-flight request, and
counts the restart against :attr:`ProcPoolConfig.max_restarts` —
beyond the budget, :class:`~repro.errors.ProcPoolError` surfaces to
the caller.  Replaying the in-flight request against the
current-parent world is safe by construction: moves are absolute
(idempotent), a replayed insert/delete tolerates the already-applied
population, and a replayed topology event is version-guarded.  Parked
pending deltas (a register delta between batches) are mirrored and
re-parked so no delta is lost across a crash — the property suite's
kill-a-worker test asserts the full delta history stays bit-identical
to the serial engine.

Limitations: all index/space mutations must flow through the sharded
monitor's ``apply_*`` paths (an out-of-band mutation of the parent's
space never reaches the replicas), and a process-backed monitor is
unusable after ``close()``.
"""

from __future__ import annotations

import json
import math
import multiprocessing as mp
import time
import traceback
from dataclasses import asdict, dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any

import numpy as np

from repro.api.specs import QuerySpec, spec_from_dict
from repro.api.wire import decode_record, encode_record
from repro.errors import ProcPoolError, QueryError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.instances import InstanceSet
from repro.objects.population import ObjectMove, ObjectPopulation
from repro.objects.uncertain import UncertainObject
from repro.persist.codec import (
    event_from_dict,
    event_to_dict,
    object_from_dict,
    object_to_dict,
)
from repro.queries.deltas import DeltaBatch
from repro.queries.monitor import MonitorStats, QueryMonitor
from repro.queries.session import QuerySession
from repro.space.io import space_from_dict, space_to_dict

#: Ops whose response must refresh the per-query mirrors (states or
#: results may have moved).  ``drain`` and ``set_epoch`` cannot change
#: any maintainer state, so their responses skip the query payload.
_STATEFUL_OPS = frozenset(
    ("moves", "insert", "delete", "event", "register", "deregister",
     "restore")
)


@dataclass(frozen=True)
class ProcPoolConfig:
    """Tuning knobs of a :class:`ProcessShardPool`.

    ``max_restarts`` is the pool-lifetime budget of worker restarts
    (``0`` = a single crash is fatal); ``request_timeout_s`` bounds how
    long one request may take before the worker is presumed hung and
    killed (``None`` = wait for death only); ``start_method`` forces a
    :mod:`multiprocessing` start method (default: ``fork`` where
    available — worker worlds are rebuilt from messages, so ``spawn``
    is equally correct, just slower to boot); ``table_rows`` is the
    initial shared position-table capacity in instance rows (grown
    automatically).
    """

    max_restarts: int = 3
    request_timeout_s: float | None = 60.0
    start_method: str | None = None
    table_rows: int = 1024

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ProcPoolError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        if (
            self.request_timeout_s is not None
            and self.request_timeout_s <= 0
        ):
            raise ProcPoolError(
                "request_timeout_s must be positive or None, "
                f"got {self.request_timeout_s}"
            )
        if self.table_rows < 1:
            raise ProcPoolError(
                f"table_rows must be >= 1, got {self.table_rows}"
            )


class _WorkerDied(Exception):
    """Internal: one request attempt failed at the transport level
    (broken pipe, EOF, dead process, or timeout) — the supervisor's
    cue to restart and re-issue, never surfaced to callers."""


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach a segment without letting *this* process's cleanup
    destroy it.

    Attaching registers the segment with the resource tracker for
    unlink-at-exit.  When the worker shares the parent's tracker
    process — always on POSIX: ``fork``/``forkserver`` inherit its
    pipe, ``spawn`` hands the fd over in the preparation data —
    unregistering here would erase the parent's own registration (the
    tracker cache is one name set, not refcounted) and break its
    unlink-at-close, so the registration must stand.  Only a worker
    whose tracker would start fresh (no inherited fd or pid) may undo
    it, because *that* tracker unlinks its whole cache when the worker
    exits, which would destroy the parent's live table.
    """
    tracker = resource_tracker._resource_tracker
    inherited = (
        getattr(tracker, "_fd", None) is not None
        or getattr(tracker, "_pid", None) is not None
    )
    shm = shared_memory.SharedMemory(name=name)
    if not inherited:
        try:  # pragma: no cover - tracker internals vary per version
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


class _PositionTable:
    """Parent side of the shared-memory instance table: one float64
    ``(rows, 3)`` slab of ``x, y, prob`` rows, rewritten per batch.

    The lockstep request/response protocol makes one slab enough: the
    parent writes a batch's rows, sends the message, and never writes
    again until every worker has responded (and therefore finished
    reading).  Growth allocates a fresh segment whose name travels in
    the next message; workers re-attach when the name changes, and the
    old segment is unlinked immediately — POSIX keeps it alive for any
    reader still mapped.
    """

    def __init__(self, rows: int) -> None:
        self._shm: shared_memory.SharedMemory | None = None
        self._array: np.ndarray | None = None
        self.rows = 0
        self._alloc(max(1, rows))

    def _alloc(self, rows: int) -> None:
        self._shm = shared_memory.SharedMemory(
            create=True, size=rows * 3 * 8
        )
        self._array = np.ndarray(
            (rows, 3), dtype=np.float64, buffer=self._shm.buf
        )
        self.rows = rows

    def descriptor(self) -> dict[str, Any]:
        """The attach handle carried in messages."""
        return {"shm": self._shm.name, "rows": self.rows}

    def write(self, instance_sets: list[InstanceSet]) -> list[list[int]]:
        """Write each instance set's rows contiguously; returns the
        ``[row, n]`` span per set, in order.  Grows the table first if
        the batch needs more rows than the current slab holds."""
        total = sum(len(inst) for inst in instance_sets)
        if total > self.rows:
            grown = max(total, self.rows * 2)
            self.close()
            self._alloc(grown)
        spans: list[list[int]] = []
        row = 0
        for inst in instance_sets:
            n = len(inst)
            self._array[row : row + n, 0:2] = inst.xy
            self._array[row : row + n, 2] = inst.probs
            spans.append([row, n])
            row += n
        return spans

    def close(self) -> None:
        """Release and unlink the current segment (idempotent)."""
        if self._shm is None:
            return
        self._array = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._shm = None


class _AttachedTable:
    """Worker side of the shared position table: a read-only mapping of
    whatever segment the last message named."""

    def __init__(self, name: str, rows: int) -> None:
        self.name = name
        self._shm = _attach_untracked(name)
        self._array = np.ndarray(
            (rows, 3), dtype=np.float64, buffer=self._shm.buf
        )

    def read(self, row: int, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Copy one span out as ``(xy, probs)`` arrays (copies: the
        slab is rewritten by the parent every batch)."""
        block = np.array(self._array[row : row + n], dtype=np.float64)
        return block[:, 0:2], block[:, 2]

    def close(self) -> None:
        self._array = None
        self._shm.close()


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------


def _worker_main(conn) -> None:
    """Entry point of one worker process: a strict request/response
    loop.  Any exception while handling a request becomes an ``error``
    response (the parent re-raises it — a deterministic error must not
    trigger a restart loop); a lost pipe means the parent is gone and
    the worker exits."""
    world: _WorkerWorld | None = None
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            break
        msg = json.loads(raw.decode("utf-8"))
        op = msg.get("op")
        if op == "stop":
            try:
                conn.send_bytes(b'{"status":"ok"}')
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            if op == "init":
                world = _WorkerWorld(msg)
                resp: dict[str, Any] = {"status": "ok"}
            else:
                resp = world.handle(msg)
        except Exception:
            resp = {"status": "error", "error": traceback.format_exc()}
        try:
            conn.send_bytes(json.dumps(resp).encode("utf-8"))
        except (BrokenPipeError, OSError):
            break
    if world is not None:
        world.close()
    conn.close()


class _WorkerWorld:
    """One worker's world replica plus its owned shard monitors.

    Construction *is* crash recovery: the ``init`` message carries the
    parent's current space/population/index shape and, per owned
    shard, the mirrored query states, reach epoch, topology version,
    parked pending deltas and stats — so a replacement worker is
    indistinguishable from the one that died, as of the last
    successful response.
    """

    def __init__(self, msg: dict[str, Any]) -> None:
        space = space_from_dict(msg["space"])
        space.topology_version = int(msg["tv"])
        population = ObjectPopulation(space)
        for payload in msg["objects"]:
            population.insert(object_from_dict(payload))
        shape = msg["index"]
        self.index = CompositeIndex.build(
            space,
            population,
            fanout=int(shape["fanout"]),
            t_shape=float(shape["t_shape"]),
        )
        self.session = QuerySession(self.index)
        kernel = str(msg.get("kernel", "scalar"))
        self.shards: dict[int, QueryMonitor] = {
            int(s): QueryMonitor(
                self.index, session=self.session, kernel=kernel
            )
            for s in msg["shards"]
        }
        for record in msg["queries"]:
            monitor = self.shards[int(record["shard"])]
            monitor.restore_query(
                spec_from_dict(record["spec"]),
                str(record["query_id"]),
                record["state"],
            )
        for s, monitor in self.shards.items():
            key = str(s)
            monitor.reach_epoch = int(msg["epochs"][key])
            # The mirrored (pre-crash) version, not the replica's: a
            # worker killed mid-event must resync on the re-issued
            # drain exactly as the dead one would have.
            monitor._topology_version = int(msg["tvs"][key])
            monitor.stats = MonitorStats(**msg["stats"][key])
            pending = [
                decode_record(line) for line in msg["pending"][key]
            ]
            if pending:
                monitor.park_deltas(pending)
        self.table: _AttachedTable | None = None
        self._attach(msg["table"])

    def close(self) -> None:
        if self.table is not None:
            self.table.close()
            self.table = None

    # -- input decoding ------------------------------------------------

    def _attach(self, descriptor: dict[str, Any] | None) -> None:
        if descriptor is None:
            return
        name = str(descriptor["shm"])
        if self.table is not None and self.table.name == name:
            return
        if self.table is not None:
            self.table.close()
        self.table = _AttachedTable(name, int(descriptor["rows"]))

    def _location_from(
        self, entry: dict[str, Any]
    ) -> tuple[Circle, InstanceSet]:
        x, y, floor = entry["center"]
        region = Circle(
            Point(float(x), float(y), int(floor)),
            float(entry["radius"]),
        )
        xy, probs = self.table.read(int(entry["row"]), int(entry["n"]))
        return region, InstanceSet(xy, int(floor), probs)

    # -- request handling ----------------------------------------------

    def handle(self, msg: dict[str, Any]) -> dict[str, Any]:
        op = str(msg["op"])
        if op == "set_epoch":
            self.shards[int(msg["shard"])].reach_epoch = int(
                msg["epoch"]
            )
            return self._respond(op, {})
        if op == "register":
            monitor = self.shards[int(msg["shard"])]
            monitor.register(
                spec_from_dict(msg["spec"]),
                query_id=str(msg["query_id"]),
            )
            return self._respond(op, {})
        if op == "deregister":
            self.shards[int(msg["shard"])].deregister(
                str(msg["query_id"])
            )
            return self._respond(op, {})
        if op == "restore":
            self.shards[int(msg["shard"])].restore_query(
                spec_from_dict(msg["spec"]),
                str(msg["query_id"]),
                msg["state"],
            )
            return self._respond(op, {})
        if op == "moves":
            self._attach(msg.get("table"))
            moves = []
            for entry in msg["objects"]:
                region, instances = self._location_from(entry)
                moves.append(
                    ObjectMove(str(entry["id"]), region, instances)
                )
            self.index.update_objects(moves)
            return self._respond(op, msg["plan"])
        if op == "insert":
            self._attach(msg.get("table"))
            entry = msg["object"]
            oid = str(entry["id"])
            if oid not in self.index.population:
                # Replayed after a crash: the original attempt already
                # inserted it before dying mid-response.
                region, instances = self._location_from(entry)
                self.index.insert_object(
                    UncertainObject(oid, region, instances)
                )
            return self._respond(op, msg["plan"])
        if op == "delete":
            oid = str(msg["id"])
            if oid in self.index.population:
                self.index.delete_object(oid)
            return self._respond(op, msg["plan"])
        if op == "event":
            target = int(msg["tv"])
            if self.index.space.topology_version < target:
                self.index.apply_event(event_from_dict(msg["event"]))
            return self._respond(op, msg["plan"])
        if op == "drain":
            return self._respond(op, msg["plan"])
        raise ProcPoolError(f"unknown worker op {op!r}")

    def _respond(
        self, op: str, plan: dict[str, Any]
    ) -> dict[str, Any]:
        include_queries = op in _STATEFUL_OPS
        sections: dict[str, Any] = {}
        for s in sorted(self.shards):
            monitor = self.shards[s]
            action = plan.get(str(s))
            if action is None:
                batch: DeltaBatch | None = None
            elif action[0] == "moves":
                relevant = [
                    self.index.population.get(oid) for oid in action[1]
                ]
                batch = DeltaBatch(
                    deltas=monitor.ingest_moves(relevant).deltas
                )
            elif action[0] == "insert":
                batch = monitor.ingest_insert(
                    self.index.population.get(str(action[1]))
                )
            elif action[0] == "delete":
                batch = monitor.ingest_delete(str(action[1]))
            else:
                batch = monitor.drain_pending_deltas()
            sections[str(s)] = self._section(
                monitor, batch, include_queries
            )
        return {"status": "ok", "sections": sections}

    def _section(
        self,
        monitor: QueryMonitor,
        batch: DeltaBatch | None,
        include_queries: bool,
    ) -> dict[str, Any]:
        section: dict[str, Any] = {
            "batch": None if batch is None else encode_record(batch),
            "pending": [
                encode_record(d)
                for d in monitor.peek_pending_deltas()
            ],
            "epoch": monitor.reach_epoch,
            "tv": monitor._topology_version,
            "radii": [
                [qid, [q.x, q.y, q.floor], reach]
                for qid, q, reach in monitor.influence_radii()
            ],
            "stats": asdict(monitor.stats),
            "queries": None,
        }
        if include_queries:
            section["queries"] = [
                [
                    qid,
                    monitor.query_spec(qid).to_dict(),
                    monitor.snapshot_query(qid),
                    monitor.result_distances(qid),
                ]
                for qid in monitor.query_ids()
            ]
        return section


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------


class _ShardProxy:
    """Parent-side stand-in for one remote shard monitor.

    Implements exactly the surface :class:`ShardedMonitor` consumes
    from a shard — registration, result access, reach inputs, stats —
    against mirrors refreshed from every worker response, and forwards
    the mutating calls as pool requests.  Mirror reads never touch the
    pipe, so routing and checkpointing stay as cheap as the in-process
    backend.
    """

    def __init__(self, pool: "ProcessShardPool", shard: int) -> None:
        self._pool = pool
        self.shard = shard
        self._specs: dict[str, QuerySpec] = {}
        self._states: dict[str, Any] = {}
        self._results: dict[str, dict[str, float | None]] = {}
        self._radii: list[tuple[str, Point, float]] = []
        self._stats = MonitorStats()
        self._epoch = 0
        self._tv = pool.index.space.topology_version
        self._pending_lines: list[str] = []

    # -- mirror maintenance --------------------------------------------

    def _absorb(self, section: dict[str, Any]) -> DeltaBatch | None:
        """Fold one response section into the mirrors; returns the
        decoded delta batch (``None`` for batch-less ops)."""
        self._epoch = int(section["epoch"])
        self._tv = int(section["tv"])
        self._radii = [
            (str(qid), Point(float(x), float(y), int(floor)), reach)
            for qid, (x, y, floor), reach in section["radii"]
        ]
        self._stats = MonitorStats(**section["stats"])
        self._pending_lines = list(section["pending"])
        if section["queries"] is not None:
            specs: dict[str, QuerySpec] = {}
            states: dict[str, Any] = {}
            results: dict[str, dict[str, float | None]] = {}
            for qid, spec, state, result in section["queries"]:
                qid = str(qid)
                specs[qid] = spec_from_dict(spec)
                states[qid] = state
                results[qid] = dict(result)
            self._specs, self._states, self._results = (
                specs, states, results,
            )
        if section["batch"] is None:
            return None
        return decode_record(section["batch"])

    # -- QueryMonitor-compatible surface -------------------------------

    @property
    def reach_epoch(self) -> int:
        return self._epoch

    @reach_epoch.setter
    def reach_epoch(self, value: int) -> None:
        self._pool.set_epoch(self.shard, int(value))

    @property
    def _topology_version(self) -> int:
        return self._tv

    @property
    def stats(self) -> MonitorStats:
        return self._stats

    def register(
        self, spec: QuerySpec, query_id: str | None = None
    ) -> str:
        if query_id is None:
            raise ProcPoolError(
                "process shards require an explicit query_id "
                "(the sharded front-end claims ids parent-side)"
            )
        self._pool.register(self.shard, spec, query_id)
        return query_id

    def deregister(self, query_id: str) -> None:
        self._require(query_id)
        self._pool.deregister(self.shard, query_id)

    def restore_query(
        self, spec: QuerySpec, query_id: str, state
    ) -> None:
        self._pool.restore_query(self.shard, spec, query_id, state)

    def result_ids(self, query_id: str) -> set[str]:
        return set(self._require(query_id))

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        return dict(self._require(query_id))

    def results(self) -> dict[str, set[str]]:
        return {
            qid: set(members) for qid, members in self._results.items()
        }

    def query_ids(self) -> list[str]:
        return list(self._specs)

    def query_spec(self, query_id: str) -> QuerySpec:
        self._require(query_id)
        return self._specs[query_id]

    def snapshot_query(self, query_id: str):
        self._require(query_id)
        return self._states[query_id]

    def influence_radii(self) -> list[tuple[str, Point, float]]:
        return list(self._radii)

    def influence_radii_by_floor(
        self,
    ) -> dict[int, list[tuple[str, Point, float]]]:
        out: dict[int, list[tuple[str, Point, float]]] = {}
        for qid, q, reach in self._radii:
            out.setdefault(q.floor, []).append((qid, q, reach))
        return out

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._specs

    def _require(self, query_id: str) -> dict[str, float | None]:
        result = self._results.get(query_id)
        if result is None:
            raise QueryError(f"unknown standing query {query_id!r}")
        return result


@dataclass
class _WorkerHandle:
    """One live worker: its process and the parent end of its pipe."""

    process: Any
    conn: Any


class ProcessShardPool:
    """Supervisor of the worker processes behind a process-backed
    :class:`~repro.queries.shard.ShardedMonitor`.

    Owns worker lifecycle (spawn, restart-on-crash within
    :attr:`ProcPoolConfig.max_restarts`, clean shutdown), the shared
    position table, and the request fan-out: :meth:`execute` broadcasts
    one mutation + routing plan to every worker concurrently and
    reassembles the per-shard delta batches in shard-index order — the
    serial merge order, so results are bit-identical to the in-process
    backends.  ``restarts`` counts recoveries performed so far.
    """

    def __init__(
        self,
        index: CompositeIndex,
        n_shards: int,
        workers: int = 1,
        config: ProcPoolConfig | None = None,
        kernel: str = "scalar",
    ) -> None:
        self.index = index
        self.config = config or ProcPoolConfig()
        self.kernel = kernel
        self.n_workers = max(1, min(workers, n_shards))
        self.proxies = [_ShardProxy(self, s) for s in range(n_shards)]
        self._owners = [s % self.n_workers for s in range(n_shards)]
        self._worker_shards = [
            [s for s in range(n_shards) if s % self.n_workers == w]
            for w in range(self.n_workers)
        ]
        method = self.config.start_method
        if method is None:
            method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self._ctx = mp.get_context(method)
        self._table = _PositionTable(self.config.table_rows)
        self.restarts = 0
        self._closed = False
        self._workers: list[_WorkerHandle | None] = [None] * (
            self.n_workers
        )
        for w in range(self.n_workers):
            # Boot through the supervised path: a worker that dies
            # during its very first init already consumes the budget.
            self._ensure_worker(w)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (best effort, bounded wait) and release
        the shared table.  Idempotent; the pool is unusable after."""
        if self._closed:
            return
        self._closed = True
        for handle in self._workers:
            if handle is None:
                continue
            try:
                handle.conn.send_bytes(b'{"op":"stop"}')
            except (BrokenPipeError, OSError):
                pass
        for w, handle in enumerate(self._workers):
            if handle is None:
                continue
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=2.0)
            handle.conn.close()
            self._workers[w] = None
        self._table.close()

    # ------------------------------------------------------------------
    # supervised transport
    # ------------------------------------------------------------------

    def _ensure_worker(self, w: int) -> None:
        """Make sure worker ``w`` is alive and initialised, consuming
        restart budget for every failed attempt."""
        while self._workers[w] is None:
            try:
                self._spawn(w)
            except _WorkerDied as exc:
                self._note_death(w, exc)

    def _spawn(self, w: int) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"shard-worker-{w}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(process, parent_conn)
        self._workers[w] = handle
        try:
            self._send(w, self._init_payload(w))
            self._await(w)
        except _WorkerDied:
            raise

    def _init_payload(self, w: int) -> dict[str, Any]:
        space = self.index.space
        queries = []
        epochs: dict[str, int] = {}
        tvs: dict[str, int] = {}
        pending: dict[str, list[str]] = {}
        stats: dict[str, dict[str, int]] = {}
        for s in self._worker_shards[w]:
            proxy = self.proxies[s]
            for qid in proxy._specs:
                queries.append(
                    {
                        "shard": s,
                        "query_id": qid,
                        "spec": proxy._specs[qid].to_dict(),
                        "state": proxy._states[qid],
                    }
                )
            key = str(s)
            epochs[key] = proxy._epoch
            tvs[key] = proxy._tv
            pending[key] = list(proxy._pending_lines)
            stats[key] = asdict(proxy._stats)
        return {
            "op": "init",
            "space": space_to_dict(space),
            "tv": space.topology_version,
            "index": {
                "fanout": self.index.indr.fanout,
                "t_shape": self.index.indr.t_shape,
            },
            "objects": [
                object_to_dict(obj) for obj in self.index.objects()
            ],
            "shards": self._worker_shards[w],
            "kernel": self.kernel,
            "queries": queries,
            "epochs": epochs,
            "tvs": tvs,
            "pending": pending,
            "stats": stats,
            "table": self._table.descriptor(),
        }

    def _send(self, w: int, payload: dict[str, Any]) -> None:
        handle = self._workers[w]
        try:
            handle.conn.send_bytes(json.dumps(payload).encode("utf-8"))
        except (BrokenPipeError, OSError) as exc:
            raise _WorkerDied(f"send failed: {exc}") from None

    def _await(self, w: int) -> dict[str, Any]:
        handle = self._workers[w]
        timeout = self.config.request_timeout_s
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        while True:
            wait = 0.05
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - time.monotonic()))
            try:
                ready = handle.conn.poll(wait)
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(f"poll failed: {exc}") from None
            if ready:
                try:
                    raw = handle.conn.recv_bytes()
                except (EOFError, OSError) as exc:
                    raise _WorkerDied(f"recv failed: {exc}") from None
                resp = json.loads(raw.decode("utf-8"))
                if resp.get("status") == "error":
                    # A deterministic in-request exception: re-raise
                    # parent-side, do NOT burn a restart (the replay
                    # would fail identically, looping the budget away).
                    raise ProcPoolError(
                        "worker request failed:\n"
                        + str(resp.get("error"))
                    )
                return resp
            if not handle.process.is_alive():
                raise _WorkerDied(
                    f"worker exited with code {handle.process.exitcode}"
                )
            if (
                deadline is not None
                and time.monotonic() >= deadline
            ):
                raise _WorkerDied(
                    f"request timed out after {timeout}s"
                )

    def _note_death(self, w: int, exc: _WorkerDied) -> None:
        """Tear the dead worker down and charge the restart budget;
        raises :class:`ProcPoolError` once it is spent."""
        handle = self._workers[w]
        if handle is not None:
            if handle.process.is_alive():
                handle.process.terminate()
            handle.process.join(timeout=2.0)
            handle.conn.close()
            self._workers[w] = None
        if self.restarts >= self.config.max_restarts:
            raise ProcPoolError(
                f"shard worker {w} died ({exc}) with the restart "
                f"budget ({self.config.max_restarts}) already spent"
            ) from None
        self.restarts += 1

    def _request(self, w: int, payload: dict[str, Any]) -> dict[str, Any]:
        """One supervised request: restart-and-replay on crash until it
        succeeds or the budget is spent."""
        if self._closed:
            raise ProcPoolError("process shard pool is closed")
        while True:
            self._ensure_worker(w)
            try:
                self._send(w, payload)
                return self._await(w)
            except _WorkerDied as exc:
                self._note_death(w, exc)

    # ------------------------------------------------------------------
    # the ShardedMonitor execution backend
    # ------------------------------------------------------------------

    def execute(
        self,
        mutation: tuple[str, Any],
        plan: list[tuple[str, Any]],
    ) -> list[DeltaBatch]:
        """Run one routed mutation on every worker concurrently and
        return the per-shard delta batches in shard-index order."""
        if self._closed:
            raise ProcPoolError("process shard pool is closed")
        payload = self._mutation_payload(mutation, plan)
        responses = self._broadcast(payload)
        batches: list[DeltaBatch] = []
        for s, proxy in enumerate(self.proxies):
            section = responses[self._owners[s]]["sections"][str(s)]
            batches.append(proxy._absorb(section))
        return batches

    def _mutation_payload(
        self,
        mutation: tuple[str, Any],
        plan: list[tuple[str, Any]],
    ) -> dict[str, Any]:
        kind, payload = mutation
        plan_wire: dict[str, Any] = {}
        for s, (action, action_payload) in enumerate(plan):
            if action == "moves":
                plan_wire[str(s)] = [
                    "moves",
                    [obj.object_id for obj in action_payload],
                ]
            elif action == "insert":
                plan_wire[str(s)] = [
                    "insert", action_payload.object_id,
                ]
            elif action == "delete":
                plan_wire[str(s)] = ["delete", str(action_payload)]
            else:
                plan_wire[str(s)] = ["drain"]
        msg: dict[str, Any] = {"op": kind, "plan": plan_wire}
        if kind == "moves":
            spans = self._table.write(
                [obj.instances for obj in payload]
            )
            msg["objects"] = [
                self._location_entry(obj, span)
                for obj, span in zip(payload, spans)
            ]
            msg["table"] = self._table.descriptor()
        elif kind == "insert":
            spans = self._table.write([payload.instances])
            msg["object"] = self._location_entry(payload, spans[0])
            msg["table"] = self._table.descriptor()
        elif kind == "delete":
            msg["id"] = str(payload)
        elif kind == "event":
            msg["event"] = event_to_dict(payload)
            msg["tv"] = self.index.space.topology_version
        elif kind != "drain":
            raise ProcPoolError(f"unknown mutation kind {kind!r}")
        return msg

    @staticmethod
    def _location_entry(
        obj: UncertainObject, span: list[int]
    ) -> dict[str, Any]:
        center = obj.region.center
        return {
            "id": obj.object_id,
            "center": [
                float(center.x), float(center.y), int(center.floor),
            ],
            "radius": float(obj.region.radius),
            "row": span[0],
            "n": span[1],
        }

    def _broadcast(
        self, payload: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Send one request to every worker, then collect — the send
        phase is what lets workers run concurrently.  A worker that
        fails anywhere in the round is restarted from mirrors and the
        request replayed for it alone (other workers' successful work
        stands: replay is idempotent per worker, never cross-worker)."""
        needs_retry: list[int] = []
        for w in range(self.n_workers):
            if self._workers[w] is None:
                needs_retry.append(w)
                continue
            try:
                self._send(w, payload)
            except _WorkerDied as exc:
                self._note_death(w, exc)
                needs_retry.append(w)
        responses: list[dict[str, Any] | None] = [None] * self.n_workers
        for w in range(self.n_workers):
            if w in needs_retry:
                responses[w] = self._request(w, payload)
                continue
            try:
                responses[w] = self._await(w)
            except _WorkerDied as exc:
                self._note_death(w, exc)
                responses[w] = self._request(w, payload)
        return responses

    # ------------------------------------------------------------------
    # shard-targeted requests (registration, restore, epochs)
    # ------------------------------------------------------------------

    def _shard_request(
        self, shard: int, payload: dict[str, Any]
    ) -> None:
        w = self._owners[shard]
        resp = self._request(w, payload)
        for s in self._worker_shards[w]:
            self.proxies[s]._absorb(resp["sections"][str(s)])

    def register(
        self, shard: int, spec: QuerySpec, query_id: str
    ) -> None:
        self._shard_request(
            shard,
            {
                "op": "register",
                "shard": shard,
                "query_id": query_id,
                "spec": spec.to_dict(),
            },
        )

    def deregister(self, shard: int, query_id: str) -> None:
        self._shard_request(
            shard,
            {"op": "deregister", "shard": shard, "query_id": query_id},
        )

    def restore_query(
        self, shard: int, spec: QuerySpec, query_id: str, state
    ) -> None:
        self._shard_request(
            shard,
            {
                "op": "restore",
                "shard": shard,
                "query_id": query_id,
                "spec": spec.to_dict(),
                "state": state,
            },
        )

    def set_epoch(self, shard: int, epoch: int) -> None:
        self._shard_request(
            shard,
            {"op": "set_epoch", "shard": shard, "epoch": epoch},
        )

    # ------------------------------------------------------------------
    # fault-injection hooks (tests / benchmarks)
    # ------------------------------------------------------------------

    def kill_worker(self, w: int) -> None:
        """SIGKILL one worker (test hook for crash recovery: the next
        request detects the death, restarts, and replays)."""
        handle = self._workers[w]
        if handle is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)
