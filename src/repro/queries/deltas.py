"""Result deltas: what a standing query's result *changed by*.

The continuous query monitor (:mod:`repro.queries.monitor`) maintains
each standing iRQ/ikNNQ result incrementally; this module defines the
currency in which those maintenance steps are reported.  Every mutation
path — :meth:`~repro.queries.monitor.QueryMonitor.apply_moves`,
``apply_insert``, ``apply_delete``, ``apply_event``, topology resyncs,
even registration itself — emits one :class:`ResultDelta` per standing
query whose result actually changed, bundled into a
:class:`DeltaBatch`.  Standing iRQ/ikNNQ deltas annotate members with
distances; standing iPRQ deltas annotate them with qualifying
probabilities (re-annotations of retained members travel in
``probability_changed`` instead of ``distance_changed``).  Downstream
consumers (dashboards, the asyncio serving layer in
:mod:`repro.queries.serving`) apply deltas instead of diffing whole
result sets.

The contract is *replayability*: starting from the empty state at
registration time and applying every emitted delta in order reproduces
the monitor's current result exactly (membership **and** stored
distances) — :func:`replay_deltas` implements that fold and the
property tests in ``tests/properties/test_prop_deltas.py`` enforce it
against from-scratch query execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.objects.uncertain import UncertainObject
    from repro.space.events import EventResult

#: Mutation paths a delta can originate from.
DELTA_CAUSES = (
    "register",    # initial result of a freshly registered query
    "deregister",  # the standing query was removed (everything leaves)
    "move",        # batched position updates (apply_moves/ingest_moves)
    "insert",      # a brand-new object appeared
    "delete",      # an object disappeared
    "topology",    # a topology_version bump forced a full resync
    "snapshot",    # synthetic: a subscriber priming itself (serving)
)


@dataclass(frozen=True)
class ResultDelta:
    """One standing query's result change from one mutation.

    ``entered`` maps newly admitted member ids to their stored
    annotation (``None`` marks a member accepted by bounds alone;
    otherwise the exact expected distance, or — for a standing iPRQ —
    the exact qualifying probability), ``left`` lists the ids that
    dropped out, and ``distance_changed`` maps retained members to
    their *new* stored distance where it differs from the previous one.
    ``probability_changed`` is the iPRQ twin of ``distance_changed``:
    retained members whose stored qualifying probability moved.  A
    delta carries re-annotations in exactly one of the two ``changed``
    fields (which one is the query kind's choice — see
    :attr:`repro.queries.maintainers.StandingQuery.annotates`), and all
    parts are disjoint by construction.
    """

    query_id: str
    cause: str
    entered: dict[str, float | None] = field(default_factory=dict)
    left: tuple[str, ...] = ()
    distance_changed: dict[str, float | None] = field(default_factory=dict)
    probability_changed: dict[str, float | None] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.cause not in DELTA_CAUSES:
            raise ValueError(f"unknown delta cause {self.cause!r}")

    def __bool__(self) -> bool:
        return bool(
            self.entered
            or self.left
            or self.distance_changed
            or self.probability_changed
        )

    @property
    def is_empty(self) -> bool:
        return not self

    def apply_to(self, state: dict[str, float | None]) -> None:
        """Fold this delta into ``state`` (member id -> annotation)."""
        for oid in self.left:
            state.pop(oid, None)
        state.update(self.entered)
        state.update(self.distance_changed)
        state.update(self.probability_changed)

    def summary(self) -> str:
        """Compact human-readable rendering (dashboards, logs)."""
        parts = []
        if self.entered:
            parts.append("+" + ",".join(sorted(self.entered)))
        if self.left:
            parts.append("-" + ",".join(sorted(self.left)))
        if self.distance_changed:
            parts.append("~" + ",".join(sorted(self.distance_changed)))
        if self.probability_changed:
            parts.append("%" + ",".join(sorted(self.probability_changed)))
        body = " ".join(parts) if parts else "(no change)"
        return f"{self.query_id}[{self.cause}] {body}"


def diff_results(
    query_id: str,
    cause: str,
    before: dict[str, float | None],
    after: dict[str, float | None],
    probabilities: bool = False,
) -> ResultDelta | None:
    """The delta taking ``before`` to ``after``; ``None`` when equal.

    ``probabilities`` selects which field re-annotations of retained
    members land in: ``distance_changed`` (the default) or, for a
    standing iPRQ whose stored annotations are qualifying
    probabilities, ``probability_changed``."""
    entered = {oid: d for oid, d in after.items() if oid not in before}
    left = tuple(sorted(oid for oid in before if oid not in after))
    changed = {
        oid: d
        for oid, d in after.items()
        if oid in before and before[oid] != d
    }
    if not entered and not left and not changed:
        return None
    if probabilities:
        return ResultDelta(
            query_id, cause, entered, left, probability_changed=changed
        )
    return ResultDelta(query_id, cause, entered, left, changed)


def replay_deltas(
    deltas: Iterable[ResultDelta],
    state: dict[str, float | None] | None = None,
) -> dict[str, float | None]:
    """Fold a delta sequence (one query's, in emission order) into the
    resulting member -> distance mapping."""
    state = {} if state is None else dict(state)
    for delta in deltas:
        delta.apply_to(state)
    return state


@dataclass(frozen=True)
class DeltaBatch:
    """Every delta one monitor mutation produced, plus its side outputs.

    ``moved`` carries the post-update objects of an ``apply_moves`` /
    ``ingest_moves`` call, ``deleted`` the object an ``apply_delete``
    removed, and ``event_result`` the space-level outcome of an
    ``apply_event`` — so the delta-first API loses nothing the old
    per-method return values provided.
    """

    deltas: tuple[ResultDelta, ...] = ()
    moved: tuple["UncertainObject", ...] = ()
    deleted: "UncertainObject | None" = None
    event_result: "EventResult | None" = None

    def __iter__(self) -> Iterator[ResultDelta]:
        return iter(self.deltas)

    def __len__(self) -> int:
        return len(self.deltas)

    def __bool__(self) -> bool:
        return any(self.deltas)

    def for_query(self, query_id: str) -> tuple[ResultDelta, ...]:
        """This batch's deltas for one standing query, in order (a batch
        can carry e.g. a topology resync plus a move delta)."""
        return tuple(d for d in self.deltas if d.query_id == query_id)

    def query_ids(self) -> list[str]:
        """Ids of the queries this batch touches, in first-seen order."""
        seen: dict[str, None] = {}
        for d in self.deltas:
            seen.setdefault(d.query_id)
        return list(seen)

    def merge(self, other: "DeltaBatch") -> "DeltaBatch":
        """Concatenate two batches (sharded monitors merge per-shard
        batches into one)."""
        return DeltaBatch.merge_all((self, other))

    @staticmethod
    def merge_all(batches: Iterable["DeltaBatch"]) -> "DeltaBatch":
        """Ordered n-way merge: concatenate ``batches`` left to right in
        one pass (folding :meth:`merge` pairwise is quadratic in the
        number of shards), first non-``None`` ``deleted`` /
        ``event_result`` wins.  The order of ``batches`` *is* the delta
        order of the result — the sharded monitor always passes
        per-shard batches in shard-index order, which is what makes its
        parallel execution mode bit-identical to serial."""
        deltas: list[ResultDelta] = []
        moved: list["UncertainObject"] = []
        deleted = None
        event_result = None
        for batch in batches:
            deltas.extend(batch.deltas)
            moved.extend(batch.moved)
            deleted = deleted or batch.deleted
            event_result = event_result or batch.event_result
        return DeltaBatch(
            deltas=tuple(deltas),
            moved=tuple(moved),
            deleted=deleted,
            event_result=event_result,
        )
