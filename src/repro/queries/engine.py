"""Shared machinery of the four-phase query evaluation (Section IV-B).

Both processors compose the same pieces; the subtle part is *why* the
subgraph restriction stays exact, documented on
:func:`subgraph_phase`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

from repro.distances.bounds import DistanceInterval, object_bounds
from repro.distances.expected import expected_indoor_distance
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex, RangeSearchResult
from repro.objects.uncertain import UncertainObject
from repro.space.doors_graph import DoorDistances


@dataclass
class QueryResult:
    """Result of a distance-aware query.

    ``objects`` holds the qualifying objects; ``distances`` the exact
    expected indoor distance for every object whose refinement was
    necessary (objects accepted purely by bounds map to ``None``).
    """

    objects: list[UncertainObject] = field(default_factory=list)
    distances: dict[str, float | None] = field(default_factory=dict)

    def ids(self) -> set[str]:
        return {o.object_id for o in self.objects}

    def __len__(self) -> int:
        return len(self.objects)

    def __iter__(self):
        return iter(self.objects)


def locate_source(index: CompositeIndex, q: Point) -> str:
    """``P(q)`` via the tree (r = 0 point location)."""
    partition = index.locate(q)
    if partition is None:
        raise QueryError(f"query point {q} lies outside every partition")
    return partition.partition_id


def filtering_phase(
    index: CompositeIndex, q: Point, r: float, use_skeleton: bool
) -> tuple[RangeSearchResult, float]:
    """Phase 1: RangeSearch on the geometric layer (Algorithm 4)."""
    t0 = time.perf_counter()
    result = index.range_search(q, r, use_skeleton=use_skeleton)
    return result, time.perf_counter() - t0


def subgraph_phase(
    index: CompositeIndex,
    q: Point,
    source_partition: str,
    candidate_partitions: set[str],
    cutoff: float | None = None,
) -> tuple[DoorDistances, float]:
    """Phase 2: single-source Dijkstra restricted to the candidates.

    Exactness argument (mirrors the paper's): any path of length <= the
    query bound enters only partitions whose skeleton min-distance is
    <= the bound (each prefix of the path is itself a path), and the
    filtering phase retrieved exactly those — so restricted distances
    equal true distances for everything that can qualify, and they are
    ordinary (over-)estimates for everything else.
    """
    t0 = time.perf_counter()
    allowed = set(candidate_partitions)
    allowed.add(source_partition)
    dd = index.doors_graph.dijkstra_from_point(
        q,
        source_partition=source_partition,
        allowed_partitions=allowed,
        cutoff=cutoff,
    )
    return dd, time.perf_counter() - t0


def pruning_phase(
    index: CompositeIndex,
    q: Point,
    candidates: list[UncertainObject],
    dd: DoorDistances,
    search_radius: float | None = None,
) -> tuple[dict[str, DistanceInterval], float]:
    """Phase 3: distance intervals per candidate (Table III dispatch).

    ``search_radius`` is the bound the subgraph/cutoff Dijkstra was run
    with; doors it failed to reach are provably farther than it, which
    keeps lower bounds finite for radius-straddling objects (see
    :func:`repro.distances.bounds.subregion_stats`).
    """
    t0 = time.perf_counter()
    floor = (
        search_radius
        if search_radius is not None and math.isfinite(search_radius)
        else None
    )
    intervals = {
        obj.object_id: object_bounds(
            q, obj, dd, index.space, index.population.grid,
            unreached_floor=floor,
        )
        for obj in candidates
    }
    return intervals, time.perf_counter() - t0


class Refiner:
    """Phase 4: exact expected distances, with an escape hatch.

    An object whose expected distance is within the query bound can
    still own instances whose paths leave the candidate subgraph (a far
    low-mass subregion).  For those the restricted Dijkstra reports
    "unreachable", so the refiner recomputes the object against a full,
    unrestricted Dijkstra — built lazily, at most once per query.
    """

    def __init__(self, index: CompositeIndex, q: Point, dd: DoorDistances):
        self.index = index
        self.q = q
        self.dd = dd
        self._full_dd: DoorDistances | None = None
        self.fallbacks = 0

    def exact(self, obj: UncertainObject) -> float:
        value = expected_indoor_distance(
            self.q, obj, self.dd, self.index.space, self.index.population.grid
        ).value
        if math.isfinite(value):
            return value
        if self._full_dd is None:
            self._full_dd = self.index.doors_graph.dijkstra_from_point(
                self.q, self.dd.source_partition
            )
        self.fallbacks += 1
        return expected_indoor_distance(
            self.q, obj, self._full_dd, self.index.space,
            self.index.population.grid,
        ).value


def refine_object(
    index: CompositeIndex,
    q: Point,
    obj: UncertainObject,
    dd: DoorDistances,
) -> float:
    """One-shot exact distance (no fallback); prefer :class:`Refiner`
    inside query processors."""
    return expected_indoor_distance(
        q, obj, dd, index.space, index.population.grid
    ).value
