"""Per-query statistics: phase timings and pruning counters.

These counters regenerate the paper's evaluation directly:

* Figure 12(b)/13(b): the phase time breakdown;
* Figure 14(a)/(c): filtering and pruning ratios, defined as the share
  of ``|O|`` disqualified by the end of the respective phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class QueryStats:
    """Counters and timings for one query execution."""

    #: wall-clock seconds per phase
    t_filtering: float = 0.0
    t_subgraph: float = 0.0
    t_pruning: float = 0.0
    t_refinement: float = 0.0

    total_objects: int = 0
    candidates_after_filtering: int = 0
    accepted_by_bounds: int = 0
    rejected_by_bounds: int = 0
    refined: int = 0
    #: refinements that escaped to a full (unrestricted) Dijkstra because
    #: some instance path left the candidate subgraph — the
    #: :class:`repro.queries.engine.Refiner` escape hatch.
    fallback_recomputes: int = 0
    result_size: int = 0

    partitions_retrieved: int = 0
    nodes_visited: int = 0
    doors_settled: int = 0

    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def total_time(self) -> float:
        return (
            self.t_filtering + self.t_subgraph + self.t_pruning
            + self.t_refinement
        )

    @property
    def filtering_ratio(self) -> float:
        """Share of objects disqualified by the filtering phase."""
        if self.total_objects == 0:
            return 0.0
        return 1.0 - self.candidates_after_filtering / self.total_objects

    @property
    def pruning_ratio(self) -> float:
        """Share of objects disqualified by the end of the pruning
        phase (i.e. everything that never reached refinement)."""
        if self.total_objects == 0:
            return 0.0
        return 1.0 - self.refined / self.total_objects

    def phase_breakdown(self) -> dict[str, float]:
        return {
            "filtering": self.t_filtering,
            "subgraph": self.t_subgraph,
            "pruning": self.t_pruning,
            "refinement": self.t_refinement,
        }

    def merge(self, other: "QueryStats") -> "QueryStats":
        """Accumulate another query's stats (for averaging over a
        workload); timings and counters add up."""
        out = QueryStats()
        for name in (
            "t_filtering", "t_subgraph", "t_pruning", "t_refinement",
            "total_objects", "candidates_after_filtering",
            "accepted_by_bounds", "rejected_by_bounds", "refined",
            "fallback_recomputes", "result_size", "partitions_retrieved",
            "nodes_visited", "doors_settled",
        ):
            setattr(out, name, getattr(self, name) + getattr(other, name))
        return out
