"""Query sessions: the memoised single-source search shared by related
queries — and by continuous monitoring.

The paper's future work (Section VII) calls out "reusing computational
efforts on indoor distances when multiple, related queries are issued
within a short period".  A :class:`QuerySession` memoises the
single-source Dijkstra per query point, so a burst of queries from one
location (a kiosk issuing an iRQ, then an ikNNQ, then a widened iRQ)
pays for the subgraph phase once.

Two properties make the cache broadly reusable:

* the cached search is *unrestricted* (no subgraph, no cutoff), so one
  entry serves any radius or ``k`` from that point — the trade-off of
  one slightly more expensive first search against zero-cost repeats is
  measured by the ``ablation_a4`` benchmark;
* entries depend only on the space's *topology*, never on object
  positions: ``_cached_version`` tracks ``topology_version`` and the
  whole cache is dropped the moment a door closes or a partition
  changes, while arbitrarily many object moves leave it valid.

The second property is what the continuous query monitor
(:mod:`repro.queries.monitor`) is built on: each *standing* query keeps
its session-cached search across a whole stream of position updates and
re-derives per-object distance intervals from it at update time, paying
a fresh Dijkstra only when the topology actually changes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.distances.batch import DoorLayout, QueryPack
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.engine import QueryResult, locate_source
from repro.queries.knn import ikNNQ
from repro.queries.range_query import iRQ
from repro.queries.stats import QueryStats
from repro.space.doors_graph import DoorDistances


@dataclass
class QuerySession:
    """A reuse context for queries issued from recurring locations."""

    index: CompositeIndex
    #: LRU capacity for *unpinned* entries (ad-hoc query points).
    #: Pinned entries — standing queries — are exempt and uncounted, so
    #: a long-running server with churning one-shot queries stays
    #: bounded while its standing queries keep their searches forever.
    max_unpinned: int = 256
    _cache: dict[tuple[float, float, int], DoorDistances] = field(
        default_factory=dict
    )
    _pins: dict[tuple[float, float, int], int] = field(default_factory=dict)
    _cached_version: int = -1
    hits: int = 0
    misses: int = 0
    #: Unpinned entries dropped by the LRU bound (topology
    #: invalidations and pin-lifecycle evictions are not counted here).
    evictions: int = 0
    #: Per-point :class:`~repro.distances.batch.QueryPack` views of the
    #: cached searches (the batch kernel's query-side operand), managed
    #: by the same pin/evict/invalidate lifecycle as ``_cache``.
    _packs: dict[tuple[float, float, int], QueryPack] = field(
        default_factory=dict, repr=False
    )
    _layout: DoorLayout | None = field(default=None, repr=False)
    # Shards of a parallel ShardedMonitor share one session and call in
    # from pool threads; the lock keeps the cache/pin maps consistent.
    # The Dijkstra itself runs outside the lock, so concurrent searches
    # from *different* points never serialise each other.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def door_distances(self, q: Point) -> DoorDistances:
        """The (memoised) full single-source search from ``q``.

        ``misses`` counts searches actually paid: two threads racing on
        one uncached point may both compute (the search is deterministic,
        so either result is the same), and each counts one miss.
        """
        space = self.index.space
        key = (q.x, q.y, q.floor)
        with self._lock:
            if self._cached_version != space.topology_version:
                # Any topology change invalidates every cached search.
                self._cache.clear()
                self._packs.clear()
                self._cached_version = space.topology_version
            dd = self._cache.get(key)
            if dd is not None:
                self.hits += 1
                # Refresh LRU recency (dict order is the eviction order).
                self._cache[key] = self._cache.pop(key)
                return dd
            self.misses += 1
            searched_version = self._cached_version
        source = locate_source(self.index, q)
        dd = self.index.doors_graph.dijkstra_from_point(q, source)
        with self._lock:
            if (
                self._cached_version == searched_version
                and space.topology_version == searched_version
            ):
                # First writer wins, so every caller shares one object.
                cached = self._cache.setdefault(key, dd)
                self._evict_overflow()
                return cached
            # Topology moved mid-search (the version this search ran
            # under is gone): usable for this caller, stale for the
            # cache.
            return dd

    def _evict_overflow(self) -> None:
        """Drop least-recently-used *unpinned* entries past the bound.
        Caller holds the lock.  Pinned entries are exempt and do not
        count toward the bound."""
        unpinned = [
            k for k in self._cache if self._pins.get(k, 0) == 0
        ]
        for key in unpinned[: max(0, len(unpinned) - self.max_unpinned)]:
            del self._cache[key]
            self._packs.pop(key, None)
            self.evictions += 1

    def evict(self, q: Point) -> bool:
        """Drop the cached search from ``q``, if any; returns whether an
        entry was evicted.  Respects pins: a point some standing query
        still holds (see :meth:`pin`) is never evicted."""
        key = (q.x, q.y, q.floor)
        with self._lock:
            if self._pins.get(key, 0) > 0:
                return False
            self._packs.pop(key, None)
            return self._cache.pop(key, None) is not None

    def pin(self, q: Point) -> None:
        """Declare a long-lived user of the search from ``q`` (a
        standing query).  Pins are reference-counted **on the session**,
        so monitors sharing one session (shards) cannot evict each
        other's searches; the entry is dropped when the last pin at the
        point is released."""
        key = (q.x, q.y, q.floor)
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, q: Point) -> bool:
        """Release one pin at ``q``; when it was the last one, the
        cached search is evicted (long-running monitors with churning
        query populations must not grow without bound).  Returns whether
        an entry was evicted."""
        key = (q.x, q.y, q.floor)
        with self._lock:
            count = self._pins.get(key)
            if count is None:
                # Never pinned (or already fully released): a stray
                # unpin must not evict a live entry ad-hoc queries
                # still reuse.
                return False
            if count > 1:
                self._pins[key] = count - 1
                return False
            del self._pins[key]
            self._packs.pop(key, None)
            return self._cache.pop(key, None) is not None

    @property
    def cache_size(self) -> int:
        """Number of memoised single-source searches currently held."""
        return len(self._cache)

    # ------------------------------------------------------------------
    # batch-kernel operands (see repro.distances.batch)
    # ------------------------------------------------------------------

    def door_layout(self) -> DoorLayout:
        """The partition-indexed door layout for the current topology,
        shared by every query pack and object block in a batch.  Cached
        per ``topology_version``."""
        space = self.index.space
        with self._lock:
            layout = self._layout
            if (
                layout is not None
                and layout.topology_version == space.topology_version
            ):
                return layout
        layout = DoorLayout(space)
        with self._lock:
            if space.topology_version == layout.topology_version:
                self._layout = layout
        return layout

    def kernel_pack(self, q: Point) -> QueryPack:
        """The query-side operand of the batched bounds kernel: the
        memoised search from ``q`` flattened into a door-weight vector
        (:class:`~repro.distances.batch.QueryPack`).  Cached alongside
        the search and dropped with it — same pin/unpin/evict/topology
        lifecycle, so a pinned standing query keeps its pack until it
        deregisters and an ad-hoc point's pack leaves with its LRU
        slot."""
        key = (q.x, q.y, q.floor)
        layout = self.door_layout()
        with self._lock:
            pack = self._packs.get(key)
            if pack is not None and pack.layout is layout:
                return pack
        dd = self.door_distances(q)
        pack = QueryPack(dd, layout)
        with self._lock:
            if (
                self._cache.get(key) is dd
                and self._cached_version == layout.topology_version
            ):
                self._packs[key] = pack
        return pack

    # ------------------------------------------------------------------

    def irq(
        self, q: Point, r: float, stats: QueryStats | None = None
    ) -> QueryResult:
        """iRQ with the subgraph phase served from the session cache."""
        dd = self.door_distances(q)
        return iRQ(q, r, self.index, stats=stats, precomputed_dd=dd)

    def iknnq(
        self, q: Point, k: int, stats: QueryStats | None = None
    ) -> QueryResult:
        """ikNNQ with the subgraph phase served from the session cache."""
        dd = self.door_distances(q)
        return ikNNQ(q, k, self.index, stats=stats, precomputed_dd=dd)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
