"""Sharded continuous monitoring: standing queries partitioned across
per-shard :class:`~repro.queries.monitor.QueryMonitor` instances.

One :class:`QueryMonitor` evaluates every ``(update, standing query)``
pair serially, so update fan-out grows linearly with the standing-query
population.  A :class:`ShardedMonitor` splits the standing queries by
**floor and spatial zone** of their query point across ``n_shards``
monitors that all share one :class:`~repro.index.composite.CompositeIndex`
(and one :class:`~repro.queries.session.QuerySession`, so a query point
still pays its full Dijkstra exactly once), then routes each index
mutation only to the shards it can possibly affect.

The router's skip test is the same conservative geometry Table III's
intervals are built from: a 3-D Euclidean distance never exceeds an
indoor (walking) distance, so an object whose old **and** new instance
boxes are Euclidean-farther than a query's influence radius (iRQ/iPRQ
``r`` / current ikNNQ ``tau``, see
:meth:`~repro.queries.monitor.QueryMonitor.influence_radii`) from that
query provably cannot enter, leave, or re-rank its result — both old
and new positions matter, because leaving is as much a result change as
entering.  An unfull ikNNQ makes its shard unskippable (``tau`` is
infinite — any reachable object could enter).  Reach tables are cached
per shard and rebuilt only when a shard's
:attr:`~repro.queries.monitor.QueryMonitor.reach_epoch` (or the
topology) moved since the last build — batches that change no ikNNQ
``tau`` and register nothing route on the cached table
(:attr:`ShardStats.reach_cache_hits`).

The reach summary the router tests against is **two-level**:

* a coarse bounding box of the shard's query points with the maximum
  influence radius among them — one cheap test that rejects most far
  updates outright;
* a per-floor table of **grid buckets** (query points grouped on a
  coarse per-floor grid, each bucket carrying its own tight box and its
  own maximum radius) — so one far-reaching query inflates only its own
  bucket, and an update landing *between* a shard's query clusters no
  longer wakes the shard just because the coarse box spans the gap.
  Updates the buckets exclude after the coarse box admitted them are
  counted in ``ShardStats.bucket_skips``.

The grid resolution adapts to standing-query density:
:func:`_buckets_per_side` sizes each reach table's per-floor grid from
the shard's own query count (clamped to ``[2, 32]`` cells per side),
so a near-empty shard does not pay bucket bookkeeping for a fine grid
and a dense shard is not stuck at the historical fixed 8x8.

Routing is vectorized on the batch path: each update batch's old and
new instance boxes are packed once into ``(n, 6)`` numpy arrays, and a
shard's coarse box plus **all** of its grid buckets are tested in a
handful of whole-array operations
(:meth:`_ShardReach.admit_moves`) instead of a per-(update, bucket)
Python loop.  The arithmetic is the exact
:meth:`~repro.geometry.rect.Box3.min_distance_to` formula evaluated in
IEEE-754 float64 either way, so admission decisions — and therefore
results and routing statistics — are bit-identical to the scalar
two-level test, which single-box insert/delete routing still uses.

Skipping is sound against the monitor's incremental invariants because
``tau`` never *grows* on an incremental path (members refine downward,
entries evict the worst member); the only path that can grow it is a
full re-execution, which re-reads the whole — already fully updated —
index population and therefore sees filtered objects anyway.

Parallel execution
------------------

Shards are provably independent once routed: each ``ingest_*`` call
touches only its own monitor's standing results, and the one shared
mutable structure — the session's Dijkstra cache — takes its own lock.
``ShardedMonitor(..., workers=N)`` therefore runs the routed per-shard
maintenance on a :class:`~concurrent.futures.ThreadPoolExecutor`
(pair maintenance is numpy-heavy, so threads help wherever numpy drops
the GIL), gathering per-shard :class:`~repro.queries.deltas.DeltaBatch`
results **in shard-index order** — the same order the serial loop
merges in — so the merged batch is bit-identical to serial execution.

``backend="process"`` swaps the thread pool for the
:mod:`repro.queries.procpool` engine: shard monitors live in worker
*processes* over per-worker world replicas, routed updates travel as
messages (instance coordinates through a shared-memory numpy table),
and per-shard deltas come back as wire records, still merged in
shard-index order — bit-identical to serial, but with real multi-core
parallelism where the GIL caps thread workers at ~1x.  Every mutation
path below first computes a **routing plan** (one action per shard:
ingest this payload, or just drain parked deltas) and then hands the
plan to the selected execution backend, so the routing decisions are
provably shared across serial, thread, and process execution.
"""

from __future__ import annotations

import itertools
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.api.specs import QuerySpec, standing_spec
from repro.distances.batch import pack_block
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.geometry.rect import Box3, Rect
from repro.index.composite import CompositeIndex
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.queries.deltas import DeltaBatch
from repro.queries.maintainers import spec_anchor
from repro.queries.monitor import (
    MonitorStats,
    QueryMonitor,
    claim_query_id,
)
from repro.queries.session import QuerySession
from repro.space.events import TopologyEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.queries.procpool import ProcPoolConfig

#: Safety margin added to influence radii before a skip decision, so a
#: distance that ties the threshold to the last float bit never skips.
_EPS = 1e-9

#: Density-derived per-floor grid bounds: a shard's reach table never
#: uses fewer than ``_MIN_BUCKETS_PER_SIDE`` or more than
#: ``_MAX_BUCKETS_PER_SIDE`` cells per side (see
#: :func:`_buckets_per_side`).
_MIN_BUCKETS_PER_SIDE = 2
_MAX_BUCKETS_PER_SIDE = 32


def _buckets_per_side(n_queries: int) -> int:
    """Per-floor grid resolution for a shard holding ``n_queries``
    standing queries.

    ``ceil(2 * sqrt(n))`` cells per side, clamped to
    ``[_MIN_BUCKETS_PER_SIDE, _MAX_BUCKETS_PER_SIDE]``: the populated
    bucket count is bounded by the query count, so a sparse shard gets
    a coarse grid (less bucket bookkeeping per batch) while a dense
    shard gets proportionally finer cells (tighter boxes, more
    bucket-level skips).  Sixteen queries reproduce the historical
    fixed ``8``; one query gets the minimum ``2``; the cap keeps the
    cell arithmetic bounded for very dense shards.
    """
    if n_queries <= 0:
        return _MIN_BUCKETS_PER_SIDE
    side = math.ceil(2.0 * math.sqrt(n_queries))
    return max(_MIN_BUCKETS_PER_SIDE, min(_MAX_BUCKETS_PER_SIDE, side))


@dataclass
class ShardStats:
    """Routing accounting across the lifetime of one sharded monitor.

    ``shard_visits`` / ``shards_skipped`` count (batch, shard) routing
    decisions over shards that *hold standing queries* (an empty shard
    is not evidence the router works); ``updates_filtered`` counts
    per-shard update exclusions inside visited shards — updates whose
    pairs were never evaluated even though the shard itself ran.
    ``bucket_skips`` counts the update exclusions the per-floor grid
    buckets are *responsible* for: the coarse shard box admitted the
    update and only the bucketed reach table proved it irrelevant —
    the direct measure of what router tightening buys over the single
    bbox + max-radius summary.  ``reach_cache_hits`` counts routed
    mutations that reused a shard's cached reach table instead of
    rebuilding it (no influence radius in the shard changed since the
    table was built — see
    :attr:`repro.queries.monitor.QueryMonitor.reach_epoch`).
    """

    batches_routed: int = 0
    shard_visits: int = 0
    shards_skipped: int = 0
    updates_filtered: int = 0
    bucket_skips: int = 0
    reach_cache_hits: int = 0

    @property
    def skip_ratio(self) -> float:
        """Share of (batch, shard) decisions that skipped the shard."""
        decisions = self.shard_visits + self.shards_skipped
        if decisions == 0:
            return 0.0
        return self.shards_skipped / decisions


def _object_box(obj: UncertainObject, floor_height: float) -> Box3:
    """The object's instance bounding box at its floor elevation (the
    flattened :class:`Box3` the tree tier also measures distances on)."""
    return Box3.from_rect(obj.bounds(), obj.floor, floor_height).flattened()


def _box_rows(boxes: list[Box3]) -> np.ndarray:
    """Pack boxes into an ``(n, 6)`` float64 array with columns
    ``minx, miny, minz, maxx, maxy, maxz`` — the layout every
    vectorized admission test below broadcasts against."""
    return np.array(
        [
            [b.minx, b.miny, b.minz, b.maxx, b.maxy, b.maxz]
            for b in boxes
        ],
        dtype=np.float64,
    ).reshape(len(boxes), 6)


def _box_min_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise :meth:`Box3.min_distance_to` between two box arrays.

    ``a`` is ``(m, 6)``, ``b`` is ``(n, 6)``; returns the ``(m, n)``
    matrix of minimum Euclidean distances.  Per axis the gap is
    ``max(a.min - b.max, 0, b.min - a.max)`` — exactly the scalar
    formula, evaluated in the same float64 arithmetic, so every
    comparison downstream decides identically to the scalar path.
    """
    dx = np.maximum(
        0.0,
        np.maximum(
            a[:, None, 0] - b[None, :, 3], b[None, :, 0] - a[:, None, 3]
        ),
    )
    dy = np.maximum(
        0.0,
        np.maximum(
            a[:, None, 1] - b[None, :, 4], b[None, :, 1] - a[:, None, 4]
        ),
    )
    dz = np.maximum(
        0.0,
        np.maximum(
            a[:, None, 2] - b[None, :, 5], b[None, :, 2] - a[:, None, 5]
        ),
    )
    return np.sqrt(dx * dx + dy * dy + dz * dz)


class _ClaimedIds:
    """Membership view over the routed ids plus every shard's own
    registry, for :func:`~repro.queries.monitor.claim_query_id` (which
    only ever probes ``in``)."""

    def __init__(self, homes: dict[str, int], shards: list) -> None:
        self._homes = homes
        self._shards = shards

    def __contains__(self, query_id: str) -> bool:
        if query_id in self._homes:
            return True
        return any(query_id in shard for shard in self._shards)


@dataclass(frozen=True)
class _ReachBucket:
    """One grid bucket of a shard's reach table: the tight bounding box
    of the query points that hash into one per-floor grid cell, and the
    largest influence radius among them."""

    box: Box3
    radius: float

    def may_affect(self, obj_box: Box3) -> bool:
        return obj_box.min_distance_to(self.box) <= self.radius + _EPS


@dataclass(frozen=True)
class _ShardReach:
    """One shard's influence summary for one batch.

    ``box``/``radius`` are the coarse level (bounding box of all query
    points, maximum radius); ``buckets`` is the tightened per-floor
    grid level.  An empty bucket tuple means "coarse only" (the
    ``bucketed_router=False`` ablation mode).

    Single-box routing (insert/delete) uses the scalar two-level test;
    batch routing packs the summary into numpy arrays once
    (:attr:`_coarse_rows` / :attr:`_bucket_rows`, cached on the frozen
    instance) and admits the whole batch in :meth:`admit_moves`.
    """

    box: Box3
    radius: float
    buckets: tuple[_ReachBucket, ...] = ()

    @cached_property
    def _coarse_rows(self) -> np.ndarray:
        """``(1, 6)`` array of the coarse box."""
        return _box_rows([self.box])

    @cached_property
    def _bucket_rows(self) -> tuple[np.ndarray, np.ndarray]:
        """``(m, 6)`` bucket boxes and the ``(m, 1)`` column of their
        skip thresholds (radius + eps), ready to broadcast."""
        boxes = _box_rows([b.box for b in self.buckets])
        radii = np.array(
            [[b.radius + _EPS] for b in self.buckets], dtype=np.float64
        ).reshape(len(self.buckets), 1)
        return boxes, radii

    def coarse_may_affect(self, obj_box: Box3) -> bool:
        if math.isinf(self.radius):
            return True
        return obj_box.min_distance_to(self.box) <= self.radius + _EPS

    def bucket_may_affect(self, obj_box: Box3) -> bool:
        if not self.buckets:
            return True  # coarse-only mode: never tighten
        return any(b.may_affect(obj_box) for b in self.buckets)

    def may_affect(
        self, obj_box: Box3, stats: ShardStats | None = None
    ) -> bool:
        """Two-level test for a single box (insert/delete routing)."""
        if not self.coarse_may_affect(obj_box):
            return False
        if self.bucket_may_affect(obj_box):
            return True
        if stats is not None:
            stats.bucket_skips += 1
        return False

    def may_affect_move(
        self,
        old_box: Box3,
        new_box: Box3,
        stats: ShardStats | None = None,
    ) -> bool:
        """Two-level test for a move (old *or* new position relevant);
        a bucket skip is counted once per excluded update, not once per
        tested box."""
        if not (
            self.coarse_may_affect(old_box)
            or self.coarse_may_affect(new_box)
        ):
            return False
        if self.bucket_may_affect(old_box) or self.bucket_may_affect(
            new_box
        ):
            return True
        if stats is not None:
            stats.bucket_skips += 1
        return False

    def admit_moves(
        self,
        old_rows: np.ndarray,
        new_rows: np.ndarray,
        stats: ShardStats | None = None,
    ) -> np.ndarray:
        """Vectorized :meth:`may_affect_move` over a whole batch.

        ``old_rows``/``new_rows`` are the batch's ``(n, 6)`` box arrays
        (:func:`_box_rows`); returns the boolean admission mask, in
        batch order.  The caller handles the infinite-radius case (the
        whole batch is relevant, no geometry needed).  Bucket skips are
        counted exactly as the scalar test counts them: once per update
        the coarse box admitted and the buckets excluded.
        """
        threshold = self.radius + _EPS
        coarse = (
            _box_min_distances(self._coarse_rows, old_rows)[0]
            <= threshold
        ) | (
            _box_min_distances(self._coarse_rows, new_rows)[0]
            <= threshold
        )
        if not self.buckets:
            return coarse
        boxes, radii = self._bucket_rows
        in_reach = (
            (_box_min_distances(boxes, old_rows) <= radii).any(axis=0)
        ) | ((_box_min_distances(boxes, new_rows) <= radii).any(axis=0))
        if stats is not None:
            stats.bucket_skips += int(
                np.count_nonzero(coarse & ~in_reach)
            )
        return coarse & in_reach


class ShardedMonitor:
    """``n_shards`` query monitors over one shared composite index.

    Mirrors the :class:`~repro.queries.monitor.QueryMonitor` API —
    registration, result access, and the four ``apply_*`` mutation
    paths, each returning a merged
    :class:`~repro.queries.deltas.DeltaBatch` — but mutates the shared
    index exactly once per call and fans maintenance out through the
    per-shard ``ingest_*`` hooks, skipping shards the router proves
    untouched.

    Standing queries are assigned by :meth:`shard_of`: the query
    point's floor and spatial quadrant hash onto a shard, so co-located
    queries (one kiosk's iRQ and ikNNQ) tend to share both a shard and
    a session-cached Dijkstra.

    ``backend`` selects how routed per-shard maintenance executes:

    * ``"thread"`` (default) — shard monitors are in-process
      :class:`QueryMonitor` instances; ``workers > 1`` fans the routed
      work out on a thread pool, merged in shard-index order,
      bit-identical to serial.
    * ``"process"`` — shard monitors live in worker processes behind
      parent-side proxies (see :mod:`repro.queries.procpool`); routed
      work travels as messages and comes back as wire-encoded delta
      batches, merged in the same shard-index order, still
      bit-identical to serial.

    ``bucketed_router=False`` falls back to the coarse single-box reach
    summary (kept as an ablation for the benchmark's before/after
    skip-ratio comparison).
    """

    def __init__(
        self,
        index: CompositeIndex,
        n_shards: int = 4,
        session: QuerySession | None = None,
        workers: int = 1,
        bucketed_router: bool = True,
        backend: str = "thread",
        proc_config: "ProcPoolConfig | None" = None,
        kernel: str = "scalar",
    ) -> None:
        if n_shards < 1:
            raise QueryError(f"n_shards must be >= 1, got {n_shards}")
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if backend not in ("thread", "process"):
            raise QueryError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        if kernel not in ("scalar", "vector"):
            raise QueryError(
                f"kernel must be 'scalar' or 'vector', got {kernel!r}"
            )
        self.index = index
        self.kernel = kernel
        self.session = session or QuerySession(index)
        self.workers = workers
        self.backend = backend
        self.bucketed_router = bucketed_router
        self.routing = ShardStats()
        # Per-shard reach-table cache: (reach_epoch, topology_version,
        # reach) as of the last build; reused while neither moved.
        self._reach_cache: list[
            tuple[int, int, _ShardReach | None] | None
        ] = [None] * n_shards
        self._homes: dict[str, int] = {}
        self._id_counter = itertools.count(1)
        self._updates_seen = 0
        self._bounds: Rect = index.space.bounds()
        self._executor: ThreadPoolExecutor | None = None
        self._pool = None
        if backend == "process":
            # Imported lazily: procpool pulls in the wire codec, which
            # lives above this module in the layering.
            from repro.queries.procpool import ProcessShardPool

            self._pool = ProcessShardPool(
                index,
                n_shards=n_shards,
                workers=workers,
                config=proc_config,
                kernel=kernel,
            )
            self.shards = self._pool.proxies
        else:
            if proc_config is not None:
                raise QueryError(
                    "proc_config is only meaningful with backend='process'"
                )
            self.shards = [
                QueryMonitor(index, session=self.session, kernel=kernel)
                for _ in range(n_shards)
            ]
            if workers > 1:
                self._executor = ThreadPoolExecutor(
                    max_workers=workers, thread_name_prefix="shard"
                )

    # ------------------------------------------------------------------
    # lifecycle (the worker pool is the only owned resource)
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the worker pool down (idempotent; serial mode no-ops).
        A thread-backed monitor stays usable — it falls back to serial;
        a process-backed monitor is unusable after close."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ShardedMonitor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # registration / result access (QueryMonitor-compatible surface)
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, q: Point) -> int:
        """The shard a query at ``q`` lands on: floor-major, with the
        floor split into 2x2 spatial zones (a deterministic
        floor/region partition, not a content hash — co-located query
        points always land together)."""
        b = self._bounds
        zx = int(q.x >= (b.minx + b.maxx) / 2.0)
        zy = int(q.y >= (b.miny + b.maxy) / 2.0)
        zone = 4 * q.floor + 2 * zy + zx
        return zone % len(self.shards)

    def register(
        self,
        spec: QuerySpec,
        query_id: str | None = None,
    ) -> str:
        """Register a standing query from its spec on the shard its
        query point hashes to; returns its id."""
        spec = standing_spec(spec)
        query_id = self._claim_id(query_id, spec.kind)
        shard = self.shard_of(spec_anchor(spec, self.index.space))
        self.shards[shard].register(spec, query_id=query_id)
        self._homes[query_id] = shard
        return query_id

    def deregister(self, query_id: str) -> None:
        self._home(query_id).deregister(query_id)
        del self._homes[query_id]

    def restore_query(self, spec: QuerySpec, query_id: str, state) -> None:
        """Reinstate a checkpointed standing query on the shard its
        query point deterministically hashes to (same :meth:`shard_of`
        placement as a live registration, so a restored sharded engine
        routes and merges identically).  No register delta, no reach
        epoch bump — see
        :meth:`~repro.queries.monitor.QueryMonitor.restore_query`."""
        spec = standing_spec(spec)
        if query_id in _ClaimedIds(self._homes, self.shards):
            raise QueryError(f"standing query id {query_id!r} already used")
        shard = self.shard_of(spec_anchor(spec, self.index.space))
        self.shards[shard].restore_query(spec, query_id, state)
        self._homes[query_id] = shard

    def _claim_id(self, query_id: str | None, kind: str) -> str:
        # Claim against the routed ids *and* every shard's own
        # registry: a query registered directly on a shard monitor
        # (shards are reachable via `.shards`) must not be silently
        # shadowed by a same-id registration routed to another shard —
        # results() would merge the two under one id.  A membership
        # view, not a materialized union: claims stay O(probe), not
        # O(standing queries) per registration.
        return claim_query_id(
            _ClaimedIds(self._homes, self.shards),
            query_id,
            kind,
            self._id_counter,
        )

    def _home(self, query_id: str) -> QueryMonitor:
        shard = self._homes.get(query_id)
        if shard is None:
            raise QueryError(f"unknown standing query {query_id!r}")
        return self.shards[shard]

    def result_ids(self, query_id: str) -> set[str]:
        return self._home(query_id).result_ids(query_id)

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        return self._home(query_id).result_distances(query_id)

    def results(self) -> dict[str, set[str]]:
        out: dict[str, set[str]] = {}
        for shard in self.shards:
            out.update(shard.results())
        return out

    def query_ids(self) -> list[str]:
        return list(self._homes)

    def query_spec(self, query_id: str) -> QuerySpec:
        return self._home(query_id).query_spec(query_id)

    def snapshot_query(self, query_id: str):
        return self._home(query_id).snapshot_query(query_id)

    def snapshot_queries(self) -> list[tuple[str, QuerySpec, object]]:
        """``(query_id, spec, state)`` for every standing query, in
        global registration order (``_homes`` insertion order) — so the
        restore path re-registers in the same order and each shard's
        internal registration order is reproduced too."""
        return [
            (qid, shard.query_spec(qid), shard.snapshot_query(qid))
            for qid, shard in (
                (qid, self.shards[idx]) for qid, idx in self._homes.items()
            )
        ]

    def __len__(self) -> int:
        return len(self._homes)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self._homes

    @property
    def stats(self) -> MonitorStats:
        """Aggregated work accounting across all shards.

        Pair-level counters sum (each shard evaluated its own pairs);
        per-monitor observations of shared state do not: ``updates_seen``
        counts each routed update once (not once per ingesting shard)
        and ``topology_invalidations`` counts each ``topology_version``
        bump once (every shard sees the same bumps).
        """
        merged = MonitorStats()
        for shard in self.shards:
            merged = merged.merge(shard.stats)
        merged.updates_seen = self._updates_seen
        merged.topology_invalidations = max(
            (s.stats.topology_invalidations for s in self.shards),
            default=0,
        )
        return merged

    # ------------------------------------------------------------------
    # routed mutation paths: build a plan, hand it to the backend
    # ------------------------------------------------------------------

    def apply_moves(self, moves: list[ObjectMove]) -> DeltaBatch:
        """Absorb a batch of position updates: one shared index update,
        then per-shard maintenance of only the updates that can affect
        each shard (fanned out on the selected worker backend)."""
        fh = self.index.space.floor_height
        old_boxes = {
            oid: _object_box(self.index.population.get(oid), fh)
            for oid in {move.object_id for move in moves}
        }
        # update_objects owns the last-write-wins dedupe: it returns
        # (and the monitor pairs against) one object per unique id.
        moved = self.index.update_objects(moves)
        head = DeltaBatch(moved=tuple(moved))
        if not moved:
            # An idle tick is not a routing decision: flush parked
            # deltas but keep the skip statistics honest.
            return DeltaBatch.merge_all(
                [head] + self._execute(("drain", None), self._drain_plan())
            )
        self._updates_seen += len(moved)
        self.routing.batches_routed += 1
        old_rows = _box_rows(
            [old_boxes[obj.object_id] for obj in moved]
        )
        new_rows = _box_rows([_object_box(obj, fh) for obj in moved])
        plan: list[tuple[str, object]] = []
        routed: list[list[int] | None] = []  # kept batch indices/shard
        for idx in range(len(self.shards)):
            reach = self._reach_of(idx)
            if reach is None:
                # No standing queries: nothing to route, but a parked
                # delta (the last query's deregister) still flows.
                plan.append(("drain", None))
                routed.append(None)
                continue
            if math.isinf(reach.radius):
                keep = list(range(len(moved)))
            else:
                mask = reach.admit_moves(old_rows, new_rows, self.routing)
                keep = [i for i, k in enumerate(mask) if k]
            if not keep:
                # Skipped: no pair is evaluated, but parked deltas
                # (registrations, out-of-band resyncs) still flow.
                self.routing.shards_skipped += 1
                plan.append(("drain", None))
                routed.append(None)
                continue
            self.routing.shard_visits += 1
            # Filtered updates are only counted for shards that
            # actually ran — a whole-shard skip is its own statistic.
            self.routing.updates_filtered += len(moved) - len(keep)
            plan.append(("moves", [moved[i] for i in keep]))
            routed.append(keep)
        if self.kernel == "vector" and self._pool is None and any(
            keep is not None for keep in routed
        ):
            # Pack the whole batch's subregion stats ONCE and hand each
            # visited shard its routed view — the per-object packing
            # work is shared across shards instead of repeated inside
            # each shard monitor.  The process backend skips this: ids
            # travel the wire and each worker packs its own routed
            # subset locally (the block holds numpy arrays, not wire
            # records).
            block = pack_block(
                moved,
                self.index.space,
                self.index.population.grid,
                self.session.door_layout(),
            )
            plan = [
                (action, payload)
                if keep is None
                else (
                    "moves",
                    (
                        payload,
                        block
                        if len(keep) == len(moved)
                        else block.subset(keep),
                    ),
                )
                for (action, payload), keep in zip(plan, routed)
            ]
        return DeltaBatch.merge_all(
            [head] + self._execute(("moves", moved), plan)
        )

    def apply_insert(self, obj: UncertainObject) -> DeltaBatch:
        """A brand-new object appears: only shards it can reach run."""
        fh = self.index.space.floor_height
        self.index.insert_object(obj)
        self._updates_seen += 1
        self.routing.batches_routed += 1
        box = _object_box(obj, fh)
        plan: list[tuple[str, object]] = []
        for idx in range(len(self.shards)):
            reach = self._reach_of(idx)
            if reach is None:
                plan.append(("drain", None))
                continue
            if not reach.may_affect(box, self.routing):
                self.routing.shards_skipped += 1
                plan.append(("drain", None))
                continue
            self.routing.shard_visits += 1
            plan.append(("insert", obj))
        return DeltaBatch.merge_all(self._execute(("insert", obj), plan))

    def apply_delete(self, object_id: str) -> DeltaBatch:
        """An object disappears: shards it provably never belonged to
        are skipped (a member is always within its query's reach)."""
        fh = self.index.space.floor_height
        obj = self.index.population.get(object_id)
        box = _object_box(obj, fh)
        deleted = self.index.delete_object(object_id)
        self._updates_seen += 1
        self.routing.batches_routed += 1
        head = DeltaBatch(deleted=deleted)
        plan: list[tuple[str, object]] = []
        for idx in range(len(self.shards)):
            reach = self._reach_of(idx)
            if reach is None:
                plan.append(("drain", None))
                continue
            if not reach.may_affect(box, self.routing):
                self.routing.shards_skipped += 1
                plan.append(("drain", None))
                continue
            self.routing.shard_visits += 1
            plan.append(("delete", object_id))
        return DeltaBatch.merge_all(
            [head] + self._execute(("delete", object_id), plan)
        )

    def apply_event(self, event: TopologyEvent) -> DeltaBatch:
        """Topology events invalidate every cached search — all shards
        resynchronise; there is nothing to skip."""
        result = self.index.apply_event(event)
        head = DeltaBatch(event_result=result)
        return DeltaBatch.merge_all(
            [head] + self._execute(("event", event), self._drain_plan())
        )

    def drain_pending_deltas(self) -> DeltaBatch:
        """Registration/deregistration/out-of-band resync deltas from
        every shard."""
        return DeltaBatch.merge_all(
            self._execute(("drain", None), self._drain_plan())
        )

    # ------------------------------------------------------------------
    # backend execution
    # ------------------------------------------------------------------

    def _drain_plan(self) -> list[tuple[str, object]]:
        return [("drain", None)] * len(self.shards)

    def _execute(
        self,
        mutation: tuple[str, object],
        plan: list[tuple[str, object]],
    ) -> list[DeltaBatch]:
        """Run one routing plan on the selected backend, returning the
        per-shard delta batches in shard-index order (the merge order,
        every backend alike).

        ``mutation`` names the index-level change the plan belongs to —
        worker processes replay it against their world replicas before
        ingesting their routed share; the in-process backends mutated
        the shared index already and only consume the plan.
        """
        if self._pool is not None:
            return self._pool.execute(mutation, plan)
        return self._run_tasks(
            [
                self._shard_task(shard, action, payload)
                for shard, (action, payload) in zip(self.shards, plan)
            ]
        )

    def _run_tasks(
        self, tasks: list[Callable[[], DeltaBatch]]
    ) -> list[DeltaBatch]:
        """Execute one thunk per shard, returning results in shard
        order.  Routing already proved the thunks touch disjoint
        monitors; the shared session takes its own lock."""
        if self._executor is None or len(tasks) <= 1:
            return [task() for task in tasks]
        futures = [self._executor.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def _shard_task(
        self, shard: QueryMonitor, action: str, payload
    ) -> Callable[[], DeltaBatch]:
        """One plan entry as a thunk over an in-process shard monitor."""
        if action == "drain":
            return shard.drain_pending_deltas
        if action == "moves":

            def run_moves() -> DeltaBatch:
                # Keep only the deltas: `moved` is already carried once
                # at the top level (shards each re-list their routed
                # subset).  Under kernel="vector" the payload carries
                # the pre-packed block view alongside the objects.
                if isinstance(payload, tuple):
                    relevant, subblock = payload
                    return DeltaBatch(
                        deltas=shard.ingest_moves(
                            relevant, block=subblock
                        ).deltas
                    )
                return DeltaBatch(
                    deltas=shard.ingest_moves(payload).deltas
                )

            return run_moves
        if action == "insert":

            def run_insert() -> DeltaBatch:
                return shard.ingest_insert(payload)

            return run_insert
        if action == "delete":

            def run_delete() -> DeltaBatch:
                return shard.ingest_delete(payload)

            return run_delete
        raise QueryError(f"unknown shard action {action!r}")

    # ------------------------------------------------------------------

    def _reach_of(self, shard_idx: int) -> _ShardReach | None:
        """The shard's current influence summary (``None`` when it has
        no standing queries), served from the per-shard cache whenever
        no influence radius in the shard changed since the table was
        built.

        The cache key is the shard monitor's
        :attr:`~repro.queries.monitor.QueryMonitor.reach_epoch` (bumped
        on registration churn and on any result change of a
        dynamic-reach query — an ikNNQ whose ``tau`` moved) plus the
        space's ``topology_version`` (a resync the shard has not
        processed yet must rebuild, never reuse a pre-topology ``tau``).
        iRQ/iPRQ radii and query positions are immutable, so an
        unchanged epoch proves the whole table unchanged.  Hits are
        counted in :attr:`ShardStats.reach_cache_hits`.
        """
        shard = self.shards[shard_idx]
        topology = self.index.space.topology_version
        cached = self._reach_cache[shard_idx]
        if (
            cached is not None
            and cached[0] == shard.reach_epoch
            and cached[1] == topology
            and shard._topology_version == topology
        ):
            self.routing.reach_cache_hits += 1
            return cached[2]
        reach = self._build_reach(shard)
        # Read the keys *after* the build: influence_radii_by_floor may
        # itself have resynced the shard (epoch/version moved mid-build).
        self._reach_cache[shard_idx] = (
            shard.reach_epoch,
            self.index.space.topology_version,
            reach,
        )
        return reach

    def _build_reach(self, shard: QueryMonitor) -> _ShardReach | None:
        """Build one shard's influence summary from scratch: a cheap
        O(queries-in-shard) pass of pure arithmetic over a grid sized
        by the shard's own standing-query density
        (:func:`_buckets_per_side`)."""
        by_floor = shard.influence_radii_by_floor()
        if not by_floor:
            return None
        fh = self.index.space.floor_height
        b = self._bounds
        n_queries = sum(len(entries) for entries in by_floor.values())
        side = _buckets_per_side(n_queries)
        cell_w = max(b.width, _EPS) / side
        cell_h = max(b.height, _EPS) / side
        minx = miny = minz = math.inf
        maxx = maxy = maxz = -math.inf
        radius = 0.0
        cells: dict[tuple[int, int, int], list[float]] = {}
        for floor, entries in by_floor.items():
            for _qid, q, reach in entries:
                if math.isinf(reach):
                    # An unfull ikNNQ reaches forever: the shard is
                    # unskippable, no summary geometry needed.
                    z = q.z(fh)
                    return _ShardReach(
                        Box3(q.x, q.y, z, q.x, q.y, z), math.inf
                    )
                minx, maxx = min(minx, q.x), max(maxx, q.x)
                miny, maxy = min(miny, q.y), max(maxy, q.y)
                z = q.z(fh)
                minz, maxz = min(minz, z), max(maxz, z)
                radius = max(radius, reach)
                if not self.bucketed_router:
                    continue
                gx = min(max(int((q.x - b.minx) / cell_w), 0), side - 1)
                gy = min(max(int((q.y - b.miny) / cell_h), 0), side - 1)
                cell = cells.get((floor, gx, gy))
                if cell is None:
                    cells[(floor, gx, gy)] = [
                        q.x, q.y, q.x, q.y, z, reach,
                    ]
                else:
                    cell[0] = min(cell[0], q.x)
                    cell[1] = min(cell[1], q.y)
                    cell[2] = max(cell[2], q.x)
                    cell[3] = max(cell[3], q.y)
                    cell[5] = max(cell[5], reach)
        buckets = tuple(
            _ReachBucket(Box3(x0, y0, z, x1, y1, z), r)
            for x0, y0, x1, y1, z, r in cells.values()
        )
        return _ShardReach(
            Box3(minx, miny, minz, maxx, maxy, maxz), radius, buckets
        )
