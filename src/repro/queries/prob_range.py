"""Probabilistic-threshold indoor range query (extension).

The paper's iRQ thresholds the *expected* distance.  Related work
(Yang et al. [24]) instead thresholds the *probability* of being within
range.  With the instance representation both semantics are natural, so
the library offers the probabilistic variant too::

    iPRQ_{q,r,theta}(O) = { O : Pr(|q, s|_I <= r) >= theta }

where the probability is the total mass of instances whose indoor
distance is within ``r``.  Evaluation reuses the paper's machinery: the
filtering phase is unchanged (an object with skeleton min-distance
beyond ``r`` has probability 0), the pruning phase uses per-subregion
``tmin``/``tmax`` to bound the qualifying mass from both sides, and
only undecided objects have their instances evaluated exactly.
"""

from __future__ import annotations

import time


from repro.distances.bounds import subregion_stats
from repro.distances.expected import instance_indoor_distances
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.engine import (
    QueryResult,
    filtering_phase,
    locate_source,
    subgraph_phase,
)
from repro.queries.stats import QueryStats


def qualifying_probability(
    index: CompositeIndex, q: Point, obj, dd, r: float
) -> float:
    """Exact ``Pr(|q, s|_I <= r)`` for one object."""
    total = 0.0
    for subregion in obj.subregions(index.space, index.population.grid):
        dists = instance_indoor_distances(q, subregion, dd, index.space)
        total += float(subregion.instances.probs[dists <= r].sum())
    return total


def probability_bounds(
    index: CompositeIndex, q: Point, obj, dd, r: float
) -> tuple[float, float]:
    """Bounds on the qualifying probability from subregion stats.

    A subregion with ``tmax <= r`` contributes all its mass to the
    lower bound; one with ``tmin > r`` contributes nothing to the upper
    bound.  (``tmax`` is the best door's worst instance, so
    ``tmax <= r`` proves every instance of the subregion qualifies.)
    """
    lo = 0.0
    hi = 0.0
    for subregion in obj.subregions(index.space, index.population.grid):
        stats = subregion_stats(q, subregion, dd, index.space,
                                unreached_floor=r + 1.0)
        if stats.tmax <= r:
            lo += subregion.mass
            hi += subregion.mass
        elif stats.tmin <= r:
            hi += subregion.mass
    return lo, hi


def iPRQ(
    q: Point,
    r: float,
    theta: float,
    index: CompositeIndex,
    stats: QueryStats | None = None,
) -> QueryResult:
    """Evaluate the probabilistic-threshold range query.

    Returns objects whose probability of being within indoor distance
    ``r`` is at least ``theta``; ``QueryResult.distances`` carries the
    exact probability for refined objects (``None`` when accepted by
    bounds alone).
    """
    if r < 0:
        raise QueryError(f"negative query range {r}")
    if not 0.0 < theta <= 1.0:
        raise QueryError(f"theta must be in (0, 1], got {theta}")
    if stats is None:
        stats = QueryStats()
    stats.total_objects = len(index.population)

    source = locate_source(index, q)
    filtered, stats.t_filtering = filtering_phase(index, q, r, True)
    stats.candidates_after_filtering = len(filtered.objects)
    stats.partitions_retrieved = len(filtered.partitions)

    dd, stats.t_subgraph = subgraph_phase(
        index, q, source, filtered.partitions, cutoff=r
    )
    stats.doors_settled = len(dd.dist)

    result = QueryResult()
    undecided = []
    t0 = time.perf_counter()
    for obj in filtered.objects:
        lo, hi = probability_bounds(index, q, obj, dd, r)
        if lo >= theta:
            stats.accepted_by_bounds += 1
            result.objects.append(obj)
            result.distances[obj.object_id] = None
        elif hi < theta:
            stats.rejected_by_bounds += 1
        else:
            undecided.append(obj)
    stats.t_pruning = time.perf_counter() - t0

    t0 = time.perf_counter()
    for obj in undecided:
        stats.refined += 1
        prob = qualifying_probability(index, q, obj, dd, r)
        if prob >= theta:
            result.objects.append(obj)
            result.distances[obj.object_id] = prob
    stats.t_refinement = time.perf_counter() - t0
    stats.result_size = len(result.objects)
    return result
