"""Async serving: fan a movement stream into a monitor, push deltas out.

The monitor's per-update maintenance is already ``O(standing queries)``
(:mod:`repro.queries.monitor`) and sharding keeps the fan-out pruned
(:mod:`repro.queries.shard`) — the serving layer is the remaining
plumbing: a :class:`MonitorServer` drives batches of position updates
through the monitor inside an asyncio event loop and pushes every
emitted :class:`~repro.queries.deltas.ResultDelta` into the per-query
queues of its :class:`Subscription`\\ s, so consumers ``async for``
over result *changes* instead of polling result sets.

Single-writer by design: all index mutation happens through the
server's ``apply_*`` coroutines (or :meth:`serve`).  A serial monitor's
call runs to completion inline and then yields to the loop; a parallel
:class:`~repro.queries.shard.ShardedMonitor` (``workers > 1``) is
offloaded to the loop's default executor instead, so the event loop
keeps draining subscribers while the shard pool grinds through the
batch.  Subscribers are decoupled through per-query queues — unbounded
by default (a slow consumer delays only itself), or bounded with
``maxlen`` under a drop-oldest overflow policy
(:attr:`Subscription.dropped` counts the losses; a feed that dropped
deltas no longer replays exactly and should be re-primed with a fresh
snapshot).  :attr:`Subscription.pending` exposes the backlog either
way.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field
from typing import AsyncIterator, Awaitable, Callable

from repro.api.specs import QuerySpec
from repro.errors import QueryError
from repro.objects.generator import MovementStream
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.queries.deltas import DeltaBatch, ResultDelta
from repro.queries.monitor import QueryMonitor
from repro.queries.shard import ShardedMonitor
from repro.space.events import TopologyEvent

#: Queue sentinel marking the end of a subscription's delta stream.
_CLOSED = object()


class Subscription:
    """One consumer's live view of one standing query.

    An async iterator of :class:`ResultDelta`; iteration ends when the
    subscription is cancelled (:meth:`MonitorServer.unsubscribe`), its
    query is deregistered, or the server closes.

    ``maxlen`` bounds the queue: when a push would exceed it, the
    *oldest* queued delta is dropped and ``dropped`` is incremented —
    the newest state always gets through, and the consumer can detect
    the gap (``dropped > 0`` means the feed no longer replays exactly;
    resubscribe with a snapshot to re-prime).  ``None`` keeps the
    PR-2 unbounded behaviour.
    """

    def __init__(
        self,
        query_id: str,
        maxlen: int | None = None,
        resync_on_drop: bool = False,
    ) -> None:
        if maxlen is not None and maxlen < 1:
            raise QueryError(f"maxlen must be >= 1, got {maxlen}")
        self.query_id = query_id
        self.maxlen = maxlen
        #: When set, the server re-primes this feed in-band after a
        #: drop: a synthetic ``snapshot`` delta carrying the query's
        #: *current* full result is queued right after the lossy
        #: publish, so the consumer's replayed state snaps back to
        #: exact instead of staying diverged (the queue-level analogue
        #: of the wire feeds' mid-stream snapshot records).
        self.resync_on_drop = resync_on_drop
        self.delivered = 0
        self.dropped = 0
        #: Snapshot re-primes pushed by the drop-resync path.
        self.resyncs = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._closed = False

    @property
    def pending(self) -> int:
        """Deltas queued but not yet consumed (consumer backlog).

        The end-of-stream sentinel a close enqueues is internal
        plumbing, not backlog — it is excluded from the count.
        """
        n = self._queue.qsize()
        if self._closed and n:
            return n - 1  # the sentinel is always the last item
        return n

    @property
    def closed(self) -> bool:
        return self._closed

    async def next_delta(self) -> ResultDelta | None:
        """The next delta, or ``None`` once the stream has ended."""
        if self._closed and self._queue.empty():
            return None
        item = await self._queue.get()
        if item is _CLOSED:
            return None
        self.delivered += 1
        return item

    def __aiter__(self) -> AsyncIterator[ResultDelta]:
        return self

    async def __anext__(self) -> ResultDelta:
        delta = await self.next_delta()
        if delta is None:
            raise StopAsyncIteration
        return delta

    # -- server side ---------------------------------------------------

    def _push(self, delta: ResultDelta) -> bool:
        """Enqueue a delta; returns whether an older delta was dropped
        to make room (the server aggregates these into its own
        ``deltas_dropped`` total)."""
        if self._closed:
            return False
        dropped = False
        if (
            self.maxlen is not None
            and self._queue.qsize() >= self.maxlen
        ):
            # Drop-oldest: a consumer this far behind wants the newest
            # state, not a complete history it will never catch up on.
            self._queue.get_nowait()
            self.dropped += 1
            dropped = True
        self._queue.put_nowait(delta)
        return dropped

    def _close(self) -> None:
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(_CLOSED)


@dataclass
class ServeReport:
    """Aggregate outcome of one :meth:`MonitorServer.serve` run.

    ``deltas_dropped`` totals the queue overflows across every bounded
    subscription during the run (each one also counts on its own
    :attr:`Subscription.dropped`) — a nonzero value means some feed was
    lossy and no longer replays exactly, which belongs in benchmark
    tables and ops dashboards, not buried per-subscriber.
    """

    batches: int = 0
    updates: int = 0
    deltas_published: int = 0
    deltas_dropped: int = 0
    elapsed_s: float = 0.0

    @property
    def updates_per_sec(self) -> float:
        return self.updates / self.elapsed_s if self.elapsed_s else 0.0

    @property
    def deltas_per_sec(self) -> float:
        return (
            self.deltas_published / self.elapsed_s if self.elapsed_s else 0.0
        )


@dataclass
class MonitorServer:
    """Delta-pushing front-end over a (sharded) query monitor.

    Usage::

        server = MonitorServer(ShardedMonitor(index, n_shards=4))
        kiosk = server.register(RangeSpec(q, 60.0))
        sub = server.subscribe(kiosk)           # primed with a snapshot

        async def consume():
            async for delta in sub:
                render(delta)

        async def produce():
            await server.serve(stream, n_batches=100, batch_size=50)
            server.close()

        asyncio.run(asyncio.gather(produce(), consume()))
    """

    monitor: QueryMonitor | ShardedMonitor
    #: ``None`` (default) auto-detects: offload mutations to the loop's
    #: default executor when the monitor runs parallel (``workers>1``).
    #: ``True``/``False`` force either behaviour.
    offload: bool | None = None
    #: Called with every batch handed to :meth:`publish` (after fan-out)
    #: — the tap :class:`repro.api.service.QueryService` uses to mirror
    #: published deltas onto attached JSONL wire feeds.
    on_publish: Callable[[DeltaBatch], None] | None = None
    #: Called once per standing query that lost at least one delta to a
    #: bounded subscription's drop-oldest policy during a publish
    #: (after ``on_publish``) — the hook the service layer uses to
    #: emit a mid-stream snapshot record into attached wire feeds, so
    #: a feed consumer re-primes exactly at the loss point.
    on_drop: Callable[[str], None] | None = None
    #: Called with ``(kind, payload)`` after each mutation coroutine's
    #: op succeeds — inside the writer lock, before the fan-out — for
    #: every batch driven through the ``apply_*`` verbs (``serve``
    #: loops and the network layer included).  The tap
    #: :class:`repro.api.service.QueryService` uses to append these
    #: *inputs* to its write-ahead log; its own synchronous verbs log
    #: directly and never reach this hook, so nothing double-logs.
    on_mutation: Callable[[str, object], None] | None = None
    deltas_published: int = 0
    #: Total queue overflows across all bounded subscriptions.
    deltas_dropped: int = 0
    _subs: dict[str, list[Subscription]] = field(default_factory=dict)
    _closed: bool = False
    # Restores the single-writer guarantee under offload: an inline
    # op() could never interleave with another mutation (no await
    # point), but an offloaded one yields the loop mid-mutation — the
    # lock keeps concurrent apply_* callers serialized, publishes
    # included, in acquisition order.
    _mutex: asyncio.Lock = field(default_factory=asyncio.Lock)
    # Thread-level writer lock around the monitor mutation itself:
    # offloaded ops run on executor threads, and the QueryService
    # façade's *synchronous* mutation path takes this same lock, so a
    # sync ingest can never interleave with an in-flight offloaded
    # batch (see QueryService._publish).
    _op_lock: threading.Lock = field(default_factory=threading.Lock)

    # ------------------------------------------------------------------
    # registration / subscription
    # ------------------------------------------------------------------

    def register(
        self,
        spec: QuerySpec,
        query_id: str | None = None,
    ) -> str:
        """Register a standing query from its spec on the underlying
        monitor; returns its id."""
        return self.monitor.register(spec, query_id=query_id)

    def deregister(self, query_id: str) -> None:
        """Deregister the query; its deregister delta (everything
        leaves) is pushed and all its subscriptions end."""
        self.monitor.deregister(query_id)
        self.publish(self.monitor.drain_pending_deltas())
        for sub in self._subs.pop(query_id, []):
            sub._close()

    def subscribe(
        self,
        query_id: str,
        snapshot: bool = True,
        maxlen: int | None = None,
        resync_on_drop: bool = False,
    ) -> Subscription:
        """A live delta feed for one standing query.

        ``snapshot=True`` primes the feed with a synthetic ``snapshot``
        delta carrying the current members, so replaying the feed from
        empty state always reconstructs the full result.  ``maxlen``
        bounds the feed's queue under the drop-oldest policy (see
        :class:`Subscription`); ``resync_on_drop`` additionally queues
        a fresh full-result snapshot delta after any lossy publish, so
        a bounded feed heals itself in-band (the network serving layer
        turns these into mid-stream wire snapshots).
        """
        if self._closed:
            raise QueryError("server is closed")
        if query_id not in self.monitor:
            raise QueryError(f"unknown standing query {query_id!r}")
        # Flush parked deltas (registrations, out-of-band resyncs) to
        # the *existing* subscribers first: a feed begins at its own
        # snapshot, never with another query's history.
        self.publish(self.monitor.drain_pending_deltas())
        sub = Subscription(
            query_id, maxlen=maxlen, resync_on_drop=resync_on_drop
        )
        if snapshot:
            sub._push(
                ResultDelta(
                    query_id,
                    "snapshot",
                    self.monitor.result_distances(query_id),
                )
            )
        self._subs.setdefault(query_id, []).append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        subs = self._subs.get(sub.query_id, [])
        if sub in subs:
            subs.remove(sub)
        sub._close()

    def close(self) -> None:
        """End every subscription (pending deltas still drain)."""
        self._closed = True
        for subs in self._subs.values():
            for sub in subs:
                sub._close()
        self._subs.clear()

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------

    def publish(self, batch: DeltaBatch) -> int:
        """Fan a delta batch into the matching subscription queues;
        returns the number of deltas published (counted once per delta,
        not per subscriber; drops from bounded queues accumulate on
        ``deltas_dropped``, and each query that lost a delta triggers
        ``on_drop`` once, after the batch reached ``on_publish``)."""
        published = 0
        dropped_queries: dict[str, None] = {}
        dropped_subs: dict[Subscription, None] = {}
        for delta in batch:
            if delta.is_empty:
                continue
            published += 1
            for sub in self._subs.get(delta.query_id, ()):
                if sub._push(delta):
                    self.deltas_dropped += 1
                    dropped_queries.setdefault(delta.query_id)
                    if sub.resync_on_drop:
                        dropped_subs.setdefault(sub)
        self.deltas_published += published
        if self.on_publish is not None:
            self.on_publish(batch)
        if self.on_drop is not None:
            for query_id in dropped_queries:
                self.on_drop(query_id)
        # In-band re-prime of lossy resync_on_drop subscriptions: queue
        # the query's *post-batch* full result as a snapshot delta.  It
        # lands after this batch's surviving deltas and before anything
        # published later, so replaying the queue stays exact.  (If the
        # snapshot push itself evicts an older delta that loss is
        # counted too, but no second resync is needed — the snapshot
        # supersedes everything before it.)
        for sub in dropped_subs:
            if sub.query_id not in self.monitor:
                continue  # dropped during its own deregister publish
            members = self.monitor.result_distances(sub.query_id)
            if sub._push(ResultDelta(sub.query_id, "snapshot", members)):
                self.deltas_dropped += 1
            sub.resyncs += 1
        return published

    # ------------------------------------------------------------------
    # mutation coroutines (single writer)
    # ------------------------------------------------------------------

    async def apply_moves(self, moves: list[ObjectMove]) -> DeltaBatch:
        return await self._mutate(
            lambda: self.monitor.apply_moves(moves), ("moves", moves)
        )

    async def apply_insert(self, obj: UncertainObject) -> DeltaBatch:
        return await self._mutate(
            lambda: self.monitor.apply_insert(obj), ("insert", obj)
        )

    async def apply_delete(self, object_id: str) -> DeltaBatch:
        return await self._mutate(
            lambda: self.monitor.apply_delete(object_id),
            ("delete", object_id),
        )

    async def apply_event(self, event: TopologyEvent) -> DeltaBatch:
        return await self._mutate(
            lambda: self.monitor.apply_event(event), ("event", event)
        )

    async def _mutate(
        self,
        op: Callable[[], DeltaBatch],
        mutation: tuple[str, object] | None = None,
    ) -> DeltaBatch:
        if self._closed:
            raise QueryError("server is closed")

        def locked_op() -> DeltaBatch:
            with self._op_lock:
                batch = op()
                if mutation is not None and self.on_mutation is not None:
                    self.on_mutation(*mutation)
                return batch

        async with self._mutex:
            if self._offloads():
                # A parallel sharded monitor grinds on its own thread
                # pool; hop off the loop so subscribers keep draining
                # meanwhile.  Publishing still happens on the loop
                # thread (asyncio queues are not thread-safe),
                # preserving delta order.
                batch = await asyncio.get_running_loop().run_in_executor(
                    None, locked_op
                )
            else:
                batch = locked_op()
            self.publish(batch)
        # Yield so subscribers drain between mutations.
        await asyncio.sleep(0)
        return batch

    def _offloads(self) -> bool:
        """Whether mutations leave the event loop: only worthwhile when
        the monitor itself fans out on a pool (``workers > 1``) — for a
        serial monitor the thread hop costs more than it frees."""
        if self.offload is not None:
            return self.offload
        return getattr(self.monitor, "workers", 1) > 1

    async def serve(
        self,
        stream: MovementStream,
        n_batches: int,
        batch_size: int,
        on_batch: Callable[[int, DeltaBatch], Awaitable[None] | None]
        | None = None,
    ) -> ServeReport:
        """Drive ``n_batches`` of ``batch_size`` moves from ``stream``
        through the monitor, publishing deltas as they are produced.

        ``on_batch(batch_no, delta_batch)`` is an optional hook (sync or
        async) invoked after each batch — dashboards interleave topology
        events or render progress from it.
        """
        report = ServeReport()
        published_before = self.deltas_published
        dropped_before = self.deltas_dropped
        self.publish(self.monitor.drain_pending_deltas())
        for batch_no in range(n_batches):
            moves = stream.next_moves(batch_size)
            t0 = time.perf_counter()
            batch = await self.apply_moves(moves)
            report.elapsed_s += time.perf_counter() - t0
            report.batches += 1
            report.updates += len(batch.moved)
            if on_batch is not None:
                out = on_batch(batch_no, batch)
                if asyncio.iscoroutine(out):
                    await out
        # publish() is the single counting authority; the report covers
        # everything this serve call published (hook mutations too) and
        # every delta a bounded subscription shed while it ran.
        report.deltas_published = self.deltas_published - published_before
        report.deltas_dropped = self.deltas_dropped - dropped_before
        return report
