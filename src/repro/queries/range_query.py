"""The indoor range query iRQ (Definition 3, Algorithm 1).

``iRQ_{q,r}(O) = { O : |q, O|_I <= r }`` over expected indoor
distances.
"""

from __future__ import annotations

import time

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.engine import (
    QueryResult,
    Refiner,
    filtering_phase,
    locate_source,
    pruning_phase,
    subgraph_phase,
)
from repro.queries.stats import QueryStats


def iRQ(
    q: Point,
    r: float,
    index: CompositeIndex,
    with_pruning: bool = True,
    use_skeleton: bool = True,
    stats: QueryStats | None = None,
    precomputed_dd=None,
) -> QueryResult:
    """Evaluate an indoor range query (Algorithm 1).

    Parameters
    ----------
    q, r:
        Query point and range (metres of indoor distance).
    index:
        The composite index over space + objects.
    with_pruning:
        Disable to skip phase 3 (the Figure 14(b) ablation): every
        filtered candidate goes straight to exact refinement.
    use_skeleton:
        Disable to filter with plain Euclidean MINDIST instead of the
        skeleton bound (the Figure 15(a) ablation).
    stats:
        Optional stats collector, filled in place.
    precomputed_dd:
        A full (unrestricted) :class:`DoorDistances` from ``q``, e.g.
        from a :class:`repro.queries.session.QuerySession`; skips the
        subgraph phase.
    """
    if r < 0:
        raise QueryError(f"negative query range {r}")
    if stats is None:
        stats = QueryStats()
    stats.total_objects = len(index.population)

    source = locate_source(index, q)

    # Phase 1: filtering.
    filtered, stats.t_filtering = filtering_phase(index, q, r, use_skeleton)
    stats.candidates_after_filtering = len(filtered.objects)
    stats.partitions_retrieved = len(filtered.partitions)
    stats.nodes_visited = filtered.nodes_visited

    # Phase 2: subgraph Dijkstra (sources = doors of P(q)); a session
    # cache may supply a full search instead.
    if precomputed_dd is not None:
        dd = precomputed_dd
        search_radius = None  # exact everywhere: no unreached floor
    else:
        dd, stats.t_subgraph = subgraph_phase(
            index, q, source, filtered.partitions, cutoff=r
        )
        search_radius = r
    stats.doors_settled = len(dd.dist)

    result = QueryResult()
    if with_pruning:
        # Phase 3: bounds.
        intervals, stats.t_pruning = pruning_phase(
            index, q, filtered.objects, dd, search_radius=search_radius
        )
        undecided = []
        for obj in filtered.objects:
            interval = intervals[obj.object_id]
            if interval.entirely_within(r):
                stats.accepted_by_bounds += 1
                result.objects.append(obj)
                result.distances[obj.object_id] = None
            elif interval.entirely_beyond(r):
                stats.rejected_by_bounds += 1
            else:
                undecided.append(obj)
    else:
        undecided = list(filtered.objects)

    # Phase 4: refinement.
    t0 = time.perf_counter()
    refiner = Refiner(index, q, dd)
    for obj in undecided:
        stats.refined += 1
        d = refiner.exact(obj)
        if d <= r:
            result.objects.append(obj)
            result.distances[obj.object_id] = d
    stats.fallback_recomputes = refiner.fallbacks
    stats.t_refinement = time.perf_counter() - t0
    stats.result_size = len(result.objects)
    return result
