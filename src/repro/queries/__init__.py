"""Distance-aware query processing (Section IV).

Both query types run the paper's four phases:

1. **filtering** — RangeSearch over the tree tier with the skeleton
   distance bound (Algorithm 4; no false negatives by Lemma 6);
2. **subgraph** — single-source Dijkstra over the candidate partitions
   only;
3. **pruning** — topological/probabilistic distance intervals decide
   most candidates without exact evaluation;
4. **refinement** — exact expected distances for the undecided rest.

:func:`iRQ` implements Algorithm 1, :func:`ikNNQ` Algorithm 2 (with
kSeedsSelection, Algorithm 5).  Per-phase wall-clock timings and pruning
counters are collected in :class:`QueryStats` — they regenerate the
paper's Figures 12-14.

On top of the one-shot processors, :class:`QuerySession` reuses the
subgraph computation across related queries, and :class:`QueryMonitor`
keeps *standing* queries incrementally maintained over streams of
object position updates, emitting per-query :class:`ResultDelta`\\ s.
Per-query maintenance is pluggable: one
:class:`~repro.queries.maintainers.StandingQuery` maintainer per kind
(:class:`~repro.queries.maintainers.RangeMaintainer`,
:class:`~repro.queries.maintainers.KNNMaintainer`,
:class:`~repro.queries.maintainers.ProbRangeMaintainer` — standing
iPRQ), registered in :mod:`repro.queries.maintainers`; a new watchable
query kind is one maintainer class there.
:class:`ShardedMonitor` partitions standing queries by floor/region
across monitor shards with a bound-based update router (per-floor
bucketed reach tables with density-derived grid resolution, cached
between batches while no influence radius moves; the hot path tests
a whole batch against every bucket in a handful of numpy array ops).
``workers=N`` runs routed shard maintenance on a thread pool, and
``backend="process"`` moves the shards into supervised worker
*processes* (:class:`~repro.queries.procpool.ProcessShardPool`,
tuned by :class:`ProcPoolConfig`) so maintenance escapes the GIL —
both bit-identical to serial.  :class:`MonitorServer` serves the
delta stream to asyncio subscribers.

All standing registration funnels through one spec-based
``register(spec)`` path per surface; prefer the :mod:`repro.api`
façade — :class:`repro.api.QueryService` with declarative
:class:`repro.api.RangeSpec` / :class:`repro.api.KNNSpec` /
:class:`repro.api.ProbRangeSpec` specs and the JSON-lines wire protocol
(:mod:`repro.api.wire`) for out-of-process subscribers.
"""

from repro.queries.stats import QueryStats
from repro.queries.engine import QueryResult
from repro.queries.range_query import iRQ
from repro.queries.knn import ikNNQ, k_seeds_selection
from repro.queries.prob_range import iPRQ
from repro.queries.session import QuerySession
from repro.queries.deltas import (
    DeltaBatch,
    ResultDelta,
    diff_results,
    replay_deltas,
)
from repro.queries.maintainers import (
    KNNMaintainer,
    ProbRangeMaintainer,
    RangeMaintainer,
    StandingQuery,
    register_maintainer,
)
from repro.queries.monitor import MonitorStats, QueryMonitor
from repro.queries.shard import ShardedMonitor, ShardStats
from repro.queries.serving import MonitorServer, ServeReport, Subscription
from repro.queries.selectivity import (
    candidate_upper_bound,
    estimate_irq_result_size,
)

__all__ = [
    "QueryStats",
    "QueryResult",
    "iRQ",
    "ikNNQ",
    "k_seeds_selection",
    "iPRQ",
    "QuerySession",
    "QueryMonitor",
    "MonitorStats",
    "StandingQuery",
    "RangeMaintainer",
    "KNNMaintainer",
    "ProbRangeMaintainer",
    "register_maintainer",
    "ResultDelta",
    "DeltaBatch",
    "diff_results",
    "replay_deltas",
    "ShardedMonitor",
    "ShardStats",
    "ProcessShardPool",
    "ProcPoolConfig",
    "MonitorServer",
    "ServeReport",
    "Subscription",
    "candidate_upper_bound",
    "estimate_irq_result_size",
]


def __getattr__(name):
    # Lazy: procpool sits *above* the wire codec in the layering (it
    # serializes deltas as wire records), and repro.api.wire imports
    # this package — an eager import here would be a cycle.
    if name in ("ProcessShardPool", "ProcPoolConfig"):
        from repro.queries import procpool

        return getattr(procpool, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
