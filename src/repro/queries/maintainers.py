"""Pluggable standing-query maintainers.

A *maintainer* owns the incremental maintenance of one standing query's
result over streamed object updates.  :class:`~repro.queries.monitor.
QueryMonitor` used to hard-code two standing-query kinds and branch on
``isinstance`` throughout its update paths; every new watchable query
kind meant touching the monitor core, the shard router, the delta
model, the wire protocol and the service façade by hand.  The monitor
now dispatches every per-query decision through the
:class:`StandingQuery` protocol defined here, so adding a query kind is
one maintainer class in this file (plus a ``@register_maintainer``
line) — the monitor, sharded router, serving layer and
:class:`repro.api.QueryService` pick it up through the same
``register(spec)`` path with no further plumbing.

The protocol
------------

A maintainer is constructed from ``(query_id, spec, host)`` where
``host`` is the owning monitor — the narrow surface a maintainer may
use is ``host.index`` / ``host.session`` / ``host.stats`` and
``host.touch(self)`` (record the pre-mutation result before the first
write in a mutation scope, so the monitor can diff it into a
:class:`~repro.queries.deltas.ResultDelta`).  It must implement:

* :meth:`~StandingQuery.influence_radius` — the indoor distance beyond
  which an object provably cannot change the result *right now*; the
  shard router turns these into conservative skip decisions (the
  router measures against the object's instance bounding box, so the
  object's own uncertainty extent is accounted on the object side);
* :meth:`~StandingQuery.on_update` — absorb one moved/inserted object
  (the monitor already counted the pair in ``stats.pairs_evaluated``);
* :meth:`~StandingQuery.on_delete` — absorb one deleted object (ditto);
* :meth:`~StandingQuery.recompute` — full re-execution (registration,
  bound-violation fallbacks, topology resyncs);
* :meth:`~StandingQuery.snapshot` / :meth:`~StandingQuery.restore` —
  the round-trippable persistence contract: ``snapshot()`` captures the
  maintainer's complete mutable state as a JSON-serializable value and
  ``restore(state)`` reinstates it exactly (no recomputation), so that
  ``restore(snapshot())`` on a fresh instance leaves the maintainer
  bit-identical — same published result, same annotations, same
  bounds-accepted ``None`` markers, hence identical deltas from
  identical subsequent updates.  The default (state *is* the result
  mapping, ``member id -> annotation``: ``None`` marks a member
  accepted by bounds alone; otherwise the exact expected distance, or
  for ``iprq`` the exact qualifying probability) suits any maintainer
  whose only mutable state is ``result``; maintainers with extra state
  override both symmetrically (see :class:`CountMaintainer`).

Two class attributes steer the surrounding machinery:

* ``annotates`` — ``"distance"`` or ``"probability"``: which
  :class:`~repro.queries.deltas.ResultDelta` field re-annotations of
  retained members land in (``distance_changed`` vs
  ``probability_changed``);
* ``dynamic_reach`` — whether :meth:`influence_radius` can change when
  the result changes (an ikNNQ's ``tau`` moves with its members; an
  iRQ's ``r`` never does).  The monitor bumps its ``reach_epoch`` only
  on dynamic-reach result changes, which is what lets the sharded
  router cache its reach tables between batches.

The three built-in maintainers
------------------------------

:class:`RangeMaintainer` and :class:`KNNMaintainer` are the standing
iRQ/ikNNQ logic extracted *bit-identically* from the pre-refactor
monitor (the existing equivalence property tests run unmodified, stats
counting included).  :class:`ProbRangeMaintainer` is new: incremental
maintenance of the probabilistic-threshold range query (standing iPRQ)
— per update, the subregion probability bounds of
:func:`repro.queries.prob_range.probability_bounds` decide membership
whenever the qualifying probability provably stays on one side of
``p_min``, and only an update whose probability can *cross* ``p_min``
pays one exact :func:`~repro.queries.prob_range.qualifying_probability`
refinement.  Its influence radius is the query range ``r``: an object
whose instance box is Euclidean-farther than ``r`` has qualifying
probability exactly zero (indoor distance dominates Euclidean), so it
can neither hold membership nor acquire it.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.api.specs import (
    CountSpec,
    KNNSpec,
    OccupancySpec,
    ProbRangeSpec,
    QuerySpec,
    RangeSpec,
)
from repro.distances.batch import (
    ObjectBlock,
    block_object_bounds,
    block_probability_bounds,
)
from repro.distances.bounds import DistanceInterval, object_bounds
from repro.distances.expected import expected_indoor_distance
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.objects.uncertain import UncertainObject
from repro.queries.engine import filtering_phase
from repro.queries.knn import ikNNQ
from repro.queries.prob_range import (
    probability_bounds,
    qualifying_probability,
)
from repro.queries.range_query import iRQ
from repro.space.doors_graph import DoorDistances

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.queries.monitor import QueryMonitor

#: Distinguishes "not a member" from a stored ``None`` annotation (a
#: member accepted by bounds alone) in result-dict lookups.
_MISSING = object()

#: Spec type -> maintainer class; fed by :func:`register_maintainer`.
_MAINTAINERS: dict[type[QuerySpec], type["StandingQuery"]] = {}


def register_maintainer(
    spec_cls: type[QuerySpec],
) -> Callable[[type["StandingQuery"]], type["StandingQuery"]]:
    """Class decorator binding a maintainer to the spec kind it
    maintains — the single registration point a new standing-query
    kind needs besides the maintainer class itself.

    The spec's ``watchable`` flag is what the wire-level gate
    (:func:`repro.api.specs.standing_spec`) checks before this
    registry is ever consulted; a maintainer for an unwatchable spec
    would be unreachable, so the mismatch fails loudly here at import
    time instead of silently at registration time."""

    def bind(cls: type["StandingQuery"]) -> type["StandingQuery"]:
        if not spec_cls.watchable:
            raise QueryError(
                f"{spec_cls.__name__} declares watchable=False; set "
                "watchable=True on the spec before registering a "
                "maintainer for it"
            )
        _MAINTAINERS[spec_cls] = cls
        return cls

    return bind


def maintainer_for(
    spec: QuerySpec, query_id: str, host: "QueryMonitor"
) -> "StandingQuery":
    """Instantiate the maintainer registered for ``spec``'s type."""
    cls = _MAINTAINERS.get(type(spec))
    if cls is None:
        raise QueryError(
            f"no standing-query maintainer registered for "
            f"{type(spec).__name__}"
        )
    return cls(query_id, spec, host)


class StandingQuery:
    """Base class / protocol of one registered standing query.

    Subclasses implement the per-kind maintenance (see the module
    docstring for the contract); the base class carries the common
    state and the shared exact-distance helper.
    """

    #: Which delta field re-annotations land in (see module docstring).
    annotates: ClassVar[str] = "distance"
    #: Whether influence_radius() can move when the result changes.
    dynamic_reach: ClassVar[bool] = False
    #: Whether :meth:`on_update_batch` implements the vectorized bounds
    #: kernel.  The monitor's ``kernel="vector"`` path dispatches a
    #: packed :class:`~repro.distances.batch.ObjectBlock` to batch-aware
    #: maintainers and falls back to per-object :meth:`on_update` for
    #: the rest (counted in ``MonitorStats.kernel_fallbacks``), so
    #: third-party maintainers keep working unchanged.
    supports_batch: ClassVar[bool] = False

    def __init__(
        self, query_id: str, spec: QuerySpec, host: "QueryMonitor"
    ) -> None:
        self.query_id = query_id
        self.host = host
        self._spec = spec
        self.result: dict[str, Any] = {}

    @property
    def q(self) -> Point:
        return self._spec.q  # type: ignore[attr-defined]

    def spec(self) -> QuerySpec:
        """The declarative spec this maintainer was registered from (a
        real value object — serializable through :mod:`repro.api.wire`,
        re-registrable as-is)."""
        return self._spec

    def snapshot(self) -> Any:
        """This maintainer's complete mutable state, as a
        JSON-serializable value :meth:`restore` reinstates exactly.
        The default captures ``result`` (member id -> annotation) —
        sufficient whenever that is the only mutable state."""
        return dict(self.result)

    def restore(self, state: Any) -> None:
        """Reinstate a :meth:`snapshot` capture *exactly* — no
        recomputation.  Exact reinstatement (rather than a fresh
        :meth:`recompute`) is what makes a restored engine
        bit-identical: a recompute could legitimately differ in
        bounds-accepted ``None`` markers or incrementally-grown member
        sets, which would leak phantom deltas after restore."""
        self.result = dict(state)

    # -- the per-kind contract -----------------------------------------

    def influence_radius(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_update(
        self, obj: UncertainObject
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def on_update_batch(self, block: ObjectBlock) -> None:
        """Absorb one packed batch of moved objects (see
        :mod:`repro.distances.batch`).  Only called when
        :attr:`supports_batch` is set; the default is the scalar loop,
        so an override only has to beat it, never to exist."""
        for obj in block.objects:
            self.on_update(obj)

    def recompute(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def holds(self, object_id: str) -> bool:
        """Whether this query currently holds ``object_id`` in its
        result/candidate set — the monitor's delete path only routes
        (and counts) a deletion to queries that do.  Maintainers whose
        membership lives outside ``result`` (derived/aggregate results)
        override this."""
        return object_id in self.result

    def on_delete(self, object_id: str) -> None:
        """Absorb one deletion.  A non-member is free for every kind;
        a member hands off to the kind-specific :meth:`_delete_member`."""
        if object_id not in self.result:
            self.host.stats.pairs_skipped += 1
            return
        self._delete_member(object_id)

    def _delete_member(
        self, object_id: str
    ) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- shared helpers ------------------------------------------------

    def _exact(self, obj: UncertainObject, dd: DoorDistances) -> float:
        host = self.host
        return expected_indoor_distance(
            self.q, obj, dd, host.index.space, host.index.population.grid
        ).value


@register_maintainer(RangeSpec)
class RangeMaintainer(StandingQuery):
    """Standing iRQ: ``result`` maps member id -> exact distance, or
    ``None`` for members accepted purely by bounds."""

    def __init__(
        self, query_id: str, spec: RangeSpec, host: "QueryMonitor"
    ) -> None:
        super().__init__(query_id, spec, host)
        self.r = spec.r

    def influence_radius(self) -> float:
        """Only objects within this (indoor) distance of ``q`` can
        change the result: the query radius itself."""
        return self.r

    supports_batch: ClassVar[bool] = True

    def on_update(self, obj: UncertainObject) -> None:
        """Membership of the moved object is re-decided in isolation —
        the cached full search makes the interval machinery of Table III
        sufficient, so no other pair is ever touched."""
        host = self.host
        dd = host.session.door_distances(self.q)
        interval = object_bounds(
            self.q, obj, dd, host.index.space, host.index.population.grid
        )
        self._decide(obj, interval, dd)

    def on_update_batch(self, block: ObjectBlock) -> None:
        """Vectorized twin of :meth:`on_update`: one whole-block bounds
        evaluation, then the identical per-pair decision sequence —
        only undecided pairs fall through to exact refinement."""
        host = self.host
        pack = host.session.kernel_pack(self.q)
        intervals = block_object_bounds(
            pack, block, self.q, host.index.space
        )
        for obj, interval in zip(block.objects, intervals):
            self._decide(obj, interval, pack.dd)

    def _decide(
        self,
        obj: UncertainObject,
        interval: DistanceInterval,
        dd: DoorDistances,
    ) -> None:
        host = self.host
        oid = obj.object_id
        if interval.entirely_within(self.r):
            # A moved member's stored exact distance is stale either
            # way, so the bounds-accepted marker always overwrites it.
            if self.result.get(oid, _MISSING) is not None:
                host.touch(self)
                self.result[oid] = None
            host.stats.pairs_skipped += 1
        elif interval.entirely_beyond(self.r):
            if oid in self.result:
                host.touch(self)
                del self.result[oid]
            host.stats.pairs_skipped += 1
        else:
            d = self._exact(obj, dd)
            host.stats.pairs_refined += 1
            if d <= self.r:
                if self.result.get(oid, _MISSING) != d:
                    host.touch(self)
                    self.result[oid] = d
            elif oid in self.result:
                host.touch(self)
                del self.result[oid]

    def _delete_member(self, object_id: str) -> None:
        """An iRQ just drops the deleted member."""
        self.host.touch(self)
        del self.result[object_id]
        self.host.stats.pairs_skipped += 1

    def recompute(self) -> None:
        host = self.host
        host.touch(self)  # the whole result is about to be replaced
        dd = host.session.door_distances(self.q)
        res = iRQ(self.q, self.r, host.index, precomputed_dd=dd)
        self.result = dict(res.distances)


@register_maintainer(KNNSpec)
class KNNMaintainer(StandingQuery):
    """Standing ikNNQ: ``result`` maps member id -> exact distance
    (always refined, so the k-th distance threshold is available).

    Soundness of the incremental maintenance rests on one invariant:
    *at every consistent state, each non-member's expected distance is
    at least the current k-th member distance* ``tau``.  A member whose
    refreshed distance stays ``<= tau`` keeps the invariant (``tau``
    can only shrink); an outsider entering with ``d < tau`` evicts the
    worst member, whose distance equals the old ``tau`` and therefore
    still satisfies the invariant from the outside.  Every transition
    that could break the invariant triggers the full fallback instead.
    When the reachable population drops below ``k`` the result simply
    shrinks and ``tau`` becomes infinite — every later update is a
    potential entry.
    """

    #: ``tau`` moves with the members, so the shard router's cached
    #: reach tables must be rebuilt whenever this result changes.
    dynamic_reach: ClassVar[bool] = True

    def __init__(
        self, query_id: str, spec: KNNSpec, host: "QueryMonitor"
    ) -> None:
        super().__init__(query_id, spec, host)
        self.k = spec.k

    def kth_distance(self) -> float:
        """The maintenance threshold ``tau``: the worst member distance
        when the result is full, else infinity (any reachable object
        could still enter)."""
        if len(self.result) < self.k:
            return math.inf
        return max(self.result.values())

    def influence_radius(self) -> float:
        """Only objects within the current ``tau`` can change the
        result (members always are; an unfull result reaches forever)."""
        return self.kth_distance()

    supports_batch: ClassVar[bool] = True

    def on_update(self, obj: UncertainObject) -> None:
        host = self.host
        dd = host.session.door_distances(self.q)
        self._decide(obj, None, dd)

    def on_update_batch(self, block: ObjectBlock) -> None:
        """Vectorized twin of :meth:`on_update`.  Only the
        position-dependent geometry — the pruning intervals — is
        precomputed for the block; membership decisions stay strictly
        sequential per object, because ``tau`` evolves *within* a batch
        and the scalar path's decisions depend on that evolution."""
        host = self.host
        pack = host.session.kernel_pack(self.q)
        intervals = block_object_bounds(
            pack, block, self.q, host.index.space
        )
        for obj, interval in zip(block.objects, intervals):
            self._decide(obj, interval, pack.dd)

    def _decide(
        self,
        obj: UncertainObject,
        interval: DistanceInterval | None,
        dd: DoorDistances,
    ) -> None:
        host = self.host
        oid = obj.object_id
        tau = self.kth_distance()
        if oid in self.result:
            # A member moved: its stored distance is stale, refine it.
            d = self._exact(obj, dd)
            if math.isfinite(d) and d <= tau:
                if self.result[oid] != d:  # invariant holds; tau shrinks
                    host.touch(self)
                    self.result[oid] = d
                host.stats.pairs_refined += 1
            else:
                # The member drifted past the threshold (or became
                # unreachable): an outsider may now beat it.  The pair
                # escalated (not also refined — the pair counters
                # partition pairs_evaluated) and one query-level
                # re-execution was paid.
                host.stats.pairs_recomputed += 1
                host.stats.full_recomputes += 1
                self.recompute()
            return
        if len(self.result) >= self.k:
            if interval is None:
                interval = object_bounds(
                    self.q, obj, dd, host.index.space,
                    host.index.population.grid,
                )
            if interval.lower > tau:
                # Certainly no closer than the current k-th member.
                host.stats.pairs_skipped += 1
                return
        d = self._exact(obj, dd)
        host.stats.pairs_refined += 1
        if not math.isfinite(d):
            return
        if len(self.result) < self.k:
            host.touch(self)
            self.result[oid] = d
        elif d < tau:
            host.touch(self)
            worst = max(self.result, key=self.result.__getitem__)
            del self.result[worst]
            self.result[oid] = d

    def _delete_member(self, object_id: str) -> None:
        """An ikNNQ that loses a member must refill the vacated slot
        from scratch (the refill may come back with fewer than ``k``
        members when the surviving population runs short)."""
        self.host.stats.pairs_recomputed += 1
        self.host.stats.full_recomputes += 1
        self.recompute()

    def recompute(self) -> None:
        host = self.host
        host.touch(self)
        dd = host.session.door_distances(self.q)
        res = ikNNQ(self.q, self.k, host.index, precomputed_dd=dd)
        distances: dict[str, float] = {}
        for obj in res.objects:
            d = res.distances[obj.object_id]
            if d is None:  # accepted by bounds: refine for the tau
                d = self._exact(obj, dd)
            if math.isfinite(d):
                # An unreachable "member" would poison tau (= max of
                # the stored distances) forever; with fewer than k
                # reachable objects the result legitimately shrinks.
                distances[obj.object_id] = d
        self.result = distances


@register_maintainer(ProbRangeSpec)
class ProbRangeMaintainer(StandingQuery):
    """Standing iPRQ: ``result`` maps member id -> exact qualifying
    probability, or ``None`` for members accepted purely by the
    subregion probability bounds.

    Maintenance mirrors the standing iRQ shape — one moved object is
    re-decided in isolation against the session-cached full search —
    with the probability bounds of
    :func:`~repro.queries.prob_range.probability_bounds` in place of
    the Table III distance interval: a subregion whose ``tmax`` stays
    within ``r`` contributes all of its mass to the lower bound, one
    whose ``tmin`` exceeds ``r`` contributes nothing to the upper
    bound, and only when ``p_min`` falls strictly between the two (the
    probability could *cross* the threshold) is one exact
    :func:`~repro.queries.prob_range.qualifying_probability` refinement
    paid.  Registration, fallback-free by construction, and topology
    resyncs run :meth:`recompute`, which applies the *same*
    bounds-then-refine decision per object — so the incremental and
    from-scratch paths agree on membership and annotation alike.
    """

    annotates: ClassVar[str] = "probability"

    def __init__(
        self, query_id: str, spec: ProbRangeSpec, host: "QueryMonitor"
    ) -> None:
        super().__init__(query_id, spec, host)
        self.r = spec.r
        self.p_min = spec.p_min

    def influence_radius(self) -> float:
        """The query range ``r`` is a conservative reach: an object
        whose instance box lies Euclidean-beyond ``r`` has every
        instance at indoor distance > ``r`` (indoor never undercuts
        Euclidean), hence qualifying probability exactly 0 — it cannot
        enter, and a member (probability >= ``p_min`` > 0) always has
        an instance within ``r``, so it cannot be missed when leaving.
        The object's own uncertainty extent is carried by the instance
        bounding box the router measures against."""
        return self.r

    supports_batch: ClassVar[bool] = True

    def on_update(self, obj: UncertainObject) -> None:
        host = self.host
        dd = host.session.door_distances(self.q)
        lo, hi = probability_bounds(
            host.index, self.q, obj, dd, self.r
        )
        self._decide(obj, lo, hi, dd)

    def on_update_batch(self, block: ObjectBlock) -> None:
        """Vectorized twin of :meth:`on_update`: whole-block
        probability bounds (Eq. 8 ingredients), the same per-pair
        threshold decisions, exact refinement only when ``p_min`` falls
        strictly between the bounds."""
        host = self.host
        pack = host.session.kernel_pack(self.q)
        los, his = block_probability_bounds(
            pack, block, self.q, host.index.space, self.r
        )
        for obj, lo, hi in zip(block.objects, los, his):
            self._decide(obj, lo, hi, pack.dd)

    def _decide(
        self,
        obj: UncertainObject,
        lo: float,
        hi: float,
        dd: DoorDistances,
    ) -> None:
        host = self.host
        oid = obj.object_id
        if lo >= self.p_min:
            # Provably still (or newly) qualifying: the stored exact
            # probability is stale after a move, so the bounds-accepted
            # marker always overwrites it.
            if self.result.get(oid, _MISSING) is not None:
                host.touch(self)
                self.result[oid] = None
            host.stats.pairs_skipped += 1
        elif hi < self.p_min:
            if oid in self.result:
                host.touch(self)
                del self.result[oid]
            host.stats.pairs_skipped += 1
        else:
            # The probability can cross p_min: one exact refinement.
            prob = qualifying_probability(
                host.index, self.q, obj, dd, self.r
            )
            host.stats.pairs_refined += 1
            if prob >= self.p_min:
                if self.result.get(oid, _MISSING) != prob:
                    host.touch(self)
                    self.result[oid] = prob
            elif oid in self.result:
                host.touch(self)
                del self.result[oid]

    def _delete_member(self, object_id: str) -> None:
        """Like the iRQ: a departed member just drops out."""
        self.host.touch(self)
        del self.result[object_id]
        self.host.stats.pairs_skipped += 1

    def recompute(self) -> None:
        """Full re-execution against the session-cached full search,
        applying the identical bounds-then-refine decision per object
        that :meth:`on_update` applies per pair (one convention for
        both paths keeps re-annotation deltas quiet).

        The filtering phase prunes the candidate set first: an object
        whose skeleton min-distance exceeds ``r`` (no false negatives,
        Lemma 6) has every instance beyond ``r`` and therefore
        qualifying probability exactly 0 — membership and annotations
        are identical to a full-population scan, at candidate cost."""
        host = self.host
        host.touch(self)
        dd = host.session.door_distances(self.q)
        filtered, _ = filtering_phase(host.index, self.q, self.r, True)
        result: dict[str, float | None] = {}
        for obj in filtered.objects:
            lo, hi = probability_bounds(
                host.index, self.q, obj, dd, self.r
            )
            if lo >= self.p_min:
                result[obj.object_id] = None
            elif hi < self.p_min:
                continue
            else:
                prob = qualifying_probability(
                    host.index, self.q, obj, dd, self.r
                )
                if prob >= self.p_min:
                    result[obj.object_id] = prob
        self.result = result


def partition_anchor(space: Any, partition_id: str) -> Point:
    """The spatial anchor of a partition: its bounds center when the
    footprint contains it, else the first attached door's midpoint.

    Anchored (point-free) specs like :class:`OccupancySpec` need a
    :class:`Point` for the surrounding machinery — shard placement,
    session pinning, the router's reach tables — and this is the single
    derivation every surface shares, so a sharded engine places and
    routes the watch exactly like a single monitor reasons about it."""
    partition = space.partition(partition_id)
    b = partition.bounds
    cx, cy = (b.minx + b.maxx) / 2.0, (b.miny + b.maxy) / 2.0
    if partition.contains_xy(cx, cy):
        return Point(cx, cy, partition.floor)
    for door_id in sorted(partition.door_ids):
        mid = space.doors[door_id].midpoint
        return Point(mid.x, mid.y, partition.floor)
    return Point(cx, cy, partition.floor)


def spec_anchor(spec: QuerySpec, space: Any) -> Point:
    """A spec's spatial anchor: its query point when it has one, else
    the watched partition's :func:`partition_anchor`.  The shard router
    uses this for placement, so anchored specs co-locate with point
    queries in the same zone."""
    q = getattr(spec, "q", None)
    if q is not None:
        return q
    return partition_anchor(space, spec.partition_id)  # type: ignore[attr-defined]


#: The single synthetic member id a count watch publishes.
COUNT_KEY = "count"


class _CountHost:
    """Host proxy handed to a :class:`CountMaintainer`'s inner range
    maintainer: forwards the read-only surface (``index`` / ``session``
    / ``stats``) to the real monitor but redirects ``touch`` to the
    *outer* maintainer — the monitor must diff the published count
    result, never the private membership set, and the pre-mutation
    capture must happen before the inner result mutates (the outer
    result is republished from it afterwards)."""

    def __init__(self, outer: "CountMaintainer") -> None:
        self._outer = outer

    @property
    def index(self) -> Any:
        return self._outer.host.index

    @property
    def session(self) -> Any:
        return self._outer.host.session

    @property
    def stats(self) -> Any:
        return self._outer.host.stats

    def touch(self, _sq: StandingQuery) -> None:
        self._outer.host.touch(self._outer)


@register_maintainer(CountSpec)
class CountMaintainer(StandingQuery):
    """Aggregate count watch (standing ``icount``): alert while the
    number of objects within indoor distance ``r`` of ``q`` is at
    least ``threshold``.

    Composition over a private :class:`RangeMaintainer`: the inner
    maintainer tracks the qualifying membership set with the standing
    iRQ machinery verbatim, and this class publishes a *derived* result
    — ``{"count": float(n)}`` while ``n >= threshold``, empty otherwise
    — so the generic delta diff yields exactly the alert semantics:
    *entered* when occupancy crosses the threshold upward,
    *distance_changed* re-annotation while it varies above it, *left*
    when it crosses back down.  The inner host proxy routes ``touch``
    to this maintainer (capturing the pre-mutation published count),
    and every mutation hook delegates then republishes.

    ``snapshot()`` must therefore capture *both* layers — the private
    membership and the published count — and ``restore()`` reinstates
    both, which is precisely the round-trip contract the persistence
    subsystem exercises for a maintainer with state beyond ``result``.
    """

    def __init__(
        self, query_id: str, spec: CountSpec, host: "QueryMonitor"
    ) -> None:
        super().__init__(query_id, spec, host)
        self.threshold = spec.threshold
        self._inner = RangeMaintainer(
            query_id, RangeSpec(spec.q, spec.r), _CountHost(self)
        )

    def influence_radius(self) -> float:
        """Same reach as the underlying range query: only objects
        within ``r`` can change the membership count."""
        return self._inner.r

    def _republish(self) -> None:
        # touch() already ran (via the inner host proxy) before the
        # membership mutated, so rewriting the published result here is
        # diffed against the true pre-mutation state.
        n = len(self._inner.result)
        if n >= self.threshold:
            self.result = {COUNT_KEY: float(n)}
        else:
            self.result = {}

    supports_batch: ClassVar[bool] = True

    def on_update(self, obj: UncertainObject) -> None:
        self._inner.on_update(obj)
        self._republish()

    def on_update_batch(self, block: ObjectBlock) -> None:
        """The inner range maintainer absorbs the block with its own
        kernel; republishing once at the end is equivalent to per
        object, because deltas diff the scope's end state."""
        self._inner.on_update_batch(block)
        self._republish()

    def holds(self, object_id: str) -> bool:
        """Membership lives in the inner range maintainer, not in the
        published (derived) count result."""
        return object_id in self._inner.result

    def on_delete(self, object_id: str) -> None:
        self._inner.on_delete(object_id)
        self._republish()

    def _delete_member(
        self, object_id: str
    ) -> None:  # pragma: no cover - on_delete fully delegates
        raise AssertionError("unreachable: on_delete delegates")

    def recompute(self) -> None:
        self._inner.recompute()
        self._republish()

    def snapshot(self) -> dict[str, Any]:
        return {
            "members": dict(self._inner.result),
            "result": dict(self.result),
        }

    def restore(self, state: Any) -> None:
        self._inner.result = dict(state["members"])
        self.result = dict(state["result"])


#: The single synthetic member id an occupancy watch publishes.
OCCUPANCY_KEY = "occupancy"


@register_maintainer(OccupancySpec)
class OccupancyMaintainer(StandingQuery):
    """Per-partition occupancy watch (standing ``iocc``): alert while
    the number of objects whose region center lies inside the watched
    partition is at least ``threshold``.

    Membership is purely geometric — an object is *in* the partition
    iff the partition grid locates its region center there — so every
    update is decided without any distance work (all pairs count as
    ``pairs_skipped``).  The published result is derived, like
    :class:`CountMaintainer`'s: ``{"occupancy": float(n)}`` while
    ``n >= threshold``, empty otherwise, so delta subscribers get
    *entered* when the room fills past the threshold, re-annotations
    while the population varies above it, and *left* when it drains
    back down — the evacuation-scenario alarm.

    Reach: the spec carries no query point, so the maintainer anchors
    itself at :func:`partition_anchor` and reaches to the footprint's
    circumradius plus the largest object uncertainty radius seen (the
    router measures an object's *instance box*, whose gap from the
    region center is at most that radius).  The pad is taken over the
    population at registration/recompute and grown monotonically on
    updates; an object *inserted* with a strictly larger radius than
    any ever seen could in principle be mis-skipped by a cached shard
    reach table — workloads with uniform radii (every built-in
    generator) are exact.

    Topology: door-closure churn is transparent (a resync just
    recomputes membership); removing the watched partition itself
    (split/merge) raises from the next recompute — deregister the
    watch before restructuring the room it watches."""

    def __init__(
        self, query_id: str, spec: OccupancySpec, host: "QueryMonitor"
    ) -> None:
        super().__init__(query_id, spec, host)
        self.partition_id = spec.partition_id
        self.threshold = spec.threshold
        space = host.index.space
        partition = space.partition(spec.partition_id)
        self._anchor = partition_anchor(space, spec.partition_id)
        b = partition.bounds
        self._reach = max(
            math.hypot(x - self._anchor.x, y - self._anchor.y)
            for x in (b.minx, b.maxx)
            for y in (b.miny, b.maxy)
        )
        self._members: set[str] = set()
        self._radius_pad = max(
            (o.region.radius for o in host.index.population), default=0.0
        )

    @property
    def q(self) -> Point:
        """The derived anchor (anchored specs have no query point)."""
        return self._anchor

    def influence_radius(self) -> float:
        return self._reach + self._radius_pad

    def _inside(self, obj: UncertainObject) -> bool:
        located = self.host.index.population.grid.locate(obj.region.center)
        return (
            located is not None
            and located.partition_id == self.partition_id
        )

    def _republish(self) -> None:
        n = len(self._members)
        if n >= self.threshold:
            self.result = {OCCUPANCY_KEY: float(n)}
        else:
            self.result = {}

    def on_update(self, obj: UncertainObject) -> None:
        host = self.host
        host.stats.pairs_skipped += 1  # decided without distance work
        if obj.region.radius > self._radius_pad:
            self._radius_pad = obj.region.radius
        was = obj.object_id in self._members
        now = self._inside(obj)
        if was == now:
            return
        host.touch(self)
        if now:
            self._members.add(obj.object_id)
        else:
            self._members.discard(obj.object_id)
        self._republish()

    def holds(self, object_id: str) -> bool:
        """Membership is the private geometric set, not the published
        (derived) occupancy result."""
        return object_id in self._members

    def on_delete(self, object_id: str) -> None:
        self.host.stats.pairs_skipped += 1
        if object_id not in self._members:
            return
        self.host.touch(self)
        self._members.discard(object_id)
        self._republish()

    def _delete_member(
        self, object_id: str
    ) -> None:  # pragma: no cover - on_delete fully overridden
        raise AssertionError("unreachable: on_delete is overridden")

    def recompute(self) -> None:
        host = self.host
        host.touch(self)
        grid = host.index.population.grid
        members: set[str] = set()
        pad = 0.0
        for obj in host.index.population:
            pad = max(pad, obj.region.radius)
            located = grid.locate(obj.region.center)
            if (
                located is not None
                and located.partition_id == self.partition_id
            ):
                members.add(obj.object_id)
        self._members = members
        self._radius_pad = max(self._radius_pad, pad)
        self._republish()

    def snapshot(self) -> dict[str, Any]:
        return {
            "members": sorted(self._members),
            "result": dict(self.result),
        }

    def restore(self, state: Any) -> None:
        self._members = set(state["members"])
        self.result = dict(state["result"])
