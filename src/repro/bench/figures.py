"""Experiment definitions: one function per panel of Figures 12-15.

Each function drives the workload factory through the profile's
parameter grid and returns an :class:`ExperimentResult` whose table is
the panel's data (same x axis, same series as the paper's plot).
"""

from __future__ import annotations

import time

from repro.bench.runner import ExperimentResult, run_queries
from repro.bench.workloads import WorkloadFactory
from repro.baselines.precompute import PrecomputedDistanceIndex
from repro.index.composite import CompositeIndex
from repro.objects.generator import ObjectGenerator
from repro.space.mall import mall_statistics

# ---------------------------------------------------------------------------
# Figure 12 — iRQ execution time
# ---------------------------------------------------------------------------


def fig12a(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ time vs |O|, one series per query range r."""
    p = factory.profile
    out = ExperimentResult("Fig 12(a): iRQ Tq vs #objects", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        for r in p.ranges_grid:
            m = run_queries(index, queries, "irq", r)
            out.add(f"r={r:g}", m.mean_ms)
    return out


def fig12b(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ phase breakdown vs |O| at the default range."""
    p = factory.profile
    out = ExperimentResult("Fig 12(b): iRQ phase breakdown", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        m = run_queries(index, queries, "irq", p.default_range)
        for phase, ms in m.mean_phase_ms.items():
            out.add(phase, ms)
    return out


def fig12c(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ time vs uncertainty-region size (diameters, like the paper's
    x axis), one series per query range."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 12(c): iRQ Tq vs uncertainty diameter", "diameter"
    )
    out.x_values = [2.0 * radius for radius in p.radii_grid]
    queries = factory.query_points()
    for radius in p.radii_grid:
        index = factory.index(radius=radius)
        for r in p.ranges_grid:
            m = run_queries(index, queries, "irq", r)
            out.add(f"r={r:g}", m.mean_ms)
    return out


def fig12d(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ time vs #partitions (more floors, fixed |O|)."""
    p = factory.profile
    out = ExperimentResult("Fig 12(d): iRQ Tq vs #partitions", "#partitions")
    for floors in p.floors_grid:
        space = factory.space(floors)
        out.x_values.append(mall_statistics(space)["partitions"])
        index = factory.index(floors=floors)
        queries = factory.query_points(floors=floors)
        for r in p.ranges_grid:
            m = run_queries(index, queries, "irq", r)
            out.add(f"r={r:g}", m.mean_ms)
    return out


# ---------------------------------------------------------------------------
# Figure 13 — ikNNQ execution time
# ---------------------------------------------------------------------------


def fig13a(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult("Fig 13(a): ikNNQ Tq vs #objects", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        for k in p.k_grid:
            m = run_queries(index, queries, "iknn", k)
            out.add(f"k={k}", m.mean_ms)
    return out


def fig13b(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult("Fig 13(b): ikNNQ phase breakdown", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        m = run_queries(index, queries, "iknn", p.default_k)
        for phase, ms in m.mean_phase_ms.items():
            out.add(phase, ms)
    return out


def fig13c(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult(
        "Fig 13(c): ikNNQ Tq vs uncertainty diameter", "diameter"
    )
    out.x_values = [2.0 * radius for radius in p.radii_grid]
    queries = factory.query_points()
    for radius in p.radii_grid:
        index = factory.index(radius=radius)
        for k in p.k_grid:
            m = run_queries(index, queries, "iknn", k)
            out.add(f"k={k}", m.mean_ms)
    return out


def fig13d(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult("Fig 13(d): ikNNQ Tq vs #partitions", "#partitions")
    for floors in p.floors_grid:
        space = factory.space(floors)
        out.x_values.append(mall_statistics(space)["partitions"])
        index = factory.index(floors=floors)
        queries = factory.query_points(floors=floors)
        for k in p.k_grid:
            m = run_queries(index, queries, "iknn", k)
            out.add(f"k={k}", m.mean_ms)
    return out


# ---------------------------------------------------------------------------
# Figure 14 — effectiveness of the distance bounds
# ---------------------------------------------------------------------------


def fig14a(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ filtering/pruning ratios vs |O| (paper: >97.3% / >99.4%)."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 14(a): iRQ filtering & pruning ratio", "|O|", unit="%"
    )
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        m = run_queries(index, queries, "irq", p.default_range)
        out.add("filtering", 100.0 * m.stats.filtering_ratio)
        out.add("pruning", 100.0 * m.stats.pruning_ratio)
    return out


def fig14b(factory: WorkloadFactory) -> ExperimentResult:
    """iRQ with vs without the pruning phase."""
    p = factory.profile
    out = ExperimentResult("Fig 14(b): iRQ pruning phase effect", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        with_p = run_queries(index, queries, "irq", p.default_range)
        without_p = run_queries(
            index, queries, "irq", p.default_range, with_pruning=False
        )
        out.add("withPruning", with_p.mean_ms)
        out.add("withoutPruning", without_p.mean_ms)
    return out


def fig14c(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult(
        "Fig 14(c): ikNNQ filtering & pruning ratio", "|O|", unit="%"
    )
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        m = run_queries(index, queries, "iknn", p.default_k)
        out.add("filtering", 100.0 * m.stats.filtering_ratio)
        out.add("pruning", 100.0 * m.stats.pruning_ratio)
    return out


def fig14d(factory: WorkloadFactory) -> ExperimentResult:
    p = factory.profile
    out = ExperimentResult("Fig 14(d): ikNNQ pruning phase effect", "|O|")
    out.x_values = list(p.objects_grid)
    queries = factory.query_points()
    for n in p.objects_grid:
        index = factory.index(n_objects=n)
        with_p = run_queries(index, queries, "iknn", p.default_k)
        without_p = run_queries(
            index, queries, "iknn", p.default_k, with_pruning=False
        )
        out.add("withPruning", with_p.mean_ms)
        out.add("withoutPruning", without_p.mean_ms)
    return out


# ---------------------------------------------------------------------------
# Figure 15 — composite index
# ---------------------------------------------------------------------------


def fig15a(factory: WorkloadFactory) -> ExperimentResult:
    """Partitions retrieved by RangeSearch with vs without the skeleton
    tier, per query range."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 15(a): partitions retrieved vs query range",
        "range",
        unit="#",
    )
    out.x_values = list(p.ranges_grid)
    index = factory.index()
    queries = factory.query_points()
    for r in p.ranges_grid:
        with_sk = run_queries(index, queries, "irq", r, use_skeleton=True)
        without_sk = run_queries(index, queries, "irq", r, use_skeleton=False)
        n = max(1, len(queries))
        out.add("withSkeleton", with_sk.stats.partitions_retrieved / n)
        out.add("withoutSkeleton", without_sk.stats.partitions_retrieved / n)
    return out


def fig15b(factory: WorkloadFactory) -> ExperimentResult:
    """Composite-index construction time per layer vs #partitions."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 15(b): index construction time", "#partitions"
    )
    for floors in p.floors_grid:
        space = factory.space(floors)
        out.x_values.append(mall_statistics(space)["partitions"])
        population = factory.population(floors=floors)
        index = CompositeIndex.build(space, population, fanout=p.fanout)
        for layer in (
            "tree_tier", "object_layer", "topological_layer", "skeleton_tier"
        ):
            out.add(layer, 1000.0 * index.build_times[layer])
    return out


def fig15c(factory: WorkloadFactory, op_counts=(10, 50, 100)) -> ExperimentResult:
    """Mean cost of dynamic operations (ms per op) vs #operations."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 15(c): dynamic operation cost", "#operations"
    )
    out.x_values = list(op_counts)
    space = factory.space()
    population = factory.population()
    index = CompositeIndex.build(space, population, fanout=p.fanout)
    gen = ObjectGenerator(
        space, radius=p.default_radius, n_instances=p.n_instances,
        seed=p.seed + 999, id_prefix="f15c_",
    )
    rooms = [
        pid for pid in space.partitions
        if space.partitions[pid].kind.value == "room"
    ]
    for count in op_counts:
        victims = rooms[:count]
        snapshots = []
        t0 = time.perf_counter()
        for pid in victims:
            partition = space.partitions[pid]
            doors = [space.doors[d] for d in list(partition.door_ids)]
            space.remove_partition(pid)
            index.delete_partition(pid)
            snapshots.append((partition, doors))
        t_del = (time.perf_counter() - t0) / count
        t0 = time.perf_counter()
        for partition, doors in snapshots:
            from repro.space.partition import Partition
            restored = Partition(
                partition.partition_id, partition.footprint,
                partition.floor, partition.kind,
                upper_floor=partition.upper_floor,
            )
            space.add_partition(restored)
            for door in doors:
                space.add_door(door)
            index.insert_partition(restored)
        t_ins = (time.perf_counter() - t0) / count
        objs = [gen.generate_one() for _ in range(count)]
        t0 = time.perf_counter()
        for obj in objs:
            index.insert_object(obj)
        t_insobj = (time.perf_counter() - t0) / count
        t0 = time.perf_counter()
        for obj in objs:
            index.delete_object(obj.object_id)
        t_delobj = (time.perf_counter() - t0) / count
        out.add("insertPartition", 1000.0 * t_ins)
        out.add("deletePartition", 1000.0 * t_del)
        out.add("insertObj", 1000.0 * t_insobj)
        out.add("deleteObj", 1000.0 * t_delobj)
    return out


def fig15d(factory: WorkloadFactory) -> ExperimentResult:
    """Door-to-door pre-computation time vs #partitions — what one
    topology change costs the prior-work baseline."""
    p = factory.profile
    out = ExperimentResult(
        "Fig 15(d): distance pre-computation time",
        "#partitions",
        unit="s",
    )
    for floors in p.floors_grid:
        space = factory.space(floors)
        out.x_values.append(mall_statistics(space)["partitions"])
        pre = PrecomputedDistanceIndex(space)
        out.add("pre-computation", pre.build_seconds)
    return out


ALL_FIGURES = {
    "fig12a": fig12a, "fig12b": fig12b, "fig12c": fig12c, "fig12d": fig12d,
    "fig13a": fig13a, "fig13b": fig13b, "fig13c": fig13c, "fig13d": fig13d,
    "fig14a": fig14a, "fig14b": fig14b, "fig14c": fig14c, "fig14d": fig14d,
    "fig15a": fig15a, "fig15b": fig15b, "fig15c": fig15c, "fig15d": fig15d,
}
