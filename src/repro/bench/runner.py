"""Measurement helpers: run query workloads and aggregate statistics."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.knn import ikNNQ
from repro.queries.range_query import iRQ
from repro.queries.stats import QueryStats


@dataclass
class ExperimentResult:
    """One figure panel's data: x values and named series."""

    title: str
    x_label: str
    x_values: list[Any] = field(default_factory=list)
    series: dict[str, list[float]] = field(default_factory=dict)
    unit: str = "ms"

    def add(self, name: str, value: float) -> None:
        self.series.setdefault(name, []).append(value)

    def to_table(self) -> str:
        from repro.bench.reporting import format_series
        return format_series(
            self.title, self.x_label, self.x_values, self.series, self.unit
        )


@dataclass
class WorkloadMeasurement:
    """Aggregated over a set of query points."""

    mean_ms: float
    stats: QueryStats  # summed over queries

    @property
    def mean_phase_ms(self) -> dict[str, float]:
        n = max(1, self._n)
        return {
            name: 1000.0 * t / n
            for name, t in self.stats.phase_breakdown().items()
        }

    _n: int = 1


def run_queries(
    index: CompositeIndex,
    queries: Sequence[Point],
    kind: str,
    value: float | int,
    with_pruning: bool = True,
    use_skeleton: bool = True,
) -> WorkloadMeasurement:
    """Execute iRQ (``kind='irq'``) or ikNNQ (``kind='iknn'``) for every
    query point; returns the mean response time and summed stats."""
    if kind not in ("irq", "iknn"):
        raise ValueError(f"unknown query kind {kind!r}")
    total = QueryStats()
    t0 = time.perf_counter()
    for q in queries:
        stats = QueryStats()
        if kind == "irq":
            iRQ(q, float(value), index, with_pruning=with_pruning,
                use_skeleton=use_skeleton, stats=stats)
        elif kind == "iknn":
            ikNNQ(q, int(value), index, with_pruning=with_pruning,
                  use_skeleton=use_skeleton, stats=stats)
        else:
            raise ValueError(f"unknown query kind {kind!r}")
        total = total.merge(stats)
    elapsed = time.perf_counter() - t0
    out = WorkloadMeasurement(
        mean_ms=1000.0 * elapsed / max(1, len(queries)),
        stats=total,
    )
    out._n = len(queries)
    return out


@dataclass(frozen=True)
class Timing:
    """Per-call wall-clock timing of a repeated measurement.

    ``min_s`` is the best (least-interfered) call — the conventional
    microbenchmark statistic; ``mean_s`` the average over all calls;
    ``repeat`` how many calls produced them.  Comparisons and float
    conversion use ``min_s``, so existing ``time_call(...) > x`` call
    sites keep their meaning under the least-noise statistic.
    """

    min_s: float
    mean_s: float
    repeat: int

    def __float__(self) -> float:
        return self.min_s

    def __lt__(self, other: Any) -> bool:
        return self.min_s < float(other)

    def __gt__(self, other: Any) -> bool:
        return self.min_s > float(other)

    def __le__(self, other: Any) -> bool:
        return self.min_s <= float(other)

    def __ge__(self, other: Any) -> bool:
        return self.min_s >= float(other)

    def to_dict(self) -> dict[str, float | int]:
        """Plain-dict form, as grid cell results record it."""
        return {
            "min_s": self.min_s,
            "mean_s": self.mean_s,
            "repeat": self.repeat,
        }


def time_call(fn: Callable[[], Any], repeat: int = 1) -> Timing:
    """Time ``fn`` per call over ``repeat`` calls.

    Each call is timed individually so the result separates the
    best-case ``min`` (robust against scheduler noise) from the
    ``mean`` (what a caller actually pays on average) instead of
    collapsing both into one aggregate.
    """
    repeat = max(1, repeat)
    samples = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return Timing(
        min_s=min(samples),
        mean_s=sum(samples) / repeat,
        repeat=repeat,
    )
