"""The scenario fleet: cell runners behind the experiment grids.

Three stress scenarios beyond the paper's steady-state random walk,
each exposed as a grid axis value so one xpfile sweeps them:

* **egress** — stadium-egress / evacuation surge: mass *correlated*
  movement toward the exit hallways (a
  :class:`~repro.objects.generator.DirectedMovementStream`), door
  closures mid-surge (``CloseDoor`` through the monitor, forcing
  reroutes), and per-exit :class:`~repro.api.specs.OccupancySpec`
  watches raising crowding alerts;
* **campus** — multi-building venues 10-100x the single mall
  (:func:`build_campus` composes malls with walkway hallways) under
  the standard random walk;
* **diurnal** — a day-shaped load curve: batch sizes swell from
  trough to peak and back following a sinusoid, so throughput is
  measured under load *variation*, not just steady state.

Also here: the ``serving`` runner (one worker-scaling variant per
cell — the grid-native port of ``bench_serving``'s hand-rolled
variant loop) and the generic ``stream`` runner (objects x update
rate x shards x query mix).

Every runner takes ``(params, ctx)`` and returns a flat JSON dict;
``updates_per_sec`` / ``deltas_per_sec`` are common to all so tables
can pivot any mix of cells.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any

from repro.api.specs import KNNSpec, RangeSpec
from repro.bench.grid import CellContext, register_cell_runner
from repro.bench.workloads import (
    ScaleProfile,
    StreamScenario,
    WorkloadFactory,
    active_profile,
)
from repro.errors import ReproError
from repro.index.composite import CompositeIndex
from repro.objects.generator import (
    DirectedMovementStream,
    MovementStream,
    ObjectGenerator,
)
from repro.queries.monitor import QueryMonitor
from repro.space.builder import SpaceBuilder
from repro.space.events import CloseDoor
from repro.space.floorplan import IndoorSpace
from repro.space.mall import MallParameters, add_mall

#: CI-smoke scale (``--quick``): the smallest venue the generators
#: accept with staircases and a middle hallway band.
QUICK = ScaleProfile(
    name="quick",
    floors_grid=(1, 2),
    default_floors=1,
    objects_grid=(20, 40),
    default_objects=20,
    radii_grid=(2.0,),
    default_radius=2.0,
    ranges_grid=(20.0,),
    default_range=20.0,
    k_grid=(3,),
    default_k=3,
    n_instances=5,
    n_queries=4,
    bands=2,
    rooms_per_band_side=2,
    floor_size=80.0,
    hallway_width=4.0,
    stair_size=10.0,
)


def scenario_profile(ctx: CellContext) -> ScaleProfile:
    """``--quick`` pins the CI-smoke profile; otherwise the usual
    ``REPRO_BENCH_SCALE`` selection applies."""
    return QUICK if ctx.quick else active_profile()


# ---------------------------------------------------------------------
# campus composition
# ---------------------------------------------------------------------


def build_campus(
    buildings: int,
    floors: int | None = None,
    profile: ScaleProfile | None = None,
    gap: float | None = None,
    seed: int | None = None,
) -> IndoorSpace:
    """A row of malls joined by ground-floor walkway hallways.

    Each building is one :func:`~repro.space.mall.add_mall` with its
    own origin and ``b<n>_`` id prefix; consecutive buildings are
    bridged by a walkway hallway spanning the gap at the height of a
    *middle* hallway band (the end bands are shortened for staircases
    when ``floors > 1``, so they don't reach the outer walls).  With
    the paper-scale profile this composes venues 10-100x the single
    mall of Section V-A.
    """
    p = profile or active_profile()
    floors = floors or p.default_floors
    if buildings < 1:
        raise ReproError("campus needs at least one building")
    if floors > 1 and p.bands < 2:
        raise ReproError(
            "multi-floor campus needs bands >= 2 (the end hallway "
            "bands are shortened for staircases and cannot host "
            "walkways)"
        )
    gap = 2.0 * p.hallway_width if gap is None else gap
    if gap <= 0:
        raise ReproError("building gap must be positive")
    pitch = p.floor_size + gap
    builder = SpaceBuilder()
    for b in range(buildings):
        add_mall(
            builder,
            MallParameters(
                floors=floors,
                bands=p.bands,
                rooms_per_band_side=p.rooms_per_band_side,
                floor_size=p.floor_size,
                hallway_width=p.hallway_width,
                stair_size=p.stair_size,
                seed=seed,
                origin_x=b * pitch,
                id_prefix=f"b{b}_",
            ),
        )
    band = max(1, p.bands // 2) if floors > 1 else p.bands // 2
    strip = (p.floor_size - (p.bands + 1) * p.hallway_width) / p.bands
    y0 = band * (p.hallway_width + strip)
    from repro.geometry.rect import Rect

    for b in range(buildings - 1):
        x0 = b * pitch + p.floor_size
        wid = f"walk{b}"
        builder.add_hallway(
            wid, Rect(x0, y0, x0 + gap, y0 + p.hallway_width), 0
        )
        builder.connect(wid, f"b{b}_f0_hall{band}", floor=0)
        builder.connect(wid, f"b{b + 1}_f0_hall{band}", floor=0)
    return builder.build(validate=True)


def egress_targets(space: IndoorSpace) -> list[str]:
    """The exit hallways of a venue: every building's ground-floor
    bottom hallway (id ``[prefix]f0_hall0``)."""
    targets = sorted(
        pid for pid in space.partitions if pid.endswith("f0_hall0")
    )
    if not targets:
        raise ReproError("venue has no ground-floor exit hallways")
    return targets


# ---------------------------------------------------------------------
# shared driving loop
# ---------------------------------------------------------------------


def _drive(
    monitor, stream: MovementStream, n_batches: int, batch_size: int
) -> dict[str, Any]:
    """Absorb ``n_batches`` and aggregate throughput; generation time
    is excluded (it models the positioning system, not the monitor)."""
    seen0 = monitor.stats.updates_seen
    elapsed = 0.0
    deltas = 0
    for _ in range(n_batches):
        batch = stream.next_moves(batch_size)
        t0 = time.perf_counter()
        out = monitor.apply_moves(batch)
        elapsed += time.perf_counter() - t0
        deltas += len(out)
    stats = monitor.stats  # re-read: sharded stats are a snapshot
    updates = stats.updates_seen - seen0
    return {
        "updates": updates,
        "deltas": deltas,
        "elapsed_s": elapsed,
        "updates_per_sec": updates / elapsed if elapsed else 0.0,
        "deltas_per_sec": deltas / elapsed if elapsed else 0.0,
        "pairs_evaluated": stats.pairs_evaluated,
        "pairs_skipped": stats.pairs_skipped,
        "kernel_pairs": stats.kernel_pairs,
        "kernel_pruned": stats.kernel_pruned,
        "kernel_fallbacks": stats.kernel_fallbacks,
    }


def _merge(*parts: dict[str, Any], **extra: Any) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for part in parts:
        out.update(part)
    out.update(extra)
    return out


# ---------------------------------------------------------------------
# generic runners
# ---------------------------------------------------------------------


@register_cell_runner("stream")
def run_stream_cell(params: dict, ctx: CellContext) -> dict:
    """Generic continuous-monitoring cell: objects x update rate x
    shards x workers x backend x query mix, each an optional param
    with profile defaults."""
    profile = scenario_profile(ctx)
    factory = WorkloadFactory(profile, seed=ctx.seed)
    repeat = int(params.get("repeat", 1))
    timings: list[dict] = []
    result: dict[str, Any] = {}
    for _ in range(max(1, repeat)):
        scenario = factory.stream_scenario(
            n_irq=int(params.get("n_irq", 2)),
            n_iknn=int(params.get("n_iknn", 1)),
            n_iprq=int(params.get("n_iprq", 0)),
            floors=params.get("floors"),
            n_objects=params.get("objects"),
            n_shards=params.get("shards"),
            workers=int(params.get("workers", 1)),
            backend=str(params.get("backend", "thread")),
            kernel=str(params.get("kernel", "scalar")),
            seed=ctx.seed,
        )
        try:
            result = _drive(
                scenario.monitor,
                scenario.stream,
                int(params.get("batches", 4)),
                int(params.get("batch_size", 10)),
            )
        finally:
            _close(scenario)
        timings.append(result)
        ctx.log(f"pass: {result['updates_per_sec']:.0f} upd/s")
    # Surface the repeat structure the way `time_call` does: min/mean
    # of the measured wall-clock, plus the count.
    samples = [t["elapsed_s"] for t in timings]
    return _merge(
        timings[-1],
        timing={
            "min_s": min(samples),
            "mean_s": sum(samples) / len(samples),
            "repeat": len(samples),
        },
    )


def _close(scenario: StreamScenario) -> None:
    close = getattr(scenario.monitor, "close", None)
    if close is not None:
        close()


@register_cell_runner("serving")
def run_serving_cell(params: dict, ctx: CellContext) -> dict:
    """One worker-scaling variant per cell — the grid-native version
    of ``bench_serving``'s ``FULL_VARIANTS`` loop.  ``workers=1`` with
    the thread backend is the serial sharded baseline the table's
    speedup column divides by."""
    profile = scenario_profile(ctx)
    factory = WorkloadFactory(profile, seed=ctx.seed)
    scenario = factory.stream_scenario(
        n_irq=int(params.get("n_irq", 4)),
        n_iknn=int(params.get("n_iknn", 2)),
        n_shards=int(params.get("n_shards", 4)),
        workers=int(params["workers"]),
        backend=str(params["backend"]),
        kernel=str(params.get("kernel", "scalar")),
        seed=ctx.seed,
    )
    try:
        result = _drive(
            scenario.monitor,
            scenario.stream,
            int(params.get("batches", 4)),
            int(params.get("batch_size", 10)),
        )
    finally:
        _close(scenario)
    ctx.log(
        f"{params['workers']}x{params['backend']}: "
        f"{result['updates_per_sec']:.0f} upd/s"
    )
    return result


# ---------------------------------------------------------------------
# the scenario runner
# ---------------------------------------------------------------------


@register_cell_runner("scenario")
def run_scenario_cell(params: dict, ctx: CellContext) -> dict:
    """Dispatch on ``params['scenario']`` so a grid can sweep the
    fleet as one axis."""
    kind = params.get("scenario")
    runners = {
        "egress": _run_egress,
        "campus": _run_campus,
        "diurnal": _run_diurnal,
    }
    try:
        fn = runners[kind]
    except KeyError:
        raise ReproError(
            f"unknown scenario {kind!r}; choose from {sorted(runners)}"
        ) from None
    return fn(params, ctx)


def _run_egress(params: dict, ctx: CellContext) -> dict:
    """Evacuation surge: random warmup, then a directed crowd pushing
    toward the exits while doors close under it."""
    profile = scenario_profile(ctx)
    # Fresh factory per cell: the egress churn closes doors on the
    # factory's space, which must not leak into other cells.
    factory = WorkloadFactory(profile, seed=ctx.seed)
    scenario = factory.stream_scenario(
        n_irq=1,
        n_iknn=1,
        n_objects=params.get("objects"),
        n_shards=params.get("shards"),
        seed=ctx.seed,
    )
    monitor = scenario.monitor
    space = factory.space()
    targets = egress_targets(space)
    threshold = int(params.get("threshold", 2))
    from repro.api.specs import OccupancySpec

    occ_ids = [
        monitor.register(OccupancySpec(pid, threshold))
        for pid in targets
    ]
    batches = int(params.get("batches", 4))
    batch_size = int(params.get("batch_size", 10))

    warmup = _drive(monitor, scenario.stream, batches, batch_size)
    ctx.log(f"warmup: {warmup['updates_per_sec']:.0f} upd/s")

    surge_stream = DirectedMovementStream(
        space,
        scenario.index.population,
        scenario.stream.generator,
        hop_probability=1.0,
        seed=ctx.seed + 101,
        targets=tuple(targets),
        compliance=float(params.get("compliance", 0.9)),
    )
    surge_a = _drive(monitor, surge_stream, batches, batch_size)

    # Mid-surge door closures: shut doors of the first exit hallway
    # (deterministic pick), forcing the BFS router to re-plan.
    closed: list[str] = []
    doors = sorted(
        (d.door_id for d in space.doors_of(targets[0]) if d.is_open),
    )
    for door_id in doors[: int(params.get("close_doors", 1))]:
        monitor.apply_event(CloseDoor(door_id))
        closed.append(door_id)
    ctx.log(f"closed doors: {closed}")

    surge_b = _drive(monitor, surge_stream, batches, batch_size)
    surge = {
        k: surge_a[k] + surge_b[k]
        for k in ("updates", "deltas", "elapsed_s")
    }
    alerts = _alert_count(monitor, occ_ids)
    occupancy = _occupancy_snapshot(monitor, occ_ids)
    _close(scenario)
    return {
        "updates": warmup["updates"] + surge["updates"],
        "deltas": warmup["deltas"] + surge["deltas"],
        "elapsed_s": warmup["elapsed_s"] + surge["elapsed_s"],
        "updates_per_sec": _rate(
            warmup["updates"] + surge["updates"],
            warmup["elapsed_s"] + surge["elapsed_s"],
        ),
        "deltas_per_sec": _rate(
            warmup["deltas"] + surge["deltas"],
            warmup["elapsed_s"] + surge["elapsed_s"],
        ),
        "surge_updates_per_sec": _rate(
            surge["updates"], surge["elapsed_s"]
        ),
        "exits": len(targets),
        "doors_closed": len(closed),
        "occupancy_alerts": alerts,
        "exit_occupancy": occupancy,
    }


def _rate(n: int, s: float) -> float:
    return n / s if s else 0.0


def _alert_count(monitor, occ_ids: list[str]) -> int:
    """How many exit watches currently publish a crowding alert."""
    return sum(
        1 for qid in occ_ids if monitor.result_distances(qid)
    )


def _occupancy_snapshot(monitor, occ_ids: list[str]) -> int:
    """Total population the alerting exit watches currently report."""
    from repro.queries.maintainers import OCCUPANCY_KEY

    total = 0
    for qid in occ_ids:
        result = monitor.result_distances(qid)
        total += int(result.get(OCCUPANCY_KEY, 0.0))
    return total


def _run_campus(params: dict, ctx: CellContext) -> dict:
    """The standard random walk over a multi-building campus."""
    profile = scenario_profile(ctx)
    buildings = int(params.get("buildings", 2))
    floors = int(params.get("floors", profile.default_floors))
    space = build_campus(
        buildings, floors=floors, profile=profile, seed=ctx.seed
    )
    gen = ObjectGenerator(
        space,
        radius=profile.default_radius,
        n_instances=profile.n_instances,
        seed=ctx.seed + 4242,
        id_prefix="s",
    )
    # Objects scale with the venue unless pinned: same density as one
    # building's default population.
    objects = int(
        params.get("objects", profile.default_objects * buildings)
    )
    population = gen.generate(objects)
    index = CompositeIndex.build(space, population, fanout=profile.fanout)
    monitor = QueryMonitor(index)
    rng = random.Random(ctx.seed + 17)
    n_irq = int(params.get("n_irq", 2))
    n_iknn = int(params.get("n_iknn", 1))
    points = [space.random_point(rng=rng) for _ in range(n_irq + n_iknn)]
    for q in points[:n_irq]:
        monitor.register(RangeSpec(q, profile.default_range))
    for q in points[n_irq:]:
        monitor.register(KNNSpec(q, profile.default_k))
    stream = MovementStream(space, population, gen, seed=ctx.seed + 7)
    result = _drive(
        monitor,
        stream,
        int(params.get("batches", 4)),
        int(params.get("batch_size", 10)),
    )
    ctx.log(
        f"{buildings} buildings, {len(space.partitions)} partitions: "
        f"{result['updates_per_sec']:.0f} upd/s"
    )
    return _merge(
        result,
        buildings=buildings,
        partitions=len(space.partitions),
        objects=objects,
    )


def _run_diurnal(params: dict, ctx: CellContext) -> dict:
    """A day of load: per-hour batch sizes follow a trough-to-peak
    sinusoid, so the cell reports throughput under swelling and
    ebbing update rates (plus the hourly series for plotting)."""
    profile = scenario_profile(ctx)
    factory = WorkloadFactory(profile, seed=ctx.seed)
    scenario = factory.stream_scenario(
        n_irq=int(params.get("n_irq", 2)),
        n_iknn=int(params.get("n_iknn", 1)),
        n_objects=params.get("objects"),
        n_shards=params.get("shards"),
        seed=ctx.seed,
    )
    hours = int(params.get("hours", 8))
    trough = int(params.get("trough_batch", 4))
    peak = int(params.get("peak_batch", 20))
    batches_per_hour = int(params.get("batches_per_hour", 2))
    hourly: list[dict[str, Any]] = []
    totals = {"updates": 0, "deltas": 0, "elapsed_s": 0.0}
    for hour in range(hours):
        # 0 at midnight and midday's mirror, 1 at the single peak.
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * hour / hours))
        size = trough + round((peak - trough) * phase)
        r = _drive(
            scenario.monitor, scenario.stream, batches_per_hour, size
        )
        hourly.append(
            {
                "hour": hour,
                "batch_size": size,
                "updates_per_sec": r["updates_per_sec"],
            }
        )
        for key in totals:
            totals[key] += r[key]
    _close(scenario)
    ctx.log(
        f"{hours}h curve, batch {trough}..{peak}: "
        f"{_rate(totals['updates'], totals['elapsed_s']):.0f} upd/s"
    )
    return {
        "updates": totals["updates"],
        "deltas": totals["deltas"],
        "elapsed_s": totals["elapsed_s"],
        "updates_per_sec": _rate(
            totals["updates"], totals["elapsed_s"]
        ),
        "deltas_per_sec": _rate(totals["deltas"], totals["elapsed_s"]),
        "hours": hours,
        "hourly": hourly,
    }
