"""Benchmark harness regenerating the paper's evaluation (Section V).

Every panel of Figures 12-15 has an experiment function in
:mod:`repro.bench.figures`; workload construction (the paper's
parameter grid, scaled to the active profile) lives in
:mod:`repro.bench.workloads`; measurement and the paper-style series
printer in :mod:`repro.bench.runner` / :mod:`repro.bench.reporting`.

Profiles (select with ``REPRO_BENCH_SCALE``):

* ``small`` (default) — minutes on a laptop; trends hold.
* ``medium`` — closer to the paper's grid, tens of minutes.
* ``paper`` — the paper's exact parameters (10-30 floors, 10K-30K
  objects, 100 instances); hours in pure Python.
"""

from repro.bench.workloads import ScaleProfile, WorkloadFactory, active_profile
from repro.bench.runner import ExperimentResult, run_queries
from repro.bench.reporting import format_series, print_series
from repro.bench import figures

__all__ = [
    "ScaleProfile",
    "WorkloadFactory",
    "active_profile",
    "ExperimentResult",
    "run_queries",
    "format_series",
    "print_series",
    "figures",
]
