"""Workload construction for the benchmark harness.

The paper's grid (Section V-A, defaults bolded there):

* building: 600 m x 600 m x 4 m floors, 100 rooms + 4 staircases per
  floor; 10 / **20** / 30 floors (~1K / 2K / 3K partitions);
* objects: 10K / **20K** / 30K, uncertainty radii 5 / **10** / 15 m
  (the paper's Figure 12(c) x-axis shows diameters 10 / 20 / 30),
  100 Gaussian instances each;
* queries: 50 random query points; iRQ ranges 50 / **100** / 150 m;
  ikNNQ k = 50 / **100** / 150; fanout 20.

Scaled profiles shrink every axis proportionally so the harness runs in
minutes in pure Python while preserving the *shape* of each figure.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.api.specs import KNNSpec, ProbRangeSpec, RangeSpec
from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.objects.generator import MovementStream, ObjectGenerator
from repro.objects.population import ObjectPopulation
from repro.queries.monitor import MonitorStats, QueryMonitor
from repro.queries.shard import ShardedMonitor
from repro.space.floorplan import IndoorSpace
from repro.space.mall import build_mall


@dataclass(frozen=True)
class ScaleProfile:
    """One benchmark scale: the swept axes of the paper's grid."""

    name: str
    floors_grid: tuple[int, ...]      # partition sweep (Figs 12d/13d/15b/15d)
    default_floors: int
    objects_grid: tuple[int, ...]     # |O| sweep (Figs 12a/13a/14)
    default_objects: int
    radii_grid: tuple[float, ...]     # uncertainty sweep (Figs 12c/13c)
    default_radius: float
    ranges_grid: tuple[float, ...]    # iRQ r sweep
    default_range: float
    k_grid: tuple[int, ...]           # ikNNQ k sweep
    default_k: int
    n_instances: int
    n_queries: int
    bands: int
    rooms_per_band_side: int
    floor_size: float
    hallway_width: float
    stair_size: float
    fanout: int = 20
    seed: int = 2013  # the paper's year; fixed for reproducibility


SMALL = ScaleProfile(
    name="small",
    floors_grid=(1, 2, 3),
    default_floors=2,
    objects_grid=(300, 600, 900),
    default_objects=600,
    radii_grid=(2.5, 5.0, 7.5),
    default_radius=5.0,
    ranges_grid=(25.0, 50.0, 75.0),
    default_range=50.0,
    k_grid=(10, 20, 30),
    default_k=20,
    n_instances=20,
    n_queries=5,
    bands=3,
    rooms_per_band_side=5,
    floor_size=300.0,
    hallway_width=5.0,
    stair_size=15.0,
)

MEDIUM = ScaleProfile(
    name="medium",
    floors_grid=(2, 4, 6),
    default_floors=4,
    objects_grid=(1000, 2000, 3000),
    default_objects=2000,
    radii_grid=(5.0, 10.0, 15.0),
    default_radius=10.0,
    ranges_grid=(50.0, 100.0, 150.0),
    default_range=100.0,
    k_grid=(25, 50, 75),
    default_k=50,
    n_instances=50,
    n_queries=10,
    bands=5,
    rooms_per_band_side=10,
    floor_size=600.0,
    hallway_width=6.0,
    stair_size=20.0,
)

PAPER = ScaleProfile(
    name="paper",
    floors_grid=(10, 20, 30),
    default_floors=20,
    objects_grid=(10_000, 20_000, 30_000),
    default_objects=20_000,
    radii_grid=(5.0, 10.0, 15.0),
    default_radius=10.0,
    ranges_grid=(50.0, 100.0, 150.0),
    default_range=100.0,
    k_grid=(50, 100, 150),
    default_k=100,
    n_instances=100,
    n_queries=50,
    bands=5,
    rooms_per_band_side=10,
    floor_size=600.0,
    hallway_width=6.0,
    stair_size=20.0,
)

_PROFILES = {p.name: p for p in (SMALL, MEDIUM, PAPER)}


def active_profile() -> ScaleProfile:
    """The profile selected by ``REPRO_BENCH_SCALE`` (default small)."""
    name = os.environ.get("REPRO_BENCH_SCALE", "small").lower()
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_BENCH_SCALE={name!r}; "
            f"choose from {sorted(_PROFILES)}"
        ) from None


class WorkloadFactory:
    """Builds and caches spaces, populations, indexes and query points.

    Construction dominates benchmark wall-clock, so everything is memoised
    by its parameter tuple.
    """

    def __init__(
        self,
        profile: ScaleProfile | None = None,
        seed: int | None = None,
    ) -> None:
        self.profile = profile or active_profile()
        #: The single base seed every derived stream of randomness
        #: (space layout, population, query points, movement) hangs off
        #: — profile default unless the caller pins one (the grid
        #: runner records it in each cell's ``params.json``, so a cell
        #: is reproducible from that file alone).
        self.seed = self.profile.seed if seed is None else int(seed)
        self._spaces: dict[int, IndoorSpace] = {}
        self._populations: dict[tuple[int, int, float], ObjectPopulation] = {}
        self._indexes: dict[tuple[int, int, float], CompositeIndex] = {}

    # ------------------------------------------------------------------

    def space(self, floors: int | None = None) -> IndoorSpace:
        p = self.profile
        floors = floors or p.default_floors
        if floors not in self._spaces:
            self._spaces[floors] = build_mall(
                floors=floors,
                bands=p.bands,
                rooms_per_band_side=p.rooms_per_band_side,
                floor_size=p.floor_size,
                hallway_width=p.hallway_width,
                stair_size=p.stair_size,
                seed=self.seed,
            )
        return self._spaces[floors]

    def population(
        self,
        floors: int | None = None,
        n_objects: int | None = None,
        radius: float | None = None,
    ) -> ObjectPopulation:
        p = self.profile
        key = (
            floors or p.default_floors,
            n_objects or p.default_objects,
            radius or p.default_radius,
        )
        if key not in self._populations:
            space = self.space(key[0])
            gen = ObjectGenerator(
                space,
                radius=key[2],
                n_instances=p.n_instances,
                seed=self.seed + key[1],
            )
            self._populations[key] = gen.generate(key[1])
        return self._populations[key]

    def index(
        self,
        floors: int | None = None,
        n_objects: int | None = None,
        radius: float | None = None,
    ) -> CompositeIndex:
        p = self.profile
        key = (
            floors or p.default_floors,
            n_objects or p.default_objects,
            radius or p.default_radius,
        )
        if key not in self._indexes:
            self._indexes[key] = CompositeIndex.build(
                self.space(key[0]),
                self.population(*key),
                fanout=p.fanout,
            )
        return self._indexes[key]

    def query_points(
        self, floors: int | None = None, n: int | None = None
    ) -> list[Point]:
        p = self.profile
        space = self.space(floors)
        rng = random.Random(self.seed + 17)
        return [
            space.random_point(rng=rng) for _ in range(n or p.n_queries)
        ]

    # ------------------------------------------------------------------
    # streaming (continuous-monitoring) workloads
    # ------------------------------------------------------------------

    def stream_scenario(
        self,
        n_irq: int = 4,
        n_iknn: int = 2,
        n_iprq: int = 0,
        floors: int | None = None,
        n_objects: int | None = None,
        radius: float | None = None,
        hop_probability: float = 0.5,
        n_shards: int | None = None,
        query_range: float | None = None,
        k: int | None = None,
        p_min: float = 0.5,
        workers: int = 1,
        bucketed_router: bool = True,
        backend: str = "thread",
        kernel: str = "scalar",
        seed: int | None = None,
    ) -> "StreamScenario":
        """A continuous-monitoring scenario: standing queries + stream.

        Streaming *mutates* the population, so this builds a dedicated
        population and index (never the factory's cached ones — those
        must stay pristine for the one-shot benchmarks).  The space is
        shared read-only; streaming scenarios must not apply topology
        events to it.

        ``n_shards`` selects a :class:`ShardedMonitor` front-end instead
        of a single :class:`QueryMonitor` (``bench_serving`` compares
        the two over identical streams); ``workers``,
        ``bucketed_router`` and ``backend`` pass through to it
        (parallel ingest / router-tightening ablation /
        ``"process"`` shard workers that escape the GIL).  ``kernel``
        selects the distance-bounds path — ``"scalar"`` per-pair math
        or the batched ``"vector"`` numpy kernel
        (:mod:`repro.distances.batch`), results bit-identical either
        way.  ``n_iprq`` mixes standing
        probabilistic-threshold range queries (iPRQ, threshold
        ``p_min``, range = the profile's default range) into the
        workload — the ``--prob`` serving variant.  ``seed`` overrides
        the factory's base seed for this scenario's population and
        movement stream only (the shared space keeps the factory
        seed — grid cells vary workloads without rebuilding venues).
        """
        p = self.profile
        space = self.space(floors)
        radius = radius or p.default_radius
        base_seed = self.seed if seed is None else int(seed)
        gen = ObjectGenerator(
            space,
            radius=radius,
            n_instances=p.n_instances,
            seed=base_seed + 4242,
            id_prefix="s",
        )
        population = gen.generate(n_objects or p.default_objects)
        index = CompositeIndex.build(space, population, fanout=p.fanout)
        stream = MovementStream(
            space, population, gen,
            hop_probability=hop_probability, seed=base_seed + 7,
        )
        if n_shards is None:
            monitor: QueryMonitor | ShardedMonitor = QueryMonitor(
                index, kernel=kernel
            )
        else:
            monitor = ShardedMonitor(
                index,
                n_shards=n_shards,
                workers=workers,
                bucketed_router=bucketed_router,
                backend=backend,
                kernel=kernel,
            )
        if query_range is None:
            query_range = p.default_range
        if k is None:
            k = p.default_k
        points = self.query_points(floors, n=n_irq + n_iknn + n_iprq)
        irq_ids = [
            monitor.register(RangeSpec(q, query_range))
            for q in points[:n_irq]
        ]
        knn_ids = [
            monitor.register(KNNSpec(q, k))
            for q in points[n_irq:n_irq + n_iknn]
        ]
        iprq_ids = [
            monitor.register(ProbRangeSpec(q, query_range, p_min))
            for q in points[n_irq + n_iknn:]
        ]
        return StreamScenario(
            index, monitor, stream, irq_ids, knn_ids, iprq_ids
        )


@dataclass
class StreamScenario:
    """One continuous-monitoring setup: a dedicated mutable index, the
    monitor (single or sharded) with its standing queries, and the
    movement stream."""

    index: CompositeIndex
    monitor: QueryMonitor | ShardedMonitor
    stream: MovementStream
    irq_ids: list[str]
    knn_ids: list[str]
    iprq_ids: list[str] = field(default_factory=list)

    @property
    def query_ids(self) -> list[str]:
        """Every standing query id, in registration order."""
        return self.irq_ids + self.knn_ids + self.iprq_ids

    def absorb_batch(self, batch_size: int) -> float:
        """Generate and absorb one batch; returns absorb seconds (the
        generation cost is excluded — it models the positioning system,
        not the monitor)."""
        batch = self.stream.next_moves(batch_size)
        t0 = time.perf_counter()
        self.monitor.apply_moves(batch)
        return time.perf_counter() - t0

    def reexecute_all(self) -> float:
        """Seconds to re-run every standing query from scratch — the
        per-batch cost a non-incremental monitor would pay."""
        from repro.queries.knn import ikNNQ
        from repro.queries.prob_range import iPRQ
        from repro.queries.range_query import iRQ

        specs = [
            self.monitor.query_spec(qid) for qid in self.query_ids
        ]
        t0 = time.perf_counter()
        for spec in specs:
            if isinstance(spec, RangeSpec):
                iRQ(spec.q, spec.r, self.index)
            elif isinstance(spec, KNNSpec):
                ikNNQ(spec.q, spec.k, self.index)
            else:
                iPRQ(spec.q, spec.r, spec.p_min, self.index)
        return time.perf_counter() - t0


@dataclass
class StreamReport:
    """Aggregate outcome of a streamed run (see ``bench_stream``)."""

    updates: int
    elapsed_s: float
    stats: MonitorStats

    @property
    def updates_per_sec(self) -> float:
        return self.updates / self.elapsed_s if self.elapsed_s else 0.0


def run_stream(
    scenario: StreamScenario, n_batches: int, batch_size: int
) -> StreamReport:
    """Drive a scenario for ``n_batches`` and aggregate throughput.

    ``updates`` counts the moves actually absorbed (the stream clamps a
    batch to the population size), not the nominal product."""
    seen_before = scenario.monitor.stats.updates_seen
    elapsed = 0.0
    for _ in range(n_batches):
        elapsed += scenario.absorb_batch(batch_size)
    # Re-read after the loop: a ShardedMonitor's `stats` is a computed
    # aggregate snapshot, not a live counter object.
    stats = scenario.monitor.stats
    return StreamReport(
        updates=stats.updates_seen - seen_before,
        elapsed_s=elapsed,
        stats=stats,
    )
