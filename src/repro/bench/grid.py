"""Declarative experiment grids — compose, resume, compare.

The benchmark scripts each hand-roll one sweep; this subsystem makes
sweeps *data*.  An :class:`ExperimentGrid` declares named parameter
axes (objects x update rate x shards x workers x backend x query mix x
scenario ...) plus constraints that prune invalid cells; a
:class:`GridRunner` materialises one output directory per surviving
cell (``params.json`` + ``result.json`` + ``log.txt``), skipping cells
whose results already exist and verify — so a killed sweep, rerun with
the same arguments, resumes exactly where it stopped (gridxp's
``--update`` semantics) and a corrupted ``result.json`` is detected by
its digest and recomputed.  A reporting layer pivots the cell results
into the same ASCII tables the existing ``benchmarks/tables/*.txt``
files use (and CSV for anything downstream).

Grids are written as *xpfiles* — small Python files evaluated in a
scope exposing the declaration DSL::

    name("serving_worker_scaling")
    runner("serving")                       # a registered cell runner
    param("workers", "w{}", [1, 2, 4])      # one axis
    param("backend", "{}", ["thread", "process"])
    fixed("n_shards", 4)                    # constant, not swept
    constraint(lambda p: p["workers"] > 1 or p["backend"] == "thread")
    def _table(cells): ...
    table(_table)                           # cells -> ExperimentResult

Cell runners are plain callables registered with
:func:`register_cell_runner`; the built-in fleet lives in
:mod:`repro.bench.scenarios`.  Run a grid with
``python -m repro.bench grid <xpfile>``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.bench.runner import ExperimentResult
from repro.errors import ReproError

#: Version stamped into every ``result.json``; bump on layout changes
#: (older cells then recompute instead of being misread).
CELL_RESULT_VERSION = 1


class GridError(ReproError):
    """Malformed grid declaration or cell store."""


# ---------------------------------------------------------------------
# declaration
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Axis:
    """One swept parameter: a name, a directory-fragment format and a
    finite ordered domain (``fmt.format(value)`` names the cell's
    directory fragment, gridxp-style)."""

    name: str
    fmt: str
    values: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise GridError("axis needs a name")
        if not self.values:
            raise GridError(f"axis {self.name!r} has an empty domain")
        if len(set(map(repr, self.values))) != len(self.values):
            raise GridError(f"axis {self.name!r} has duplicate values")
        try:
            self.fmt.format(self.values[0])
        except (IndexError, KeyError) as exc:
            raise GridError(
                f"axis {self.name!r}: bad fmt {self.fmt!r}"
            ) from exc


@dataclass(frozen=True)
class GridCell:
    """One point of the swept product: its parameters (axis values +
    fixed values) and its stable directory id."""

    cell_id: str
    params: dict[str, Any]


class ExperimentGrid:
    """A named cartesian product of axes, pruned by constraints.

    ``runner`` names a registered cell runner (see
    :func:`register_cell_runner`); ``fixed`` carries constants every
    cell shares (recorded in each cell's ``params.json`` but not part
    of the directory id); ``tables`` are callables pivoting the cell
    results into :class:`~repro.bench.runner.ExperimentResult` panels.
    """

    def __init__(
        self,
        name: str,
        runner: str,
        axes: Sequence[Axis],
        constraints: Sequence[Callable[[dict[str, Any]], bool]] = (),
        fixed: dict[str, Any] | None = None,
        tables: Sequence[
            Callable[[list[tuple[dict, dict]]], Any]
        ] = (),
    ) -> None:
        if not name:
            raise GridError("grid needs a name")
        if not axes:
            raise GridError(f"grid {name!r} declares no axes")
        seen: set[str] = set()
        for axis in axes:
            if axis.name in seen:
                raise GridError(f"duplicate axis {axis.name!r}")
            seen.add(axis.name)
        overlap = seen & set(fixed or ())
        if overlap:
            raise GridError(
                f"fixed parameter(s) {sorted(overlap)} shadow axes"
            )
        self.name = name
        self.runner = runner
        self.axes = tuple(axes)
        self.constraints = tuple(constraints)
        self.fixed = dict(fixed or {})
        self.tables = tuple(tables)

    def cells(self) -> list[GridCell]:
        """Every surviving cell, in deterministic product order (first
        axis slowest — declaration order is sweep order)."""
        out = []
        for combo in itertools.product(*(a.values for a in self.axes)):
            params = dict(self.fixed)
            params.update(
                {a.name: v for a, v in zip(self.axes, combo)}
            )
            if all(c(params) for c in self.constraints):
                out.append(GridCell(self._cell_id(combo), params))
        if not out:
            raise GridError(
                f"grid {self.name!r}: constraints pruned every cell"
            )
        return out

    def _cell_id(self, combo: tuple[Any, ...]) -> str:
        return "_".join(
            a.fmt.format(v) for a, v in zip(self.axes, combo)
        )


# ---------------------------------------------------------------------
# xpfile loading
# ---------------------------------------------------------------------


def load_xpfile(path: str | Path) -> ExperimentGrid:
    """Evaluate an xpfile into an :class:`ExperimentGrid`.

    The file is Python, executed with the declaration DSL in scope
    (``name`` / ``runner`` / ``param`` / ``fixed`` / ``constraint`` /
    ``table``); anything else it defines (helper functions for table
    pivots, say) stays local to the file.
    """
    path = Path(path)
    decl: dict[str, Any] = {
        "name": path.stem,
        "runner": None,
        "axes": [],
        "constraints": [],
        "fixed": {},
        "tables": [],
    }

    def _name(value: str) -> None:
        decl["name"] = str(value)

    def _runner(value: str) -> None:
        decl["runner"] = str(value)

    def _param(name: str, fmt: str, values: Iterable[Any]) -> None:
        decl["axes"].append(Axis(name, fmt, tuple(values)))

    def _fixed(name: str, value: Any) -> None:
        decl["fixed"][name] = value

    def _constraint(fn: Callable[[dict], bool]) -> None:
        decl["constraints"].append(fn)

    def _table(fn: Callable[[list[tuple[dict, dict]]], Any]) -> None:
        decl["tables"].append(fn)

    scope = {
        "name": _name,
        "runner": _runner,
        "param": _param,
        "fixed": _fixed,
        "constraint": _constraint,
        "table": _table,
        "series_table": series_table,
        "ExperimentResult": ExperimentResult,
    }
    try:
        code = compile(path.read_text(), str(path), "exec")
    except (OSError, SyntaxError) as exc:
        raise GridError(f"cannot load xpfile {path}: {exc}") from exc
    exec(code, scope)
    if not decl["runner"]:
        raise GridError(f"xpfile {path} never calls runner(...)")
    return ExperimentGrid(
        name=decl["name"],
        runner=decl["runner"],
        axes=decl["axes"],
        constraints=decl["constraints"],
        fixed=decl["fixed"],
        tables=decl["tables"],
    )


# ---------------------------------------------------------------------
# cell runners
# ---------------------------------------------------------------------


@dataclass
class CellContext:
    """What a cell runner gets besides its parameters."""

    #: Shrunken workloads for CI smoke runs (``--quick``).
    quick: bool
    #: Base seed: with the cell params, fully determines the workload.
    seed: int
    #: The cell's output directory (runners may drop extra artifacts).
    cell_dir: Path
    #: Line logger into the cell's ``log.txt`` (also echoed when the
    #: runner is verbose).
    log: Callable[[str], None]


#: runner name -> callable(params, ctx) -> JSON-serializable result.
_CELL_RUNNERS: dict[str, Callable[[dict, CellContext], dict]] = {}


def register_cell_runner(
    name: str,
) -> Callable[[Callable[[dict, CellContext], dict]], Callable]:
    """Register a cell runner under ``name`` (xpfiles reference it via
    ``runner(name)``)."""

    def bind(fn: Callable[[dict, CellContext], dict]) -> Callable:
        if name in _CELL_RUNNERS:
            raise GridError(f"cell runner {name!r} already registered")
        _CELL_RUNNERS[name] = fn
        return fn

    return bind


def cell_runner(name: str) -> Callable[[dict, CellContext], dict]:
    # The built-in fleet registers on import; importing here keeps
    # `from repro.bench.grid import ...` cheap for non-runner users.
    import repro.bench.scenarios  # noqa: F401

    try:
        return _CELL_RUNNERS[name]
    except KeyError:
        raise GridError(
            f"unknown cell runner {name!r}; registered: "
            f"{sorted(_CELL_RUNNERS)}"
        ) from None


# ---------------------------------------------------------------------
# the resumable runner
# ---------------------------------------------------------------------


def _canonical(data: Any) -> str:
    return json.dumps(
        data, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _digest(payload: dict[str, Any]) -> str:
    body = {k: v for k, v in payload.items() if k != "digest"}
    return hashlib.sha256(_canonical(body).encode()).hexdigest()


@dataclass
class GridReport:
    """Outcome of one :meth:`GridRunner.run`: which cells ran, which
    were served from their cached ``result.json``, which were found
    corrupt and recomputed — plus every cell's result for reporting."""

    grid: ExperimentGrid
    out_dir: Path
    ran: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)
    recomputed: list[str] = field(default_factory=list)
    results: dict[str, dict] = field(default_factory=dict)

    @property
    def cells(self) -> list[tuple[dict, dict]]:
        """``(params, result)`` per cell, in grid order — what table
        callables pivot."""
        return [
            (cell.params, self.results[cell.cell_id])
            for cell in self.grid.cells()
        ]

    def tables(self) -> list[ExperimentResult]:
        out = []
        for fn in self.grid.tables:
            made = fn(self.cells)
            out.extend(
                made if isinstance(made, (list, tuple)) else [made]
            )
        return out


class GridRunner:
    """Materialise a grid under ``out_root/<grid.name>/<cell_id>/``.

    Resumable by construction: each finished cell's ``result.json`` is
    written atomically (tmp + rename) and sealed with a content digest;
    on the next run a cell is skipped iff its file parses, the digest
    verifies, and the recorded parameters match the cell's — anything
    else (torn write, hand-edited file, changed params or seed)
    recomputes.  ``force=True`` recomputes everything.
    """

    def __init__(
        self,
        grid: ExperimentGrid,
        out_root: str | Path,
        quick: bool = False,
        seed: int = 2013,
        force: bool = False,
        verbose: bool = False,
    ) -> None:
        self.grid = grid
        self.out_dir = Path(out_root) / grid.name
        self.quick = quick
        self.seed = int(seed)
        self.force = force
        self.verbose = verbose

    # -- per-cell bookkeeping ------------------------------------------

    def cell_dir(self, cell: GridCell) -> Path:
        return self.out_dir / cell.cell_id

    def _cell_params(self, cell: GridCell) -> dict[str, Any]:
        """Everything needed to reproduce the cell from its
        ``params.json`` alone."""
        return {
            "grid": self.grid.name,
            "runner": self.grid.runner,
            "cell": cell.cell_id,
            "quick": self.quick,
            "seed": self.seed,
            "params": cell.params,
        }

    def cached_result(self, cell: GridCell) -> dict | None:
        """The cell's verified cached result, or ``None`` if absent,
        torn, corrupted or computed for different parameters."""
        path = self.cell_dir(cell) / "result.json"
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("v") != CELL_RESULT_VERSION:
            return None
        if payload.get("digest") != _digest(payload):
            return None
        if payload.get("cell") != self._cell_params(cell):
            return None
        return payload["result"]

    def _write_cell(
        self, cell: GridCell, result: dict, elapsed_s: float
    ) -> None:
        cdir = self.cell_dir(cell)
        cdir.mkdir(parents=True, exist_ok=True)
        params = self._cell_params(cell)
        (cdir / "params.json").write_text(
            json.dumps(params, indent=2, sort_keys=True) + "\n"
        )
        payload: dict[str, Any] = {
            "v": CELL_RESULT_VERSION,
            "cell": params,
            "elapsed_s": elapsed_s,
            "result": result,
        }
        payload["digest"] = _digest(payload)
        tmp = cdir / "result.json.tmp"
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        tmp.replace(cdir / "result.json")

    # -- driving -------------------------------------------------------

    def run(
        self, max_cells: int | None = None
    ) -> GridReport:
        """Run (or resume) the sweep; ``max_cells`` bounds how many
        *missing* cells are computed this call (the kill-mid-sweep
        tests use it; cached cells never count against it)."""
        runner = cell_runner(self.grid.runner)
        report = GridReport(self.grid, self.out_dir)
        computed = 0
        for cell in self.grid.cells():
            had_file = (self.cell_dir(cell) / "result.json").exists()
            cached = None if self.force else self.cached_result(cell)
            if cached is not None:
                report.skipped.append(cell.cell_id)
                report.results[cell.cell_id] = cached
                self._say(f"[{cell.cell_id}] cached, skipping")
                continue
            if max_cells is not None and computed >= max_cells:
                raise GridInterrupted(report)
            result, elapsed = self._run_cell(runner, cell)
            self._write_cell(cell, result, elapsed)
            computed += 1
            report.results[cell.cell_id] = result
            if had_file and not self.force:
                report.recomputed.append(cell.cell_id)
                self._say(
                    f"[{cell.cell_id}] stale/corrupt result recomputed "
                    f"({elapsed:.1f}s)"
                )
            else:
                report.ran.append(cell.cell_id)
                self._say(f"[{cell.cell_id}] done ({elapsed:.1f}s)")
        return report

    def _run_cell(
        self, runner: Callable[[dict, CellContext], dict], cell: GridCell
    ) -> tuple[dict, float]:
        cdir = self.cell_dir(cell)
        cdir.mkdir(parents=True, exist_ok=True)
        log_path = cdir / "log.txt"
        with log_path.open("w") as log_file:

            def log(line: str) -> None:
                log_file.write(line.rstrip("\n") + "\n")
                log_file.flush()
                self._say(f"[{cell.cell_id}] {line}")

            ctx = CellContext(
                quick=self.quick,
                seed=self.seed,
                cell_dir=cdir,
                log=log,
            )
            log(f"params: {_canonical(cell.params)}")
            t0 = time.perf_counter()
            result = runner(dict(cell.params), ctx)
            elapsed = time.perf_counter() - t0
            log(f"elapsed_s: {elapsed:.3f}")
        if not isinstance(result, dict):
            raise GridError(
                f"cell runner {self.grid.runner!r} returned "
                f"{type(result).__name__}, expected dict"
            )
        return result, elapsed

    def _say(self, line: str) -> None:
        if self.verbose:
            print(line)


class GridInterrupted(Exception):
    """Raised by :meth:`GridRunner.run` when ``max_cells`` stops a
    sweep early; carries the partial report (the on-disk cells are
    already durable — rerunning resumes)."""

    def __init__(self, report: GridReport) -> None:
        super().__init__(
            f"grid stopped after {len(report.ran)} computed cells"
        )
        self.report = report


# ---------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------


def series_table(
    cells: list[tuple[dict, dict]],
    title: str,
    x: str,
    values: Sequence[str],
    unit: str = "",
    x_label: str | None = None,
) -> ExperimentResult:
    """The common pivot: one row per cell (labelled by axis ``x``),
    one column per key in ``values`` looked up in each cell's result.
    Richer pivots are plain Python inside the xpfile's table
    callable."""
    result = ExperimentResult(
        title=title, x_label=x_label or x, unit=unit
    )
    for params, cell_result in cells:
        result.x_values.append(params[x])
        for key in values:
            result.add(key, cell_result[key])
    return result


def write_cells_csv(
    path: str | Path, cells: list[tuple[dict, dict]]
) -> None:
    """Flat CSV over all cells: the union of parameter and scalar
    result keys, one row per cell — the machine-readable companion of
    the ASCII tables."""
    param_keys: list[str] = []
    result_keys: list[str] = []
    for params, result in cells:
        for k in params:
            if k not in param_keys:
                param_keys.append(k)
        for k, v in result.items():
            if (
                k not in result_keys
                and k not in param_keys
                and not isinstance(v, (dict, list))
            ):
                result_keys.append(k)
    lines = [",".join(param_keys + result_keys)]
    for params, result in cells:
        row = [str(params.get(k, "")) for k in param_keys]
        row += [str(result.get(k, "")) for k in result_keys]
        lines.append(",".join(row))
    Path(path).write_text("\n".join(lines) + "\n")
