"""Paper-style ASCII series tables.

Each figure panel becomes a small table: one row per x-axis value, one
column per plotted series — the same rows/series the paper's gnuplot
panels show.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    unit: str = "",
) -> str:
    """Render one panel as a table string."""
    headers = [x_label] + [
        f"{name} ({unit})" if unit else name for name in series
    ]
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)]
        for values in series.values():
            v = values[i]
            row.append(_fmt(v))
        rows.append(row)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rows))
        for c in range(len(headers))
    ]
    lines = [f"== {title} =="]
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(len(headers))))
    for row in rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(row))))
    return "\n".join(lines)


def print_series(
    title: str,
    x_label: str,
    x_values: Sequence[Any],
    series: dict[str, Sequence[float]],
    unit: str = "",
) -> None:
    print()
    print(format_series(title, x_label, x_values, series, unit))


def _fmt(v: float) -> str:
    if isinstance(v, str):
        return v
    if isinstance(v, bool):
        return str(v)
    if isinstance(v, int):
        return str(v)
    if v == 0:
        return "0"
    if abs(v) >= 1000:
        return f"{v:.0f}"
    if abs(v) >= 1:
        return f"{v:.2f}"
    return f"{v:.4f}"
