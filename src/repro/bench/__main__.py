"""Command-line harness: regenerate the paper's figures.

Usage::

    python -m repro.bench                    # every panel, active profile
    python -m repro.bench fig12a fig15d      # selected panels
    REPRO_BENCH_SCALE=medium python -m repro.bench fig14a

Each panel prints its series table (the same rows/series the paper
plots) and, with ``--out DIR``, writes it to ``DIR/<figure>.txt``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.figures import ALL_FIGURES
from repro.bench.workloads import WorkloadFactory, active_profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of Xie et al., "
        "ICDE 2013.",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"panels to run (default: all); one of {sorted(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write per-panel tables into",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available panels and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(ALL_FIGURES):
            print(name)
        return 0

    selected = args.figures or sorted(ALL_FIGURES)
    unknown = [f for f in selected if f not in ALL_FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {unknown}; choose from {sorted(ALL_FIGURES)}"
        )

    profile = active_profile()
    print(f"profile: {profile.name} (override with REPRO_BENCH_SCALE)")
    factory = WorkloadFactory(profile)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in selected:
        t0 = time.perf_counter()
        result = ALL_FIGURES[name](factory)
        elapsed = time.perf_counter() - t0
        table = result.to_table()
        print()
        print(table)
        print(f"  [{name} took {elapsed:.1f}s]")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
