"""Command-line harness: regenerate the paper's figures, run grids.

Usage::

    python -m repro.bench                    # every panel, active profile
    python -m repro.bench fig12a fig15d      # selected panels
    REPRO_BENCH_SCALE=medium python -m repro.bench fig14a
    python -m repro.bench grid benchmarks/grids/scenario_fleet.xp

Each panel prints its series table (the same rows/series the paper
plots) and, with ``--out DIR``, writes it to ``DIR/<figure>.txt``.

``grid <xpfile>`` materialises a declarative experiment grid (see
:mod:`repro.bench.grid`): one directory per cell under ``--out``,
cached cells skipped — rerunning a killed sweep resumes it.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.bench.figures import ALL_FIGURES
from repro.bench.workloads import WorkloadFactory, active_profile


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["grid"]:
        return grid_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation figures of Xie et al., "
        "ICDE 2013 (or run an experiment grid: "
        "`python -m repro.bench grid <xpfile>`).",
    )
    parser.add_argument(
        "figures",
        nargs="*",
        metavar="FIGURE",
        help=f"panels to run (default: all); one of {sorted(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to write per-panel tables into",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the profile's base seed (space, population, "
        "queries and movement all derive from it)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available panels and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(ALL_FIGURES):
            print(name)
        return 0

    selected = args.figures or sorted(ALL_FIGURES)
    unknown = [f for f in selected if f not in ALL_FIGURES]
    if unknown:
        parser.error(
            f"unknown figure(s) {unknown}; choose from {sorted(ALL_FIGURES)}"
        )

    profile = active_profile()
    print(f"profile: {profile.name} (override with REPRO_BENCH_SCALE)")
    factory = WorkloadFactory(profile, seed=args.seed)
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in selected:
        t0 = time.perf_counter()
        result = ALL_FIGURES[name](factory)
        elapsed = time.perf_counter() - t0
        table = result.to_table()
        print()
        print(table)
        print(f"  [{name} took {elapsed:.1f}s]")
        if args.out is not None:
            (args.out / f"{name}.txt").write_text(table + "\n")
    return 0


def grid_main(argv: list[str]) -> int:
    """``python -m repro.bench grid <xpfile> [options]``."""
    from repro.bench.grid import (
        GridError,
        GridInterrupted,
        GridRunner,
        load_xpfile,
        write_cells_csv,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench grid",
        description="Run (or resume) a declarative experiment grid.",
    )
    parser.add_argument("xpfile", type=pathlib.Path, help="grid xpfile")
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks/out"),
        help="root directory for cell outputs (default: benchmarks/out)",
    )
    parser.add_argument(
        "--tables",
        type=pathlib.Path,
        default=None,
        help="also write each pivot table to DIR/<grid>_<n>.txt",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-smoke scale: tiny venues and workloads",
    )
    parser.add_argument(
        "--seed", type=int, default=2013, help="base seed (default 2013)"
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="recompute every cell, ignoring cached results",
    )
    parser.add_argument(
        "--max-cells",
        type=int,
        default=None,
        metavar="N",
        help="compute at most N missing cells, then stop (the sweep "
        "stays resumable)",
    )
    parser.add_argument(
        "--csv",
        type=pathlib.Path,
        default=None,
        help="write a flat all-cells CSV to this path",
    )
    args = parser.parse_args(argv)

    try:
        grid = load_xpfile(args.xpfile)
    except GridError as exc:
        parser.error(str(exc))
    runner = GridRunner(
        grid,
        args.out,
        quick=args.quick,
        seed=args.seed,
        force=args.force,
        verbose=True,
    )
    print(
        f"grid: {grid.name} ({len(grid.cells())} cells, "
        f"runner={grid.runner}) -> {runner.out_dir}"
    )
    try:
        report = runner.run(max_cells=args.max_cells)
    except GridInterrupted as stopped:
        report = stopped.report
        print(
            f"stopped after {len(report.ran)} computed cells "
            "(rerun to resume)"
        )
        return 3
    print(
        f"cells: {len(report.ran)} computed, {len(report.skipped)} "
        f"cached, {len(report.recomputed)} recomputed"
    )
    for table in report.tables():
        print()
        print(table.to_table())
    if args.tables is not None:
        args.tables.mkdir(parents=True, exist_ok=True)
        tables = report.tables()
        for i, table in enumerate(tables):
            stem = (
                grid.name if len(tables) == 1 else f"{grid.name}_{i}"
            )
            path = args.tables / f"{stem}.txt"
            path.write_text(table.to_table() + "\n")
            print(f"wrote {path}")
    if args.csv is not None:
        write_cells_csv(args.csv, report.cells)
        print(f"wrote {args.csv}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
