"""Axis-aligned rectangles (2-D) and boxes (3-D).

:class:`Rect` is the workhorse for partition footprints and index units.
:class:`Box3` is the MBR type stored in the R*-tree; the indR-tree stores
partitions as *flat* boxes whose vertical extent is 1 cm (Section III-A.2)
and treats that extent as zero during query-phase distance computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A planar axis-aligned rectangle ``[minx, maxx] x [miny, maxy]``."""

    minx: float
    miny: float
    maxx: float
    maxy: float

    def __post_init__(self) -> None:
        if self.minx > self.maxx or self.miny > self.maxy:
            raise GeometryError(f"degenerate rect: {self!r}")

    # -- basic measures -------------------------------------------------

    @property
    def width(self) -> float:
        return self.maxx - self.minx

    @property
    def height(self) -> float:
        return self.maxy - self.miny

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half perimeter; the R*-tree split heuristic minimises this."""
        return self.width + self.height

    @property
    def center(self) -> tuple[float, float]:
        return ((self.minx + self.maxx) / 2.0, (self.miny + self.maxy) / 2.0)

    def aspect_ratio(self) -> float:
        """Short side over long side, in ``[0, 1]``.

        This is the ratio Algorithm 3 compares against ``T_shape``.  A
        degenerate (zero-long-side) rect has ratio 1 by convention.
        """
        long_side = max(self.width, self.height)
        if long_side == 0.0:
            return 1.0
        return min(self.width, self.height) / long_side

    # -- predicates ------------------------------------------------------

    def contains_xy(self, x: float, y: float) -> bool:
        return self.minx <= x <= self.maxx and self.miny <= y <= self.maxy

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and self.maxx >= other.maxx
            and self.maxy >= other.maxy
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.minx > self.maxx
            or other.maxx < self.minx
            or other.miny > self.maxy
            or other.maxy < self.miny
        )

    # -- constructions ---------------------------------------------------

    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or ``None`` when disjoint."""
        minx = max(self.minx, other.minx)
        miny = max(self.miny, other.miny)
        maxx = min(self.maxx, other.maxx)
        maxy = min(self.maxy, other.maxy)
        if minx > maxx or miny > maxy:
            return None
        return Rect(minx, miny, maxx, maxy)

    def buffered(self, amount: float) -> "Rect":
        """Grow (or shrink, for negative ``amount``) on every side."""
        return Rect(
            self.minx - amount,
            self.miny - amount,
            self.maxx + amount,
            self.maxy + amount,
        )

    def split_x(self, x: float) -> tuple["Rect", "Rect"]:
        """Split by the vertical line ``x = x`` (must cross the rect)."""
        if not (self.minx < x < self.maxx):
            raise GeometryError(f"x={x} does not cross {self!r}")
        return (
            Rect(self.minx, self.miny, x, self.maxy),
            Rect(x, self.miny, self.maxx, self.maxy),
        )

    def split_y(self, y: float) -> tuple["Rect", "Rect"]:
        """Split by the horizontal line ``y = y`` (must cross the rect)."""
        if not (self.miny < y < self.maxy):
            raise GeometryError(f"y={y} does not cross {self!r}")
        return (
            Rect(self.minx, self.miny, self.maxx, y),
            Rect(self.minx, y, self.maxx, self.maxy),
        )

    # -- distances ---------------------------------------------------------

    def min_distance_xy(self, x: float, y: float) -> float:
        """Planar MINDIST from a point to this rect (0 when inside)."""
        dx = max(self.minx - x, 0.0, x - self.maxx)
        dy = max(self.miny - y, 0.0, y - self.maxy)
        return math.hypot(dx, dy)

    def max_distance_xy(self, x: float, y: float) -> float:
        """Planar MAXDIST from a point to this rect (farthest corner)."""
        dx = max(abs(x - self.minx), abs(x - self.maxx))
        dy = max(abs(y - self.miny), abs(y - self.maxy))
        return math.hypot(dx, dy)

    def corners(self) -> list[tuple[float, float]]:
        return [
            (self.minx, self.miny),
            (self.maxx, self.miny),
            (self.maxx, self.maxy),
            (self.minx, self.maxy),
        ]

    def random_xy(self, rng) -> tuple[float, float]:
        """A uniform random point inside the rect (``rng`` is a
        :class:`numpy.random.Generator` or :class:`random.Random`)."""
        u, v = rng.random(), rng.random()
        return (self.minx + u * self.width, self.miny + v * self.height)


@dataclass(frozen=True, slots=True)
class Box3:
    """A 3-D axis-aligned box used as the R*-tree MBR type."""

    minx: float
    miny: float
    minz: float
    maxx: float
    maxy: float
    maxz: float

    def __post_init__(self) -> None:
        if self.minx > self.maxx or self.miny > self.maxy or self.minz > self.maxz:
            raise GeometryError(f"degenerate box: {self!r}")

    # -- measures ---------------------------------------------------------

    @property
    def volume(self) -> float:
        return (
            (self.maxx - self.minx)
            * (self.maxy - self.miny)
            * (self.maxz - self.minz)
        )

    @property
    def margin(self) -> float:
        """Sum of the three side lengths (R*-tree split heuristic)."""
        return (
            (self.maxx - self.minx)
            + (self.maxy - self.miny)
            + (self.maxz - self.minz)
        )

    @property
    def center(self) -> tuple[float, float, float]:
        return (
            (self.minx + self.maxx) / 2.0,
            (self.miny + self.maxy) / 2.0,
            (self.minz + self.maxz) / 2.0,
        )

    def side(self, dim: int) -> tuple[float, float]:
        """The ``[lo, hi]`` interval on dimension ``dim`` (0, 1 or 2)."""
        if dim == 0:
            return (self.minx, self.maxx)
        if dim == 1:
            return (self.miny, self.maxy)
        if dim == 2:
            return (self.minz, self.maxz)
        raise GeometryError(f"bad dimension {dim}")

    # -- predicates ---------------------------------------------------------

    def intersects(self, other: "Box3") -> bool:
        return not (
            other.minx > self.maxx
            or other.maxx < self.minx
            or other.miny > self.maxy
            or other.maxy < self.miny
            or other.minz > self.maxz
            or other.maxz < self.minz
        )

    def contains_box(self, other: "Box3") -> bool:
        return (
            self.minx <= other.minx
            and self.miny <= other.miny
            and self.minz <= other.minz
            and self.maxx >= other.maxx
            and self.maxy >= other.maxy
            and self.maxz >= other.maxz
        )

    def contains_xyz(self, x: float, y: float, z: float) -> bool:
        return (
            self.minx <= x <= self.maxx
            and self.miny <= y <= self.maxy
            and self.minz <= z <= self.maxz
        )

    # -- constructions --------------------------------------------------------

    def union(self, other: "Box3") -> "Box3":
        return Box3(
            min(self.minx, other.minx),
            min(self.miny, other.miny),
            min(self.minz, other.minz),
            max(self.maxx, other.maxx),
            max(self.maxy, other.maxy),
            max(self.maxz, other.maxz),
        )

    def intersection_volume(self, other: "Box3") -> float:
        dx = min(self.maxx, other.maxx) - max(self.minx, other.minx)
        dy = min(self.maxy, other.maxy) - max(self.miny, other.miny)
        dz = min(self.maxz, other.maxz) - max(self.minz, other.minz)
        if dx <= 0.0 or dy <= 0.0 or dz <= 0.0:
            return 0.0
        return dx * dy * dz

    def flattened(self) -> "Box3":
        """Query-phase view: vertical extent collapsed to ``[minz, minz]``.

        This is the paper's 1 cm trick — the box is stored with a tiny
        vertical extent so R*-tree volume heuristics work, but distances
        treat the partition as a 2-D rectangle at its floor elevation.
        """
        return Box3(self.minx, self.miny, self.minz, self.maxx, self.maxy, self.minz)

    def rect(self) -> Rect:
        """Planar footprint."""
        return Rect(self.minx, self.miny, self.maxx, self.maxy)

    # -- distances -------------------------------------------------------------

    def min_distance_xyz(self, x: float, y: float, z: float) -> float:
        """3-D MINDIST from a point to this box (0 when inside)."""
        dx = max(self.minx - x, 0.0, x - self.maxx)
        dy = max(self.miny - y, 0.0, y - self.maxy)
        dz = max(self.minz - z, 0.0, z - self.maxz)
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def min_distance_to(self, other: "Box3") -> float:
        """3-D MINDIST between two boxes (0 when they intersect)."""
        dx = max(self.minx - other.maxx, 0.0, other.minx - self.maxx)
        dy = max(self.miny - other.maxy, 0.0, other.miny - self.maxy)
        dz = max(self.minz - other.maxz, 0.0, other.minz - self.maxz)
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def max_distance_xyz(self, x: float, y: float, z: float) -> float:
        dx = max(abs(x - self.minx), abs(x - self.maxx))
        dy = max(abs(y - self.miny), abs(y - self.maxy))
        dz = max(abs(z - self.minz), abs(z - self.maxz))
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    @staticmethod
    def from_rect(
        rect: Rect, floor: int, floor_height: float, vertical_extent: float = 0.01
    ) -> "Box3":
        """Build the indR-tree box for a partition footprint.

        ``vertical_extent`` is the paper's 1 cm: large enough for R*-tree
        volume math, negligible for distances.
        """
        z = floor * floor_height
        return Box3(rect.minx, rect.miny, z, rect.maxx, rect.maxy, z + vertical_extent)


def point_box_min_distance(
    p: Point, box: Box3, floor_height: float
) -> float:
    """MINDIST from an indoor point to a (flattened) box, in metres."""
    return box.flattened().min_distance_xyz(p.x, p.y, p.z(floor_height))


def point_box_max_distance(
    p: Point, box: Box3, floor_height: float
) -> float:
    """MAXDIST from an indoor point to a (flattened) box, in metres."""
    return box.flattened().max_distance_xyz(p.x, p.y, p.z(floor_height))
