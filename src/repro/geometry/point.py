"""Indoor points and Euclidean distances.

A :class:`Point` is a planar coordinate plus an integer floor number.  The
(virtual) Euclidean distance between points on different floors is the 3-D
straight-line distance with the vertical leg ``|Δfloor| * floor_height``;
the paper uses it purely as a lower bound of the indoor distance
(Section II-D.1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Per-floor height in metres; the paper's mall floors are 4 m tall.
DEFAULT_FLOOR_HEIGHT = 4.0


@dataclass(frozen=True, slots=True)
class Point:
    """A position inside a building: planar ``(x, y)`` plus a ``floor``.

    ``floor`` is an integer index (ground floor = 0).  Points are immutable
    and hashable so they can key dictionaries (e.g. door midpoints).
    """

    x: float
    y: float
    floor: int = 0

    def z(self, floor_height: float = DEFAULT_FLOOR_HEIGHT) -> float:
        """Vertical elevation of this point."""
        return self.floor * floor_height

    def planar_distance(self, other: "Point") -> float:
        """Planar (x, y) distance, ignoring floors."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def distance(
        self, other: "Point", floor_height: float = DEFAULT_FLOOR_HEIGHT
    ) -> float:
        """Virtual Euclidean distance ``|self, other|_E`` (3-D if the
        points are on different floors)."""
        dz = (self.floor - other.floor) * floor_height
        if dz == 0.0:
            return math.hypot(self.x - other.x, self.y - other.y)
        return math.sqrt(
            (self.x - other.x) ** 2 + (self.y - other.y) ** 2 + dz * dz
        )

    def translated(self, dx: float, dy: float) -> "Point":
        """A copy moved by ``(dx, dy)`` on the same floor."""
        return Point(self.x + dx, self.y + dy, self.floor)

    def on_floor(self, floor: int) -> "Point":
        """A copy of this point placed on ``floor``."""
        return Point(self.x, self.y, floor)

    def xy(self) -> tuple[float, float]:
        """Planar coordinate tuple."""
        return (self.x, self.y)


def euclidean_distance(
    p: Point, q: Point, floor_height: float = DEFAULT_FLOOR_HEIGHT
) -> float:
    """Module-level alias of :meth:`Point.distance` (reads better in
    formula-heavy call sites)."""
    return p.distance(q, floor_height)
