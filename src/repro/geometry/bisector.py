"""Additive-weighted bisectors between two doors (Section II-C.2).

For the single-partition *multi-path* distance the solution space is the
Additive Weighted Voronoi Diagram of the partition's doors: door ``d_i``
carries the weight ``w_i = |q, d_i|_I``, and an instance ``s`` is served by
the door minimising ``w_i + |s, d_i|_E``.  The boundary between the
regions of two doors is the *weighted bisector* (Eq. 5)::

    b_ij = { p : |p, d_i|_E + w_i = |p, d_j|_E + w_j }

Its shape follows Table II of the paper:

=============  ==========================================================
shape          condition
=============  ==========================================================
straight line  ``w_i == w_j`` (the classical perpendicular bisector)
hyperbola      ``w_i != w_j`` and neither door dominates the partition
null           one door dominates: its weighted distance is smaller for
               every point (the paper states this via the partition's
               ``|d, P|_E^max`` radii; we use the exact dominance test
               ``|w_i - w_j| >= |d_i, d_j|_E``, which is the triangle-
               inequality form of the same criterion)
=============  ==========================================================

The bisector object also offers exact point-side tests, which is what the
expected-distance computation actually consumes: if all of an object's
instances fall on one side, the single-path formula (Eq. 3) applies.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GeometryError


class BisectorShape(enum.Enum):
    """Shape of a weighted bisector per Table II."""

    LINE = "line"
    HYPERBOLA = "hyperbola"
    NULL = "null"


class Side(enum.IntEnum):
    """Which door serves a point."""

    I_SIDE = -1  # door d_i is (strictly) better
    ON = 0
    J_SIDE = 1  # door d_j is (strictly) better


@dataclass(frozen=True)
class WeightedBisector:
    """The weighted bisector between doors ``d_i`` and ``d_j``.

    Parameters
    ----------
    di, dj:
        Planar door midpoints ``(x, y)``.
    wi, wj:
        Additive weights — the indoor distances ``|q, d|_I`` from the
        query point to each door.
    """

    di: tuple[float, float]
    dj: tuple[float, float]
    wi: float
    wj: float

    def __post_init__(self) -> None:
        if self.wi < 0.0 or self.wj < 0.0:
            raise GeometryError("bisector weights must be non-negative")

    @property
    def focal_distance(self) -> float:
        """``|d_i, d_j|_E`` — the distance between the two foci."""
        return math.hypot(
            self.di[0] - self.dj[0], self.di[1] - self.dj[1]
        )

    @property
    def shape(self) -> BisectorShape:
        """Classify per Table II (see module docstring)."""
        c = self.focal_distance
        if abs(self.wi - self.wj) >= c - 1e-12:
            # One door dominates everywhere (including the degenerate case
            # of coincident doors with different weights).
            if abs(self.wi - self.wj) < 1e-12:
                # coincident doors, equal weights: bisector is everywhere;
                # treat as NULL because the doors are interchangeable.
                return BisectorShape.NULL
            return BisectorShape.NULL
        if self.wi == self.wj:
            return BisectorShape.LINE
        return BisectorShape.HYPERBOLA

    @property
    def dominating_side(self) -> Side | None:
        """For a NULL bisector, which door wins everywhere; else ``None``."""
        if self.shape is not BisectorShape.NULL:
            return None
        if self.wi < self.wj:
            return Side.I_SIDE
        if self.wj < self.wi:
            return Side.J_SIDE
        return Side.I_SIDE  # coincident doors: either one

    # -- point-side tests ----------------------------------------------------

    def weighted_gap(self, x: float, y: float) -> float:
        """``(w_i + |p, d_i|) - (w_j + |p, d_j|)``; negative means the
        point is served by ``d_i``."""
        gi = self.wi + math.hypot(x - self.di[0], y - self.di[1])
        gj = self.wj + math.hypot(x - self.dj[0], y - self.dj[1])
        return gi - gj

    def side_of(self, x: float, y: float, tol: float = 1e-12) -> Side:
        gap = self.weighted_gap(x, y)
        if gap < -tol:
            return Side.I_SIDE
        if gap > tol:
            return Side.J_SIDE
        return Side.ON

    def split_points(self, xy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised side test for an ``(n, 2)`` array of points.

        Returns boolean masks ``(served_by_i, served_by_j)``; points on the
        bisector count for both (the min is the same either way).
        """
        xy = np.asarray(xy, dtype=float)
        gi = self.wi + np.hypot(xy[:, 0] - self.di[0], xy[:, 1] - self.di[1])
        gj = self.wj + np.hypot(xy[:, 0] - self.dj[0], xy[:, 1] - self.dj[1])
        return gi <= gj, gj <= gi

    def single_side(self, xy: np.ndarray) -> Side | None:
        """If every point lies (weakly) on one door's side, return that
        side; otherwise ``None`` (the object straddles the bisector)."""
        on_i, on_j = self.split_points(xy)
        if bool(np.all(on_i)):
            return Side.I_SIDE
        if bool(np.all(on_j)):
            return Side.J_SIDE
        return None

    # -- hyperbola parameters (for inspection/plotting) -------------------------

    def hyperbola_parameters(self) -> dict[str, float]:
        """Canonical parameters of the hyperbola branch.

        The bisector satisfies ``|p, d_j| - |p, d_i| = w_i - w_j``
        (constant difference of focal distances), i.e. one branch of a
        hyperbola with foci at the doors, ``2a = |w_i - w_j|`` and
        ``2c = |d_i, d_j|``.
        """
        if self.shape is not BisectorShape.HYPERBOLA:
            raise GeometryError(f"bisector shape is {self.shape}, not hyperbola")
        c = self.focal_distance / 2.0
        a = abs(self.wi - self.wj) / 2.0
        return {"a": a, "c": c, "b": math.sqrt(max(c * c - a * a, 0.0))}
