"""Partition decomposition into index units (Algorithm 3 of the paper).

Irregular partitions degrade indR-tree quality in two ways:

* *concave* footprints (an L- or U-shaped hallway) put dead space in the
  leaf MBR;
* *imbalanced* footprints (a long thin corridor) produce elongated MBRs.

Algorithm 3 fixes both: concave regions are split at *turning points*
(reflex vertices), preferring the turning point closest to the middle of
the longer dimension; rectangles whose short/long side ratio falls below
``T_shape`` are halved along the longer dimension, recursively.

Implementation notes
--------------------
Floor-plan partitions are rectilinear, so decomposition can work on the
vertex grid: the distinct vertex x/y coordinates slice the footprint into
grid cells, every reflex-vertex coordinate is a grid line, and cutting at
a grid line never creates new corner shapes.  Concave regions are split
on the cell grid (connected components after the cut), and each resulting
full-rectangle region is then balance-split.  The output is a list of
:class:`~repro.geometry.rect.Rect` index units whose union is exactly the
input footprint.

Non-rectilinear footprints (the paper mentions circular rooms) must be
polygonised to a rectilinear approximation first — see
:func:`rectilinearize`.
"""

from __future__ import annotations

from collections import deque

from repro.errors import GeometryError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect

#: Default shape threshold used by the paper's running example.
DEFAULT_T_SHAPE = 0.5


def decompose_partition_geometry(
    footprint: Rect | Polygon, t_shape: float = DEFAULT_T_SHAPE
) -> list[Rect]:
    """Decompose a partition footprint into regular index units.

    Parameters
    ----------
    footprint:
        The partition geometry — a :class:`Rect` or a rectilinear
        :class:`Polygon`.
    t_shape:
        Minimum allowed short/long side ratio of an index unit, in
        ``(0, 1]``.  ``t_shape <= 0`` disables balance splitting (useful
        for ablations).

    Returns
    -------
    list[Rect]
        Disjoint rectangles covering the footprint exactly.
    """
    if t_shape > 1.0:
        raise GeometryError(f"T_shape must be <= 1, got {t_shape}")
    if isinstance(footprint, Rect):
        return _split_imbalanced(footprint, t_shape)
    if not footprint.is_rectilinear():
        raise GeometryError(
            "decomposition requires a rectilinear footprint; call "
            "rectilinearize() on curved shapes first"
        )
    if footprint.is_rectangle():
        return _split_imbalanced(footprint.bounds(), t_shape)

    xs, ys, cells = _grid_cells(footprint)
    units: list[Rect] = []
    for region in _concave_split(cells, xs, ys):
        rect = _cells_bounding_rect(region, xs, ys)
        units.extend(_split_imbalanced(rect, t_shape))
    return units


def rectilinearize(polygon: Polygon, resolution: int = 8) -> Polygon:
    """Approximate an arbitrary simple polygon by a rectilinear one.

    A staircase approximation built from the occupancy grid of the
    polygon's bounding rectangle at ``resolution x resolution`` cells.
    The result covers roughly the same area and is safe to feed into
    :func:`decompose_partition_geometry`.
    """
    if polygon.is_rectilinear():
        return polygon
    bounds = polygon.bounds()
    if resolution < 2:
        raise GeometryError(f"resolution must be >= 2, got {resolution}")
    dx = bounds.width / resolution
    dy = bounds.height / resolution
    occupied: set[tuple[int, int]] = set()
    for i in range(resolution):
        for j in range(resolution):
            cx = bounds.minx + (i + 0.5) * dx
            cy = bounds.miny + (j + 0.5) * dy
            if polygon.contains_xy(cx, cy):
                occupied.add((i, j))
    if not occupied:
        raise GeometryError("polygon too small for the chosen resolution")
    # Keep the largest connected component and fill any enclosed holes
    # (sampling artifacts — the input polygon is simple, so its
    # rectilinear stand-in must be simply connected too), then trace.
    component = fill_enclosed_cells(max(_components(occupied), key=len))
    return _trace_cell_outline(component, bounds.minx, bounds.miny, dx, dy)


# ---------------------------------------------------------------------------
# grid-cell machinery
# ---------------------------------------------------------------------------


def _grid_cells(
    polygon: Polygon,
) -> tuple[list[float], list[float], set[tuple[int, int]]]:
    """Slice a rectilinear polygon into grid cells.

    Returns the sorted distinct x and y coordinates and the set of cell
    indices ``(i, j)`` (cell i spans ``xs[i]..xs[i+1]``) whose center lies
    inside the polygon.
    """
    xs = sorted({v[0] for v in polygon.vertices})
    ys = sorted({v[1] for v in polygon.vertices})
    cells = set()
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            cx = (xs[i] + xs[i + 1]) / 2.0
            cy = (ys[j] + ys[j + 1]) / 2.0
            if polygon.contains_xy(cx, cy):
                cells.add((i, j))
    if not cells:
        raise GeometryError("degenerate rectilinear polygon (no interior cells)")
    return xs, ys, cells


def _components(cells: set[tuple[int, int]]) -> list[set[tuple[int, int]]]:
    """4-adjacency connected components of a cell set."""
    remaining = set(cells)
    out = []
    while remaining:
        seed = next(iter(remaining))
        comp = {seed}
        remaining.discard(seed)
        queue = deque([seed])
        while queue:
            i, j = queue.popleft()
            for n in ((i + 1, j), (i - 1, j), (i, j + 1), (i, j - 1)):
                if n in remaining:
                    remaining.discard(n)
                    comp.add(n)
                    queue.append(n)
        out.append(comp)
    return out


def fill_enclosed_cells(cells: set[tuple[int, int]]) -> set[tuple[int, int]]:
    """The cell set with every enclosed hole filled in.

    A complement cell is a *hole* when it cannot reach the outside of
    the set's bounding box through 4-adjacent complement cells.  Filling
    makes the region simply connected, which is what
    :func:`_trace_cell_outline` (a single-ring tracer) requires — a
    hole's boundary forms a second ring, and a hole pinching the
    outline diagonally even makes boundary vertices non-manifold.
    """
    if not cells:
        return set(cells)
    imin = min(c[0] for c in cells) - 1
    imax = max(c[0] for c in cells) + 1
    jmin = min(c[1] for c in cells) - 1
    jmax = max(c[1] for c in cells) + 1
    outside: set[tuple[int, int]] = set()
    queue = deque([(imin, jmin)])
    outside.add((imin, jmin))
    while queue:
        i, j = queue.popleft()
        for n in ((i + 1, j), (i - 1, j), (i, j + 1), (i, j - 1)):
            if (
                imin <= n[0] <= imax
                and jmin <= n[1] <= jmax
                and n not in cells
                and n not in outside
            ):
                outside.add(n)
                queue.append(n)
    return {
        (i, j)
        for i in range(imin, imax + 1)
        for j in range(jmin, jmax + 1)
        if (i, j) in cells or (i, j) not in outside
    }


def _cells_bounding_rect(
    cells: set[tuple[int, int]], xs: list[float], ys: list[float]
) -> Rect:
    imin = min(c[0] for c in cells)
    imax = max(c[0] for c in cells)
    jmin = min(c[1] for c in cells)
    jmax = max(c[1] for c in cells)
    return Rect(xs[imin], ys[jmin], xs[imax + 1], ys[jmax + 1])


def _is_full_rectangle(
    cells: set[tuple[int, int]],
) -> bool:
    imin = min(c[0] for c in cells)
    imax = max(c[0] for c in cells)
    jmin = min(c[1] for c in cells)
    jmax = max(c[1] for c in cells)
    return len(cells) == (imax - imin + 1) * (jmax - jmin + 1)


def _concave_split(
    cells: set[tuple[int, int]], xs: list[float], ys: list[float]
) -> list[set[tuple[int, int]]]:
    """Recursively split a concave cell region into full rectangles.

    Mirrors the concave branch of Algorithm 3: each cut is a grid line
    perpendicular to the region's longer dimension, chosen as close to
    the middle of that dimension as possible (every reflex-vertex
    coordinate is a grid line, so cuts happen at turning points).
    """
    out: list[set[tuple[int, int]]] = []
    stack = [cells]
    while stack:
        region = stack.pop()
        if _is_full_rectangle(region):
            out.append(region)
            continue
        rect = _cells_bounding_rect(region, xs, ys)
        imin = min(c[0] for c in region)
        imax = max(c[0] for c in region)
        jmin = min(c[1] for c in region)
        jmax = max(c[1] for c in region)
        if rect.width >= rect.height and imax > imin:
            mid = (rect.minx + rect.maxx) / 2.0
            cut = min(
                range(imin + 1, imax + 1),
                key=lambda i: abs(xs[i] - mid),
            )
            left = {c for c in region if c[0] < cut}
            right = {c for c in region if c[0] >= cut}
        else:
            mid = (rect.miny + rect.maxy) / 2.0
            cut = min(
                range(jmin + 1, jmax + 1),
                key=lambda j: abs(ys[j] - mid),
            )
            left = {c for c in region if c[1] < cut}
            right = {c for c in region if c[1] >= cut}
        for half in (left, right):
            if half:
                stack.extend(_components(half))
    return out


def _split_imbalanced(rect: Rect, t_shape: float) -> list[Rect]:
    """Recursively halve a rectangle until its aspect ratio is regular.

    Implements the convex branch of Algorithm 3: while the short/long
    side ratio is below ``t_shape``, split at the middle of the longer
    dimension.  Halving a ratio-``p`` rectangle yields ``min(2p,
    1/(2p))``, so for ``t_shape > 1/sqrt(2)`` the target may be
    unreachable; splitting stops as soon as another halving would not
    strictly improve the ratio (otherwise the recursion would oscillate
    between ``p`` and ``1/(2p)`` forever).
    """
    if t_shape <= 0.0:
        return [rect]
    out: list[Rect] = []
    stack = [rect]
    while stack:
        r = stack.pop()
        ratio = r.aspect_ratio()
        if ratio >= t_shape or r.area == 0.0:
            out.append(r)
            continue
        long_side = max(r.width, r.height)
        short_side = min(r.width, r.height)
        halved = long_side / 2.0
        new_ratio = (
            short_side / halved if halved >= short_side else halved / short_side
        )
        if new_ratio <= ratio + 1e-12:
            out.append(r)  # no halving can improve this shape further
            continue
        if r.width >= r.height:
            stack.extend(r.split_x((r.minx + r.maxx) / 2.0))
        else:
            stack.extend(r.split_y((r.miny + r.maxy) / 2.0))
    return out


def _trace_cell_outline(
    cells: set[tuple[int, int]], x0: float, y0: float, dx: float, dy: float
) -> Polygon:
    """Trace the boundary of a simply connected 4-connected cell set
    into a polygon.

    Standard boundary-edge stitching: collect the boundary edges of every
    cell (edges not shared with a neighbour) and walk them into a ring.
    The input must not contain enclosed holes — a hole's boundary forms
    a second ring this single-ring walk cannot represent (and a
    diagonally pinching hole makes vertices non-manifold); callers with
    potentially holey sets run :func:`fill_enclosed_cells` first.
    """
    edges: dict[tuple[float, float], tuple[float, float]] = {}
    for i, j in cells:
        corners = {
            "s": ((i, j), (i + 1, j)),
            "e": ((i + 1, j), (i + 1, j + 1)),
            "n": ((i + 1, j + 1), (i, j + 1)),
            "w": ((i, j + 1), (i, j)),
        }
        neighbours = {
            "s": (i, j - 1),
            "e": (i + 1, j),
            "n": (i, j + 1),
            "w": (i - 1, j),
        }
        for side, (a, b) in corners.items():
            if neighbours[side] in cells:
                continue
            pa = (x0 + a[0] * dx, y0 + a[1] * dy)
            pb = (x0 + b[0] * dx, y0 + b[1] * dy)
            edges[pa] = pb
    if not edges:
        raise GeometryError("empty outline")
    start = next(iter(edges))
    ring = [start]
    cur = edges[start]
    while cur != start:
        ring.append(cur)
        cur = edges[cur]
        if len(ring) > len(edges) + 1:
            raise GeometryError("outline tracing failed (non-manifold cells)")
    if len(ring) != len(edges):
        # The walk closed before consuming every boundary edge: the
        # leftover edges form another ring, i.e. the set has a hole.
        raise GeometryError(
            "cell set is not simply connected (enclosed holes); "
            "fill_enclosed_cells() before tracing"
        )
    return Polygon(_drop_collinear(ring))


def _drop_collinear(ring: list[tuple[float, float]]) -> list[tuple[float, float]]:
    out: list[tuple[float, float]] = []
    n = len(ring)
    for k in range(n):
        ax, ay = ring[(k - 1) % n]
        bx, by = ring[k]
        cx, cy = ring[(k + 1) % n]
        cross = (bx - ax) * (cy - by) - (by - ay) * (cx - bx)
        if abs(cross) > 1e-12:
            out.append(ring[k])
    return out if len(out) >= 3 else ring
