"""Geometric primitives for indoor spaces.

Everything downstream (space model, index, distances) is built on these
types.  The package is dependency-free apart from numpy.

Coordinate convention
---------------------
An indoor position is a planar coordinate ``(x, y)`` plus an integer
``floor``.  The vertical elevation of a floor is ``floor *
floor_height`` where ``floor_height`` defaults to
:data:`DEFAULT_FLOOR_HEIGHT` (4 m, the paper's setup).
"""

from repro.geometry.point import DEFAULT_FLOOR_HEIGHT, Point, euclidean_distance
from repro.geometry.rect import Box3, Rect
from repro.geometry.segment import Segment
from repro.geometry.circle import Circle
from repro.geometry.polygon import Polygon
from repro.geometry.bisector import BisectorShape, WeightedBisector
from repro.geometry.decompose import decompose_partition_geometry

__all__ = [
    "DEFAULT_FLOOR_HEIGHT",
    "Point",
    "euclidean_distance",
    "Rect",
    "Box3",
    "Segment",
    "Circle",
    "Polygon",
    "BisectorShape",
    "WeightedBisector",
    "decompose_partition_geometry",
]
