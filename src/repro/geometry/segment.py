"""Planar line segments.

Used for door placement on shared walls and for polygon edge iteration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError


@dataclass(frozen=True, slots=True)
class Segment:
    """A planar segment from ``(x1, y1)`` to ``(x2, y2)``."""

    x1: float
    y1: float
    x2: float
    y2: float

    @property
    def length(self) -> float:
        return math.hypot(self.x2 - self.x1, self.y2 - self.y1)

    @property
    def midpoint(self) -> tuple[float, float]:
        return ((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def is_axis_aligned(self) -> bool:
        return self.x1 == self.x2 or self.y1 == self.y2

    def point_at(self, t: float) -> tuple[float, float]:
        """Parametric point, ``t`` in ``[0, 1]``."""
        if not 0.0 <= t <= 1.0:
            raise GeometryError(f"t={t} outside [0, 1]")
        return (
            self.x1 + t * (self.x2 - self.x1),
            self.y1 + t * (self.y2 - self.y1),
        )

    def distance_to_xy(self, x: float, y: float) -> float:
        """Distance from a point to this segment."""
        dx, dy = self.x2 - self.x1, self.y2 - self.y1
        len2 = dx * dx + dy * dy
        if len2 == 0.0:
            return math.hypot(x - self.x1, y - self.y1)
        t = ((x - self.x1) * dx + (y - self.y1) * dy) / len2
        t = max(0.0, min(1.0, t))
        px, py = self.x1 + t * dx, self.y1 + t * dy
        return math.hypot(x - px, y - py)

    def overlap_1d(self, other: "Segment") -> "Segment | None":
        """Shared collinear sub-segment of two axis-aligned segments.

        Returns ``None`` when the segments are not collinear or do not
        overlap.  This is how the space builder finds the wall shared by
        two adjacent rectangular partitions.
        """
        if not (self.is_axis_aligned() and other.is_axis_aligned()):
            return None
        if self.x1 == self.x2 and other.x1 == other.x2 and self.x1 == other.x1:
            lo = max(min(self.y1, self.y2), min(other.y1, other.y2))
            hi = min(max(self.y1, self.y2), max(other.y1, other.y2))
            if lo < hi:
                return Segment(self.x1, lo, self.x1, hi)
            return None
        if self.y1 == self.y2 and other.y1 == other.y2 and self.y1 == other.y1:
            lo = max(min(self.x1, self.x2), min(other.x1, other.x2))
            hi = min(max(self.x1, self.x2), max(other.x1, other.x2))
            if lo < hi:
                return Segment(lo, self.y1, hi, self.y1)
            return None
        return None
