"""Circles — the uncertainty-region shape used in the paper's evaluation.

An uncertain object's region is a circle on a single floor (positioning
readers report planar regions); its instances are sampled inside it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A planar circle ``(center, radius)`` on the center's floor."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise GeometryError(f"negative radius {self.radius}")

    @property
    def floor(self) -> int:
        return self.center.floor

    @property
    def diameter(self) -> float:
        return 2.0 * self.radius

    @property
    def area(self) -> float:
        return math.pi * self.radius * self.radius

    def bounds(self) -> Rect:
        """Planar bounding rectangle."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def contains_xy(self, x: float, y: float) -> bool:
        return (
            math.hypot(x - self.center.x, y - self.center.y) <= self.radius
        )

    def intersects_rect(self, rect: Rect) -> bool:
        """Planar circle/rect overlap test."""
        return rect.min_distance_xy(self.center.x, self.center.y) <= self.radius

    def min_distance_xy(self, x: float, y: float) -> float:
        """Distance from a point to the circle (0 when inside)."""
        return max(
            0.0, math.hypot(x - self.center.x, y - self.center.y) - self.radius
        )

    def max_distance_xy(self, x: float, y: float) -> float:
        """Distance from a point to the farthest point of the circle."""
        return math.hypot(x - self.center.x, y - self.center.y) + self.radius

    def polygonize(self, n: int = 16) -> list[tuple[float, float]]:
        """Approximate the circle by an ``n``-gon (CCW vertex list).

        The paper polygonises circular partitions before decomposition
        (Section III-A.2); the same helper serves tests and examples.
        """
        if n < 3:
            raise GeometryError(f"need >= 3 vertices, got {n}")
        return [
            (
                self.center.x + self.radius * math.cos(2.0 * math.pi * i / n),
                self.center.y + self.radius * math.sin(2.0 * math.pi * i / n),
            )
            for i in range(n)
        ]
