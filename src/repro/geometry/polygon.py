"""Simple planar polygons.

Partitions in a floor plan are rectangles or rectilinear polygons
(hallways with corners, U-shaped corridors).  The decomposition step
(Algorithm 3, :mod:`repro.geometry.decompose`) needs reflex-vertex
("turning point") detection and containment tests, both provided here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import GeometryError
from repro.geometry.rect import Rect

_EPS = 1e-9


@dataclass(frozen=True)
class Polygon:
    """A simple polygon given by its vertex ring (no repeated last vertex).

    Vertices are normalised to counter-clockwise orientation on
    construction; the input may be given in either orientation.
    """

    vertices: tuple[tuple[float, float], ...] = field(default=())

    def __init__(self, vertices) -> None:
        pts = [(float(x), float(y)) for x, y in vertices]
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise GeometryError(f"polygon needs >= 3 vertices, got {len(pts)}")
        if _signed_area(pts) < 0.0:
            pts.reverse()
        object.__setattr__(self, "vertices", tuple(pts))

    # -- constructions ---------------------------------------------------

    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        return Polygon(rect.corners())

    # -- measures ----------------------------------------------------------

    @property
    def area(self) -> float:
        return abs(_signed_area(list(self.vertices)))

    @property
    def centroid(self) -> tuple[float, float]:
        a = _signed_area(list(self.vertices))
        if abs(a) < _EPS:
            xs = [v[0] for v in self.vertices]
            ys = [v[1] for v in self.vertices]
            return (sum(xs) / len(xs), sum(ys) / len(ys))
        cx = cy = 0.0
        verts = self.vertices
        for i in range(len(verts)):
            x0, y0 = verts[i]
            x1, y1 = verts[(i + 1) % len(verts)]
            cross = x0 * y1 - x1 * y0
            cx += (x0 + x1) * cross
            cy += (y0 + y1) * cross
        return (cx / (6.0 * a), cy / (6.0 * a))

    def bounds(self) -> Rect:
        xs = [v[0] for v in self.vertices]
        ys = [v[1] for v in self.vertices]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def edges(self):
        """Yield consecutive vertex pairs ``((x0, y0), (x1, y1))``."""
        verts = self.vertices
        for i in range(len(verts)):
            yield verts[i], verts[(i + 1) % len(verts)]

    # -- predicates -----------------------------------------------------------

    def is_convex(self) -> bool:
        """True when no vertex is reflex (collinear vertices allowed)."""
        return not self.reflex_vertices()

    def is_rectilinear(self) -> bool:
        """True when every edge is axis-aligned."""
        return all(
            abs(a[0] - b[0]) < _EPS or abs(a[1] - b[1]) < _EPS
            for a, b in self.edges()
        )

    def is_rectangle(self) -> bool:
        """True when the polygon covers exactly its bounding rect."""
        if not self.is_rectilinear():
            return False
        return abs(self.area - self.bounds().area) < _EPS

    def reflex_vertices(self) -> list[tuple[float, float]]:
        """The *turning points* of Algorithm 3: vertices whose internal
        angle exceeds 180 degrees."""
        out = []
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            ax, ay = verts[(i - 1) % n]
            bx, by = verts[i]
            cx, cy = verts[(i + 1) % n]
            cross = (bx - ax) * (cy - by) - (by - ay) * (cx - bx)
            if cross < -_EPS:  # CCW ring => negative cross means reflex
                out.append(verts[i])
        return out

    def contains_xy(self, x: float, y: float) -> bool:
        """Point-in-polygon (boundary counts as inside)."""
        if self.on_boundary(x, y):
            return True
        inside = False
        verts = self.vertices
        n = len(verts)
        j = n - 1
        for i in range(n):
            xi, yi = verts[i]
            xj, yj = verts[j]
            if (yi > y) != (yj > y):
                x_cross = xi + (y - yi) / (yj - yi) * (xj - xi)
                if x < x_cross:
                    inside = not inside
            j = i
        return inside

    def on_boundary(self, x: float, y: float, tol: float = 1e-9) -> bool:
        for (x0, y0), (x1, y1) in self.edges():
            dx, dy = x1 - x0, y1 - y0
            len2 = dx * dx + dy * dy
            if len2 == 0.0:
                if math.hypot(x - x0, y - y0) <= tol:
                    return True
                continue
            t = ((x - x0) * dx + (y - y0) * dy) / len2
            t = max(0.0, min(1.0, t))
            if math.hypot(x - (x0 + t * dx), y - (y0 + t * dy)) <= tol:
                return True
        return False


def _signed_area(pts: list[tuple[float, float]]) -> float:
    s = 0.0
    n = len(pts)
    for i in range(n):
        x0, y0 = pts[i]
        x1, y1 = pts[(i + 1) % n]
        s += x0 * y1 - x1 * y0
    return s / 2.0
