"""ASCII rendering of floor plans.

Terminal-friendly visual checks for builders of spaces and debuggers of
queries: partitions are drawn as labelled regions, doors as ``+``,
staircases shaded, and arbitrary marks (query points, objects) overlaid.

Example::

    from repro import build_mall
    from repro.viz import render_floor

    print(render_floor(build_mall(floors=2), floor=0, width=100))
"""

from __future__ import annotations

import string

from repro.errors import SpaceError
from repro.geometry.point import Point
from repro.space.floorplan import IndoorSpace
from repro.space.partition import PartitionKind

#: glyph cycle for labelling partitions
_LABELS = string.ascii_uppercase + string.ascii_lowercase + string.digits


def render_floor(
    space: IndoorSpace,
    floor: int = 0,
    width: int = 80,
    marks: dict[str, Point] | None = None,
    show_legend: bool = True,
) -> str:
    """Render one floor as an ASCII grid.

    Parameters
    ----------
    space, floor:
        What to draw.
    width:
        Character width of the canvas; the height follows the floor's
        aspect ratio (each character cell is roughly square on screen,
        so vertical resolution is halved).
    marks:
        Optional ``{glyph: point}`` overlays, e.g. ``{"Q": q}`` for a
        query point; only single-character glyphs on this floor are
        drawn.
    show_legend:
        Append a label -> partition-id legend.
    """
    partitions = [p for p in space.partitions.values() if p.spans_floor(floor)]
    if not partitions:
        raise SpaceError(f"no partitions on floor {floor}")
    bounds = partitions[0].bounds
    for p in partitions[1:]:
        bounds = bounds.union(p.bounds)
    if width < 10:
        raise SpaceError("width must be at least 10 characters")
    sx = (width - 1) / max(bounds.width, 1e-9)
    height = max(3, int(round(bounds.height * sx / 2.0)) + 1)
    sy = (height - 1) / max(bounds.height, 1e-9)

    canvas = [[" "] * width for _ in range(height)]

    def to_cell(x: float, y: float) -> tuple[int, int]:
        col = int(round((x - bounds.minx) * sx))
        row = height - 1 - int(round((y - bounds.miny) * sy))
        return max(0, min(height - 1, row)), max(0, min(width - 1, col))

    legend: list[tuple[str, str]] = []
    ordered = sorted(partitions, key=lambda p: p.partition_id)
    for idx, partition in enumerate(ordered):
        if partition.kind is PartitionKind.STAIRCASE:
            glyph = "#"
        else:
            glyph = _LABELS[idx % len(_LABELS)]
            legend.append((glyph, partition.partition_id))
        r = partition.bounds
        r0, c0 = to_cell(r.minx, r.maxy)
        r1, c1 = to_cell(r.maxx, r.miny)
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                on_edge = row in (r0, r1) or col in (c0, c1)
                if on_edge:
                    canvas[row][col] = glyph if partition.kind is (
                        PartitionKind.STAIRCASE
                    ) else ("-" if row in (r0, r1) else "|")
                elif canvas[row][col] == " ":
                    # interior: label once near the top-left corner
                    if row == r0 + 1 and col == c0 + 1:
                        canvas[row][col] = glyph

    for door in space.doors.values():
        if door.midpoint.floor != floor:
            continue
        row, col = to_cell(door.midpoint.x, door.midpoint.y)
        canvas[row][col] = "+"

    for glyph, point in (marks or {}).items():
        if point.floor != floor or len(glyph) != 1:
            continue
        row, col = to_cell(point.x, point.y)
        canvas[row][col] = glyph

    lines = ["".join(row).rstrip() for row in canvas]
    out = [f"floor {floor}  ({bounds.width:g} m x {bounds.height:g} m)"]
    out.extend(lines)
    if show_legend and legend:
        out.append("")
        out.append("legend: # staircase, + door")
        for glyph, pid in legend:
            out.append(f"  {glyph} = {pid}")
    return "\n".join(out)


def render_building(
    space: IndoorSpace, width: int = 80, marks: dict[str, Point] | None = None
) -> str:
    """Render every floor, bottom to top."""
    floors = sorted(
        {
            f
            for p in space.partitions.values()
            for f in range(p.floor, p.upper_floor + 1)
        }
    )
    return "\n\n".join(
        render_floor(space, f, width=width, marks=marks, show_legend=False)
        for f in reversed(floors)
    )
