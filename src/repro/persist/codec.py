"""JSON codecs for the durable-state subsystem's payloads.

Checkpoints and WAL records both need plain-dict forms of the mutable
world: uncertain objects (exact float round-trip — ``json`` emits
``repr`` floats, so re-reading reproduces the bit pattern), position
moves, and topology events.  These are *persistence* codecs, distinct
from the delta wire protocol of :mod:`repro.api.wire`: the wire ships
result changes to subscribers, these ship the inputs that produced
them.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import PersistError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.objects.instances import InstanceSet
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.space.door import DoorDirection
from repro.space.events import (
    CloseDoor,
    MergePartitions,
    OpenDoor,
    SetDoorDirection,
    SplitPartition,
    TopologyEvent,
)


def _location_to_dict(
    region: Circle, instances: InstanceSet
) -> dict[str, Any]:
    return {
        "center": [
            float(region.center.x),
            float(region.center.y),
            int(region.center.floor),
        ],
        "radius": float(region.radius),
        "xy": instances.xy.tolist(),
        "probs": instances.probs.tolist(),
    }


def _location_from_dict(data: dict[str, Any]) -> tuple[Circle, InstanceSet]:
    try:
        x, y, floor = data["center"]
        region = Circle(
            Point(float(x), float(y), int(floor)), float(data["radius"])
        )
        instances = InstanceSet(
            np.asarray(data["xy"], dtype=float),
            int(floor),
            np.asarray(data["probs"], dtype=float),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed object location: {exc}") from None
    return region, instances


def object_to_dict(obj: UncertainObject) -> dict[str, Any]:
    """Plain-dict form of an uncertain object (id + region + samples)."""
    out = {"id": obj.object_id}
    out.update(_location_to_dict(obj.region, obj.instances))
    return out


def object_from_dict(data: dict[str, Any]) -> UncertainObject:
    """Inverse of :func:`object_to_dict`; raises ``PersistError``."""
    region, instances = _location_from_dict(data)
    return UncertainObject(str(data["id"]), region, instances)


def move_to_dict(move: ObjectMove) -> dict[str, Any]:
    """Plain-dict form of a position move (id + new location)."""
    out = {"id": move.object_id}
    out.update(_location_to_dict(move.new_region, move.new_instances))
    return out


def move_from_dict(data: dict[str, Any]) -> ObjectMove:
    """Inverse of :func:`move_to_dict`; raises ``PersistError``."""
    region, instances = _location_from_dict(data)
    return ObjectMove(str(data["id"]), region, instances)


# -- topology events ----------------------------------------------------

_EVENT_KINDS = ("split", "merge", "close_door", "open_door", "set_direction")


def event_to_dict(event: TopologyEvent) -> dict[str, Any]:
    """Plain-dict form of a topology event, discriminated by ``event``."""
    if isinstance(event, SplitPartition):
        return {
            "event": "split",
            "partition_id": event.partition_id,
            "axis": event.axis,
            "coord": float(event.coord),
            "new_ids": list(event.new_ids) if event.new_ids else None,
            "connecting_door": bool(event.connecting_door),
            "connecting_door_id": event.connecting_door_id,
        }
    if isinstance(event, MergePartitions):
        return {
            "event": "merge",
            "partition_ids": list(event.partition_ids),
            "new_id": event.new_id,
        }
    if isinstance(event, CloseDoor):
        return {"event": "close_door", "door_id": event.door_id}
    if isinstance(event, OpenDoor):
        return {"event": "open_door", "door_id": event.door_id}
    if isinstance(event, SetDoorDirection):
        return {
            "event": "set_direction",
            "door_id": event.door_id,
            "direction": event.direction.value,
            "from_partition": event.from_partition,
        }
    raise PersistError(
        f"cannot serialize topology event {type(event).__name__}"
    )


def event_from_dict(data: dict[str, Any]) -> TopologyEvent:
    """Inverse of :func:`event_to_dict`; raises ``PersistError``."""
    kind = data.get("event")
    try:
        if kind == "split":
            new_ids = data.get("new_ids")
            return SplitPartition(
                str(data["partition_id"]),
                str(data["axis"]),
                float(data["coord"]),
                new_ids=tuple(new_ids) if new_ids else None,
                connecting_door=bool(data.get("connecting_door", False)),
                connecting_door_id=data.get("connecting_door_id"),
            )
        if kind == "merge":
            ida, idb = data["partition_ids"]
            return MergePartitions(
                (str(ida), str(idb)), new_id=data.get("new_id")
            )
        if kind == "close_door":
            return CloseDoor(str(data["door_id"]))
        if kind == "open_door":
            return OpenDoor(str(data["door_id"]))
        if kind == "set_direction":
            return SetDoorDirection(
                str(data["door_id"]),
                DoorDirection(data["direction"]),
                from_partition=data.get("from_partition"),
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(
            f"malformed topology event record: {exc}"
        ) from None
    raise PersistError(f"unknown topology event kind {kind!r}")
