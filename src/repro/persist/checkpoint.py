"""Versioned, digest-sealed checkpoint files.

A checkpoint is one JSONL file capturing everything a
:class:`~repro.api.service.QueryService` needs to come back
bit-identical: the engine config, the indoor space (plus its
``topology_version``), the full object table **in insertion order**,
every standing query's spec and its maintainer's
:meth:`~repro.queries.maintainers.StandingQuery.snapshot` state **in
registration order** (both orders matter — dict iteration order is
delta *emission* order, so preserving them is part of bit-identity),
the ``reach_epoch`` (per shard when sharded), and the service's
auto-id counter.

Layout (one JSON object per line, canonical encoding)::

    {"type":"checkpoint","v":1,"spec_schema":1,"config":{...},
     "space":{...},"topology_version":3,"reach_epoch":[0,2],
     "next_auto_id":5,"n_objects":120,"n_queries":4,"extra":{...}}
    {"type":"object","id":"o1","center":[x,y,f],"radius":2.0,
     "xy":[[..]],"probs":[..]}                      # xN, in order
    {"type":"query","query_id":"irq-1","spec":{...},"state":{...}}
    {"type":"digest","algo":"sha256","hex":"...","records":125}

The digest line seals every preceding byte: a torn write (no digest
line), a truncated body, or any flipped bit raises
:class:`~repro.errors.PersistError` on read — recovery then falls back
to the previous manifest entry (see :mod:`repro.persist.store`) rather
than restoring silently-wrong state.  Writes are atomic
(tmp + fsync + ``os.replace``), so a crash mid-checkpoint leaves the
previous checkpoint intact and never a half-file under the final name.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.specs import SPEC_SCHEMA_VERSION
from repro.errors import PersistError

#: Version stamped into every checkpoint header; readers reject
#: versions they do not know how to restore.
CHECKPOINT_VERSION = 1


def _dumps(payload: dict[str, Any]) -> str:
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise PersistError(f"unencodable checkpoint record: {exc}") from None


@dataclass
class CheckpointState:
    """The deserialized content of one checkpoint file — the value
    :meth:`repro.api.service.QueryService.checkpoint` captures and
    :meth:`~repro.api.service.QueryService.restore` rebuilds from."""

    config: dict[str, Any]
    space: dict[str, Any]
    topology_version: int
    #: One epoch for a single engine, one per shard when sharded.
    reach_epoch: int | list[int]
    next_auto_id: int
    #: ``object_to_dict`` payloads, population insertion order.
    objects: list[dict[str, Any]] = field(default_factory=list)
    #: ``{"query_id", "spec", "state"}`` payloads, registration order.
    queries: list[dict[str, Any]] = field(default_factory=list)
    #: Opaque caller payload carried through the round trip (the net
    #: layer stores its resume-session table here).
    extra: dict[str, Any] = field(default_factory=dict)


def write_checkpoint(path: str | Path, state: CheckpointState) -> int:
    """Write ``state`` atomically to ``path``; returns bytes written.

    The file appears under its final name only complete and sealed:
    content goes to a same-directory tmp file, is fsynced, then
    ``os.replace``\\ d into place.
    """
    path = Path(path)
    header = {
        "type": "checkpoint",
        "v": CHECKPOINT_VERSION,
        "spec_schema": SPEC_SCHEMA_VERSION,
        "config": state.config,
        "space": state.space,
        "topology_version": state.topology_version,
        "reach_epoch": state.reach_epoch,
        "next_auto_id": state.next_auto_id,
        "n_objects": len(state.objects),
        "n_queries": len(state.queries),
        "extra": state.extra,
    }
    lines = [_dumps(header)]
    for obj in state.objects:
        lines.append(_dumps({"type": "object", **obj}))
    for query in state.queries:
        lines.append(_dumps({"type": "query", **query}))
    body = "".join(line + "\n" for line in lines).encode()
    digest = {
        "type": "digest",
        "algo": "sha256",
        "hex": hashlib.sha256(body).hexdigest(),
        "records": len(lines),
    }
    blob = body + (_dumps(digest) + "\n").encode()
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fp:
        fp.write(blob)
        fp.flush()
        os.fsync(fp.fileno())
    os.replace(tmp, path)
    return len(blob)


def read_checkpoint(path: str | Path) -> CheckpointState:
    """Read and verify a checkpoint; :class:`PersistError` on a
    missing/torn/corrupt/unknown-version file (recovery treats any of
    these as "this entry is unusable, fall back")."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise PersistError(f"unreadable checkpoint {path}: {exc}") from None
    lines = raw.decode(errors="replace").splitlines()
    if not lines:
        raise PersistError(f"empty checkpoint {path}")
    try:
        tail = json.loads(lines[-1])
    except json.JSONDecodeError:
        raise PersistError(
            f"torn checkpoint {path}: no digest line"
        ) from None
    if not isinstance(tail, dict) or tail.get("type") != "digest":
        raise PersistError(f"torn checkpoint {path}: no digest line")
    body = "".join(line + "\n" for line in lines[:-1]).encode()
    if tail.get("algo") != "sha256":
        raise PersistError(
            f"checkpoint {path}: unknown digest algo {tail.get('algo')!r}"
        )
    if hashlib.sha256(body).hexdigest() != tail.get("hex"):
        raise PersistError(f"checkpoint {path}: content digest mismatch")
    if tail.get("records") != len(lines) - 1:
        raise PersistError(f"checkpoint {path}: record count mismatch")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise PersistError(f"checkpoint {path}: bad header: {exc}") from None
    if header.get("type") != "checkpoint":
        raise PersistError(f"checkpoint {path}: missing header record")
    if header.get("v") != CHECKPOINT_VERSION:
        raise PersistError(
            f"unsupported checkpoint version {header.get('v')!r} "
            f"(this build reads version {CHECKPOINT_VERSION})"
        )
    if header.get("spec_schema") != SPEC_SCHEMA_VERSION:
        raise PersistError(
            f"unsupported spec schema {header.get('spec_schema')!r} "
            f"in checkpoint {path}"
        )
    objects: list[dict[str, Any]] = []
    queries: list[dict[str, Any]] = []
    for line in lines[1:-1]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:  # pragma: no cover - sealed
            raise PersistError(
                f"checkpoint {path}: bad record: {exc}"
            ) from None
        rtype = record.get("type")
        if rtype == "object":
            objects.append(record)
        elif rtype == "query":
            queries.append(record)
        else:
            raise PersistError(
                f"checkpoint {path}: unknown record type {rtype!r}"
            )
    if len(objects) != header.get("n_objects") or len(queries) != header.get(
        "n_queries"
    ):
        raise PersistError(f"checkpoint {path}: body/header count mismatch")
    return CheckpointState(
        config=header["config"],
        space=header["space"],
        topology_version=int(header["topology_version"]),
        reach_epoch=header["reach_epoch"],
        next_auto_id=int(header["next_auto_id"]),
        objects=objects,
        queries=queries,
        extra=header.get("extra", {}),
    )
