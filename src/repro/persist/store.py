"""Checkpoint + WAL directory store: the crash-recovery protocol.

A :class:`CheckpointStore` owns one directory::

    MANIFEST.jsonl          {"m":1,"seq":3,"checkpoint":"checkpoint-000003.jsonl","wal":"wal-000003.jsonl"}
    checkpoint-000003.jsonl (digest-sealed snapshot, see persist.checkpoint)
    wal-000003.jsonl        (mutations absorbed since that snapshot)

The protocol, in write order (each step leaves a recoverable
directory, whatever instant the process dies at):

1. **checkpoint** — write ``checkpoint-{seq}`` atomically
   (tmp + fsync + rename);
2. **rotate** — open ``wal-{seq}`` and swing the service's
   :class:`~repro.persist.wal.WalWriter` onto it (the first checkpoint
   *attaches* the writer), so every later mutation lands in the new
   segment;
3. **manifest** — rewrite ``MANIFEST.jsonl`` atomically with the new
   entry appended;
4. **compact** — drop manifest entries (and their files) older than
   the last ``keep`` checkpoints.  ``keep=2`` is the default: the
   previous sealed checkpoint survives as the fallback target should
   the newest turn out corrupt on read.

:meth:`CheckpointStore.recover` inverts it: newest manifest entry
whose checkpoint reads clean (digest verified) → restore a service
from it → replay **every** WAL segment with ``seq >=`` the chosen
entry's, in order, torn-tail tolerant — the segment glob (rather than
the manifest) closes the crash window between steps 2 and 3, where
records land in a segment the manifest does not reference yet.  A
fresh checkpoint is then cut immediately (never append after a torn
tail), so the next crash recovers from a clean segment.

Replay re-drives the *inputs* through the restored service's own
verbs, which is what reconverges everything — results, delta emission
order, even auto-allocated query ids (the WAL ``watch`` records carry
the id counter) — bit-identically to the uninterrupted run.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.api.wire import FeedReadStats
from repro.errors import PersistError
from repro.persist.checkpoint import read_checkpoint
from repro.persist.wal import (
    WalDelete,
    WalEvent,
    WalInsert,
    WalMoves,
    WalRecord,
    WalUnwatch,
    WalWatch,
    WalWriter,
    read_wal,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import QueryService, ServiceConfig

#: Manifest line schema version.
MANIFEST_VERSION = 1

_MANIFEST = "MANIFEST.jsonl"


def _seq_of(path: Path) -> int | None:
    """The zero-padded sequence number in ``checkpoint-NNNNNN.jsonl`` /
    ``wal-NNNNNN.jsonl`` file names (``None`` for foreign files)."""
    stem = path.stem
    _, _, tail = stem.rpartition("-")
    try:
        return int(tail)
    except ValueError:
        return None


@dataclass
class RecoveryReport:
    """What one :meth:`CheckpointStore.recover` pass did."""

    #: Sequence number of the checkpoint actually restored from.
    restored_seq: int = 0
    #: Sequence number of the fresh post-recovery checkpoint.
    checkpoint_seq: int = 0
    #: WAL records replayed onto the checkpoint.
    wal_records: int = 0
    #: Torn final WAL records skipped (at most one per segment).
    torn_tail: int = 0
    #: Manifest entries skipped because their checkpoint was unreadable
    #: (torn, digest mismatch, unknown version).
    fell_back: int = 0
    #: The ``extra`` payload carried by the restored checkpoint (the
    #: net layer keeps its resume-session table here).
    extra: dict[str, Any] = field(default_factory=dict)


class CheckpointStore:
    """Durable home of one service's checkpoints and WAL segments."""

    def __init__(self, root: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise PersistError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._wal_writer: WalWriter | None = None

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def read_manifest(self) -> list[dict[str, Any]]:
        """Manifest entries, oldest first.  Undecodable lines (a torn
        final append) are skipped, not fatal — the entries that did
        land durably are exactly what recovery should see."""
        path = self.root / _MANIFEST
        try:
            text = path.read_text()
        except OSError:
            return []
        entries: list[dict[str, Any]] = []
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(data, dict)
                and data.get("m") == MANIFEST_VERSION
                and isinstance(data.get("seq"), int)
            ):
                entries.append(data)
        entries.sort(key=lambda e: e["seq"])
        return entries

    def _write_manifest(self, entries: list[dict[str, Any]]) -> None:
        path = self.root / _MANIFEST
        tmp = path.with_name(path.name + ".tmp")
        blob = "".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for e in entries
        ).encode()
        with open(tmp, "wb") as fp:
            fp.write(blob)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # checkpoint + rotation + compaction
    # ------------------------------------------------------------------

    def checkpoint(
        self,
        service: "QueryService",
        extra: dict[str, Any] | None = None,
    ) -> int:
        """Cut a durable point: snapshot ``service``, rotate its WAL
        onto a fresh segment, publish the manifest entry, compact.
        Returns the new sequence number."""
        entries = self.read_manifest()
        seq = (entries[-1]["seq"] + 1) if entries else 1
        ckpt_name = f"checkpoint-{seq:06d}.jsonl"
        wal_name = f"wal-{seq:06d}.jsonl"
        # The service rotates onto the new segment *inside* its writer
        # lock, atomically with the snapshot capture: every mutation
        # lands strictly before the cut (old segment) or after it (new
        # segment), never astride.  If the process dies between the
        # rotation and the manifest append below, the orphan segment is
        # still replayed — recovery globs segments by sequence number
        # rather than trusting the manifest's ``wal`` field.
        fp = open(self.root / wal_name, "a", encoding="utf-8")
        service.checkpoint(
            self.root / ckpt_name, extra=extra, rotate_wal_to=fp
        )
        self._wal_writer = service._wal
        entries.append(
            {
                "m": MANIFEST_VERSION,
                "seq": seq,
                "checkpoint": ckpt_name,
                "wal": wal_name,
            }
        )
        self._compact(entries)
        return seq

    #: :meth:`attach` is :meth:`checkpoint` by another name: hooking a
    #: live service up to a store *is* cutting its first durable point.
    attach = checkpoint

    def close(self) -> None:
        """Detach and close the WAL writer (idempotent)."""
        if self._wal_writer is not None:
            writer, self._wal_writer = self._wal_writer, None
            try:
                writer.rotate(None).close()  # type: ignore[arg-type]
            except (OSError, AttributeError):  # pragma: no cover
                pass

    def _compact(self, entries: list[dict[str, Any]]) -> None:
        kept = entries[-self.keep :]
        self._write_manifest(kept)
        min_seq = kept[0]["seq"]
        for pattern in ("checkpoint-*.jsonl", "wal-*.jsonl"):
            for path in self.root.glob(pattern):
                seq = _seq_of(path)
                if seq is not None and seq < min_seq:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - best effort
                        pass

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def recover(
        self, config: "ServiceConfig | None" = None
    ) -> tuple["QueryService", RecoveryReport]:
        """Bring a service back from this directory: newest readable
        checkpoint + full WAL tail replay + a fresh durable point.
        ``config`` overrides the checkpointed engine config (e.g.
        restart a single-engine checkpoint sharded); the default
        restores the recorded one."""
        from repro.api.service import QueryService

        entries = self.read_manifest()
        if not entries:
            raise PersistError(f"nothing to recover in {self.root}")
        report = RecoveryReport()
        state = None
        chosen: dict[str, Any] | None = None
        for entry in reversed(entries):
            try:
                state = read_checkpoint(self.root / entry["checkpoint"])
                chosen = entry
                break
            except PersistError:
                report.fell_back += 1
        if state is None or chosen is None:
            raise PersistError(
                f"no readable checkpoint among {len(entries)} manifest "
                f"entries in {self.root}"
            )
        service = QueryService.from_state(state, config=config)
        stats = FeedReadStats()
        segments = sorted(
            (seq, path)
            for path in self.root.glob("wal-*.jsonl")
            if (seq := _seq_of(path)) is not None and seq >= chosen["seq"]
        )
        for _seq, path in segments:
            with open(path, encoding="utf-8") as fp:
                for record in read_wal(fp, stats):
                    _replay_record(service, record)
        report.restored_seq = chosen["seq"]
        report.wal_records = stats.records
        report.torn_tail = stats.torn_tail
        report.extra = dict(state.extra)
        # A fresh durable point: recovery never appends to a segment
        # that may end in a torn record, and the next crash replays
        # from here instead of the whole tail again.
        report.checkpoint_seq = self.checkpoint(service, extra=state.extra)
        return service, report


def _replay_record(service: "QueryService", record: WalRecord) -> None:
    """Re-drive one logged input through the service's own verbs (the
    service has no WAL attached during replay, so nothing re-logs)."""
    if isinstance(record, WalWatch):
        service.watch(record.spec, query_id=record.query_id)
        # Auto-id convergence: a replayed watch registers by explicit
        # id, so the counter must be moved to where the live
        # registration left it (it is shared across kinds).
        service._id_counter.value = record.next_auto
    elif isinstance(record, WalUnwatch):
        service.unwatch(record.query_id)
    elif isinstance(record, WalMoves):
        service.ingest(list(record.moves))
    elif isinstance(record, WalInsert):
        service.insert(record.obj)
    elif isinstance(record, WalDelete):
        service.delete(record.object_id)
    elif isinstance(record, WalEvent):
        service.apply_event(record.event)
    else:  # pragma: no cover - decode_wal_record is exhaustive
        raise PersistError(f"unreplayable record {type(record).__name__}")


def recover(
    root: str | Path,
    config: "ServiceConfig | None" = None,
    keep: int = 2,
) -> tuple["QueryService", RecoveryReport]:
    """Module-level convenience: recover a service from a checkpoint
    directory.  The returned store state lives inside the report's
    companion — callers that keep checkpointing should construct a
    :class:`CheckpointStore` instead; this shorthand suits one-shot
    tail consumers (``examples/delta_tail.py --from-checkpoint``)."""
    return CheckpointStore(root, keep=keep).recover(config=config)
