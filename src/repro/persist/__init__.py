"""Durable state: checkpoint/restore and WAL-backed crash recovery.

The in-memory library becomes a restartable server here:

* :mod:`repro.persist.checkpoint` — versioned, digest-sealed JSONL
  snapshots of a whole :class:`~repro.api.service.QueryService`
  (objects, specs, maintainer states, epochs, id counter), written
  atomically;
* :mod:`repro.persist.wal` — a write-ahead log of service *input*
  mutations, flushed per record, torn-tail tolerant on read;
* :mod:`repro.persist.store` — the directory protocol tying them
  together: a manifest linking each checkpoint to its WAL segment,
  rotation at checkpoint boundaries, compaction past the last ``keep``
  durable points, and :func:`~repro.persist.store.recover` — newest
  readable checkpoint + WAL tail replay, reconverging bit-identically
  to the uninterrupted run.

See the "Durability and recovery" section of :mod:`repro.api` for the
format and the restart guarantees.
"""

from repro.persist.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointState,
    read_checkpoint,
    write_checkpoint,
)
from repro.persist.store import (
    CheckpointStore,
    RecoveryReport,
    recover,
)
from repro.persist.wal import (
    WAL_VERSION,
    WalDelete,
    WalEvent,
    WalInsert,
    WalMoves,
    WalRecord,
    WalUnwatch,
    WalWatch,
    WalWriter,
    read_wal,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "WAL_VERSION",
    "CheckpointState",
    "CheckpointStore",
    "RecoveryReport",
    "WalDelete",
    "WalEvent",
    "WalInsert",
    "WalMoves",
    "WalRecord",
    "WalUnwatch",
    "WalWatch",
    "WalWriter",
    "read_checkpoint",
    "read_wal",
    "recover",
    "write_checkpoint",
]
