"""Write-ahead log of service *input* mutations.

The delta feeds of :mod:`repro.api.wire` record *outputs* (result
changes); replaying them reconstructs results but not the engine — the
index, the session caches, the maintainer internals.  The WAL records
the **inputs** instead: every mutation the service absorbed after the
last checkpoint (watch/unwatch, moves, insert, delete, topology event),
so recovery can re-drive them through a restored service and land on
the *same engine state* the crashed process had — results, deltas, and
auto-allocated query ids all bit-identical.

One JSON object per line, canonical encoding, ``"w"`` stamping
:data:`WAL_VERSION`::

    {"w":1,"op":"watch","query_id":"irq-2","spec":{...},"next_auto":3}
    {"w":1,"op":"unwatch","query_id":"irq-2"}
    {"w":1,"op":"moves","moves":[{...move...}, ...]}
    {"w":1,"op":"insert","object":{...}}
    {"w":1,"op":"delete","object_id":"o7"}
    {"w":1,"op":"event","body":{"event":"close_door","door_id":"d3"}}

``watch`` carries ``next_auto`` — the service's auto-id counter *after*
the registration — because replay registers by explicit id: without
restoring the counter, a recovered service would mint different ids for
the next auto-named watch than the uninterrupted one (the counter is
shared across kinds, so an ``iknn-3`` minted before the crash must
leave ``irq-…`` allocation at 4, not 3).

Each record is flushed (and fsynced when the stream exposes a file
descriptor) as it is written — the WAL is the durability boundary.  A
process killed mid-write leaves at most one torn final line, which
:func:`read_wal` skips and counts exactly like the feed reader's
torn-tail rule; corruption anywhere earlier raises.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator

from repro.api.specs import QuerySpec, spec_from_dict
from repro.api.wire import FeedReadStats
from repro.errors import PersistError, QueryError
from repro.objects.population import ObjectMove
from repro.objects.uncertain import UncertainObject
from repro.persist.codec import (
    event_from_dict,
    event_to_dict,
    move_from_dict,
    move_to_dict,
    object_from_dict,
    object_to_dict,
)
from repro.space.events import TopologyEvent

#: Version stamped into every WAL line; readers reject unknown ones.
WAL_VERSION = 1


@dataclass(frozen=True)
class WalWatch:
    """A standing-query registration (``op: "watch"``)."""

    query_id: str
    spec: QuerySpec
    #: The service auto-id counter value after this registration.
    next_auto: int


@dataclass(frozen=True)
class WalUnwatch:
    """A standing-query deregistration (``op: "unwatch"``)."""

    query_id: str


@dataclass(frozen=True)
class WalMoves:
    """One ingested batch of position moves (``op: "moves"``)."""

    moves: tuple[ObjectMove, ...]


@dataclass(frozen=True)
class WalInsert:
    """An object insertion (``op: "insert"``)."""

    obj: UncertainObject


@dataclass(frozen=True)
class WalDelete:
    """An object deletion (``op: "delete"``)."""

    object_id: str


@dataclass(frozen=True)
class WalEvent:
    """An applied topology event (``op: "event"``)."""

    event: TopologyEvent


WalRecord = WalWatch | WalUnwatch | WalMoves | WalInsert | WalDelete | WalEvent


def _dumps(payload: dict[str, Any]) -> str:
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise PersistError(f"unencodable WAL record: {exc}") from None


def encode_wal_record(record: WalRecord) -> str:
    """One canonical JSON line for ``record`` (no trailing newline)."""
    if isinstance(record, WalWatch):
        payload: dict[str, Any] = {
            "w": WAL_VERSION,
            "op": "watch",
            "query_id": record.query_id,
            "spec": record.spec.to_dict(),
            "next_auto": record.next_auto,
        }
    elif isinstance(record, WalUnwatch):
        payload = {
            "w": WAL_VERSION,
            "op": "unwatch",
            "query_id": record.query_id,
        }
    elif isinstance(record, WalMoves):
        payload = {
            "w": WAL_VERSION,
            "op": "moves",
            "moves": [move_to_dict(m) for m in record.moves],
        }
    elif isinstance(record, WalInsert):
        payload = {
            "w": WAL_VERSION,
            "op": "insert",
            "object": object_to_dict(record.obj),
        }
    elif isinstance(record, WalDelete):
        payload = {
            "w": WAL_VERSION,
            "op": "delete",
            "object_id": record.object_id,
        }
    elif isinstance(record, WalEvent):
        payload = {
            "w": WAL_VERSION,
            "op": "event",
            "body": event_to_dict(record.event),
        }
    else:
        raise PersistError(
            f"cannot encode {type(record).__name__} as a WAL record"
        )
    return _dumps(payload)


def decode_wal_record(line: str) -> WalRecord:
    """Inverse of :func:`encode_wal_record`; raises ``PersistError``."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise PersistError(f"malformed WAL line: {exc}") from None
    if not isinstance(data, dict):
        raise PersistError(f"WAL record must be an object, got {data!r}")
    if data.get("w") != WAL_VERSION:
        raise PersistError(
            f"unsupported WAL version {data.get('w')!r} "
            f"(this build reads version {WAL_VERSION})"
        )
    op = data.get("op")
    try:
        if op == "watch":
            return WalWatch(
                str(data["query_id"]),
                spec_from_dict(data["spec"]),
                int(data["next_auto"]),
            )
        if op == "unwatch":
            return WalUnwatch(str(data["query_id"]))
        if op == "moves":
            return WalMoves(
                tuple(move_from_dict(m) for m in data["moves"])
            )
        if op == "insert":
            return WalInsert(object_from_dict(data["object"]))
        if op == "delete":
            return WalDelete(str(data["object_id"]))
        if op == "event":
            return WalEvent(event_from_dict(data["body"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise PersistError(f"malformed WAL {op!r} record: {exc}") from None
    except QueryError as exc:  # bad embedded spec
        raise PersistError(f"malformed WAL watch record: {exc}") from None
    raise PersistError(f"unknown WAL op {op!r}")


class WalWriter:
    """Appends WAL records to a text stream, flushing each one (the
    record is the durability unit — a checkpoint bounds how many of
    them recovery ever replays).

    :meth:`rotate` swaps the underlying stream at a checkpoint
    boundary: the service keeps one logical WAL while the store starts
    a fresh segment per checkpoint and compacts old ones.
    """

    def __init__(self, fp: IO[str]) -> None:
        self._fp = fp
        self.records_written = 0

    def write(self, record: WalRecord) -> None:
        """Append ``record`` and make it durable (flush + fsync)."""
        self._fp.write(encode_wal_record(record) + "\n")
        self._fp.flush()
        try:
            os.fsync(self._fp.fileno())
        except (OSError, ValueError, AttributeError):
            pass  # in-memory streams (tests) have no descriptor
        self.records_written += 1

    def rotate(self, fp: IO[str]) -> IO[str]:
        """Direct subsequent records to ``fp``; returns the previous
        stream (the caller owns closing it)."""
        old, self._fp = self._fp, fp
        return old


def read_wal(
    lines: Iterable[str],
    stats: FeedReadStats | None = None,
) -> Iterator[WalRecord]:
    """Decode a WAL segment line by line, tolerating exactly one torn
    *final* record (the write the crash interrupted) — skipped and
    counted in ``stats.torn_tail``.  A bad line anywhere earlier
    raises: mid-log corruption means replay cannot be trusted."""
    pending: PersistError | None = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        if pending is not None:
            raise pending
        try:
            record = decode_wal_record(line)
        except PersistError as exc:
            pending = exc
            continue
        if stats is not None:
            stats.records += 1
        yield record
    if pending is not None and stats is not None:
        stats.torn_tail += 1
