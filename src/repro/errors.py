"""Exception hierarchy for the repro package.

All library errors derive from :class:`ReproError` so callers can catch a
single type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GeometryError(ReproError):
    """Invalid geometric input (degenerate polygon, negative radius, ...)."""


class SpaceError(ReproError):
    """Inconsistent indoor-space model (unknown partition, bad door, ...)."""


class TopologyError(SpaceError):
    """A topology event could not be applied (e.g. splitting along a line
    that does not intersect the partition)."""


class IndexError_(ReproError):
    """Composite-index invariant violation or misuse.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """Invalid query parameters (negative range, k < 1, point outside the
    building, ...)."""


class WireError(ReproError):
    """Malformed or unsupported wire-protocol data (bad JSON line,
    unknown record type, unsupported wire version, non-finite float)."""


class FramingError(WireError):
    """Corrupt network frame (bad header, oversized frame, or a
    sequence-number violation — a duplicated, dropped or reordered
    frame on a connection)."""


class PersistError(ReproError):
    """Durable-state failure: a torn or digest-mismatched checkpoint,
    an unreadable manifest, an unknown checkpoint/WAL schema version,
    or a recovery directory with nothing recoverable in it."""


class NetError(ReproError):
    """Network serving failure surfaced to the caller (negotiation
    refused, peer error record, dead connection past the reconnect
    budget, barrier timeout)."""


class ProcPoolError(ReproError):
    """Process shard-pool failure surfaced to the caller: a worker
    crashed (or hung past the request timeout) more times than the
    restart budget allows, or the pool was used after ``close()``."""


class UnreachableError(QueryError):
    """The query point cannot reach the requested entity through any path
    in the doors graph (e.g. isolated partition or one-way dead end)."""
