"""repro — reproduction of *Efficient Distance-Aware Query Evaluation on
Indoor Moving Objects* (Xie, Lu, Pedersen; ICDE 2013).

The package implements the paper's full stack:

* :mod:`repro.geometry` — planar/3-D primitives, weighted bisectors
  (Table II) and partition decomposition (Algorithm 3);
* :mod:`repro.space` — the indoor-space model (partitions, doors,
  staircases), the doors graph, a synthetic mall generator and topology
  events;
* :mod:`repro.objects` — uncertain indoor moving objects with discrete
  instance sets (Section II-B);
* :mod:`repro.index` — the composite index: R*-tree tree tier, skeleton
  tier, topological layer and object layer (Section III);
* :mod:`repro.distances` — expected indoor distances (Eqs. 2-6) and the
  pruning bounds (Lemmas 1-6);
* :mod:`repro.queries` — the iRQ and ikNNQ processors (Algorithms 1-2);
* :mod:`repro.baselines` — the naive evaluator, the pre-computation
  alternative and ablation variants;
* :mod:`repro.bench` — the experiment harness regenerating Figures 12-15.

Quickstart::

    from repro import build_mall, ObjectGenerator, CompositeIndex, iRQ

    space = build_mall(floors=2, seed=7)
    objects = ObjectGenerator(space, seed=7).generate(200)
    index = CompositeIndex.build(space, objects)
    q = space.random_point(seed=1)
    hits = iRQ(q, r=80.0, index=index)
"""

import importlib

__version__ = "1.0.0"

# Public name -> defining module.  Resolved lazily via __getattr__ so that
# importing `repro` stays cheap and avoids import cycles between the
# subpackages.
_EXPORTS = {
    "Point": "repro.geometry",
    "Rect": "repro.geometry",
    "Box3": "repro.geometry",
    "Circle": "repro.geometry",
    "Polygon": "repro.geometry",
    "Door": "repro.space",
    "DoorDirection": "repro.space",
    "IndoorSpace": "repro.space",
    "Partition": "repro.space",
    "PartitionKind": "repro.space",
    "SpaceBuilder": "repro.space",
    "build_mall": "repro.space.mall",
    "InstanceSet": "repro.objects",
    "UncertainObject": "repro.objects",
    "MovementStream": "repro.objects",
    "ObjectGenerator": "repro.objects",
    "ObjectMove": "repro.objects",
    "ObjectPopulation": "repro.objects",
    "CompositeIndex": "repro.index",
    "IndRTree": "repro.index",
    "RStarTree": "repro.index",
    "SkeletonTier": "repro.index",
    "DistanceInterval": "repro.distances",
    "euclidean": "repro.distances",
    "expected_indoor_distance": "repro.distances",
    "object_bounds": "repro.distances",
    "iRQ": "repro.queries",
    "ikNNQ": "repro.queries",
    "iPRQ": "repro.queries",
    "QuerySpec": "repro.api",
    "RangeSpec": "repro.api",
    "KNNSpec": "repro.api",
    "ProbRangeSpec": "repro.api",
    "CountSpec": "repro.api",
    "OccupancySpec": "repro.api",
    "QueryService": "repro.api",
    "ServiceConfig": "repro.api",
    "CheckpointStore": "repro.persist",
    "RecoveryReport": "repro.persist",
    "recover": "repro.persist",
    "NetServer": "repro.api",
    "NetClient": "repro.api",
    "AsyncNetClient": "repro.api",
    "ServerThread": "repro.api",
    "QueryStats": "repro.queries",
    "QuerySession": "repro.queries",
    "QueryMonitor": "repro.queries",
    "MonitorStats": "repro.queries",
    "StandingQuery": "repro.queries",
    "register_maintainer": "repro.queries",
    "ResultDelta": "repro.queries",
    "DeltaBatch": "repro.queries",
    "replay_deltas": "repro.queries",
    "ShardedMonitor": "repro.queries",
    "ShardStats": "repro.queries",
    "MonitorServer": "repro.queries",
    "Subscription": "repro.queries",
    "NaiveEvaluator": "repro.baselines",
    "PrecomputedDistanceIndex": "repro.baselines",
    "render_floor": "repro.viz",
    "render_building": "repro.viz",
    "save_space": "repro.space.io",
    "load_space": "repro.space.io",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "Point",
    "Rect",
    "Box3",
    "Circle",
    "Polygon",
    "Door",
    "DoorDirection",
    "IndoorSpace",
    "Partition",
    "PartitionKind",
    "SpaceBuilder",
    "build_mall",
    "InstanceSet",
    "UncertainObject",
    "MovementStream",
    "ObjectGenerator",
    "ObjectMove",
    "ObjectPopulation",
    "CompositeIndex",
    "IndRTree",
    "RStarTree",
    "SkeletonTier",
    "DistanceInterval",
    "euclidean",
    "expected_indoor_distance",
    "object_bounds",
    "iRQ",
    "ikNNQ",
    "iPRQ",
    "QuerySpec",
    "RangeSpec",
    "KNNSpec",
    "ProbRangeSpec",
    "CountSpec",
    "OccupancySpec",
    "QueryService",
    "ServiceConfig",
    "CheckpointStore",
    "RecoveryReport",
    "recover",
    "NetServer",
    "NetClient",
    "AsyncNetClient",
    "ServerThread",
    "QueryStats",
    "QuerySession",
    "QueryMonitor",
    "MonitorStats",
    "StandingQuery",
    "register_maintainer",
    "ResultDelta",
    "DeltaBatch",
    "replay_deltas",
    "ShardedMonitor",
    "ShardStats",
    "MonitorServer",
    "Subscription",
    "NaiveEvaluator",
    "PrecomputedDistanceIndex",
    "render_floor",
    "render_building",
    "save_space",
    "load_space",
    "__version__",
]
