"""Upper/lower bounds for expected indoor distances (Section II-D).

The query processors prune objects by interval arithmetic instead of
exact evaluation:

* **Topological bounds** (Lemmas 1-2, Eq. 7): per subregion ``S``,
  ``tmin(S) = min_d (|q, d|_I + |d, S|_E^min)`` over the entry doors of
  ``S``'s partition (plus the direct path for the query's own
  partition), and symmetrically ``tmax``; then
  ``min tmin <= |q, O|_I <= max tmax``.
* **Topological Looser Upper Bound** (Lemma 3, "TLU"): like ``tmax``
  but with *some* known path length instead of the shortest — cheap to
  obtain during seed selection, used to set the kNN search radius.
* **Markov lower bound** (Lemma 4) and **probabilistic bounds**
  (Lemma 5): for multi-partition objects, split the expectation at a
  prefix of subregions sorted by minimum distance and bound each part.
  As printed, the paper's Lemma 5 assumes the prefix/suffix distance
  ranges separate; we implement the always-valid refinement (prefix
  bounded by its own extrema, suffix by its own) which degenerates to
  the topological bounds exactly as the paper notes — see DESIGN.md.
* **Weighted topological bounds** (extension, not in the paper):
  ``sum_j mass_j * tmin_j <= E <= sum_j mass_j * tmax_j`` — strictly
  tighter than Lemmas 1-2 whenever an object spans partitions; exposed
  for the bounds-tightness ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import QueryError
from repro.geometry.point import Point
from repro.objects.uncertain import Subregion, UncertainObject
from repro.space.doors_graph import DoorDistances
from repro.space.floorplan import IndoorSpace


@dataclass(frozen=True)
class DistanceInterval:
    """``[lower, upper]`` enclosing an (expected) indoor distance."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower > self.upper + 1e-9:
            raise QueryError(
                f"inverted interval [{self.lower}, {self.upper}]"
            )

    def entirely_within(self, r: float) -> bool:
        """The true distance is certainly <= r."""
        return self.upper <= r

    def entirely_beyond(self, r: float) -> bool:
        """The true distance is certainly > r."""
        return self.lower > r

    def intersect(self, other: "DistanceInterval") -> "DistanceInterval":
        """Combine two valid intervals into a tighter one."""
        return DistanceInterval(
            max(self.lower, other.lower), min(self.upper, other.upper)
        )


@dataclass(frozen=True)
class SubregionStats:
    """``tmin``/``tmax`` of one subregion (Lemmas 1-2 ingredients)."""

    partition_id: str
    tmin: float
    tmax: float
    mass: float


def subregion_stats(
    q: Point,
    subregion: Subregion,
    dd: DoorDistances,
    space: IndoorSpace,
    unreached_floor: float | None = None,
) -> SubregionStats:
    """Compute ``tmin(S)`` and ``tmax(S)`` for one subregion.

    ``tmin(S) = min_{ds} (|q, ds|_I + |ds, S|_E^min)`` and
    ``tmax(S) = min_{ds} (|q, ds|_I + |ds, S|_E^max)`` — note both take
    the *min* over doors: tmax bounds the worst instance of the best
    door.  For the query's own partition the direct Euclidean path
    participates as well.

    ``unreached_floor`` handles a subtlety of the subgraph phase: when
    ``dd`` came from a cutoff/subgraph-restricted Dijkstra with bound
    ``c``, a door it did not reach is *proven* to be farther than ``c``
    (every shorter path lies inside the restriction).  Passing ``c``
    here turns "unreachable" into the valid finite lower bound
    ``tmin = c`` (the upper bound stays infinite), keeping the interval
    sound for multi-partition objects that straddle the search radius.
    """
    fh = space.floor_height
    instances = subregion.instances
    tmin = math.inf
    tmax = math.inf
    for door in space.entry_doors(subregion.partition_id):
        w = dd.distance_to(door.door_id)
        if not math.isfinite(w):
            continue
        tmin = min(tmin, w + instances.min_distance_to(door.midpoint, fh))
        tmax = min(tmax, w + instances.max_distance_to(door.midpoint, fh))
    if subregion.partition_id == dd.source_partition:
        tmin = min(tmin, instances.min_distance_to(q, fh))
        tmax = min(tmax, instances.max_distance_to(q, fh))
    if not math.isfinite(tmin) and unreached_floor is not None:
        tmin = unreached_floor
    return SubregionStats(subregion.partition_id, tmin, tmax, subregion.mass)


def topological_bounds(stats: list[SubregionStats]) -> DistanceInterval:
    """Lemmas 1-2: ``min tmin <= |q, O|_I <= max tmax`` (Eq. 7 when the
    object overlaps a single partition)."""
    if not stats:
        raise QueryError("no subregions to bound")
    return DistanceInterval(
        min(s.tmin for s in stats), max(s.tmax for s in stats)
    )


def weighted_topological_bounds(stats: list[SubregionStats]) -> DistanceInterval:
    """Extension: mass-weighted per-subregion bounds (tighter than
    Lemmas 1-2 for multi-partition objects; see module docstring)."""
    if not stats:
        raise QueryError("no subregions to bound")
    total_mass = sum(s.mass for s in stats)
    lo = sum(s.tmin * s.mass for s in stats) / total_mass
    hi = sum(s.tmax * s.mass for s in stats) / total_mass
    return DistanceInterval(lo, hi)


def markov_lower_bound(stats: list[SubregionStats]) -> float:
    """Lemma 4: a prefix-mass lower bound.

    With subregions sorted by ``tmin``, at least ``1 - p_hat_i`` of the
    probability mass lies at distance >= the suffix minimum, so
    ``E >= (1 - p_hat_i) * tmin(S[i+1])``, maximised over ``i``.
    """
    if not stats:
        raise QueryError("no subregions to bound")
    ordered = sorted(stats, key=lambda s: s.tmin)
    total_mass = sum(s.mass for s in ordered)
    best = ordered[0].tmin * 0.0  # E >= 0 trivially
    p_hat = 0.0
    for i in range(len(ordered) - 1):
        p_hat += ordered[i].mass / total_mass
        best = max(best, (1.0 - p_hat) * ordered[i + 1].tmin)
    return best


def probabilistic_bounds(stats: list[SubregionStats]) -> DistanceInterval:
    """Lemma 5: split the expectation at every prefix and bound both
    parts by their own extrema.

    ``E = E_prefix * p_hat + E_suffix * (1 - p_hat)`` with
    ``E_prefix >= min prefix tmin``, ``E_suffix >= suffix tmin`` (and
    symmetrically for the upper bound).  The ``i = 0`` split recovers
    the plain topological bounds, so this never loses tightness.
    """
    if not stats:
        raise QueryError("no subregions to bound")
    ordered = sorted(stats, key=lambda s: s.tmin)
    m = len(ordered)
    total_mass = sum(s.mass for s in ordered)
    suffix_min = [0.0] * m
    suffix_max = [0.0] * m
    running_min, running_max = math.inf, -math.inf
    for i in range(m - 1, -1, -1):
        running_min = min(running_min, ordered[i].tmin)
        running_max = max(running_max, ordered[i].tmax)
        suffix_min[i] = running_min
        suffix_max[i] = running_max
    best_lo = suffix_min[0]  # i = 0 split: plain topological LB
    best_hi = suffix_max[0]
    prefix_min, prefix_max = math.inf, -math.inf
    p_hat = 0.0
    for i in range(m - 1):
        p_hat += ordered[i].mass / total_mass
        prefix_min = min(prefix_min, ordered[i].tmin)
        prefix_max = max(prefix_max, ordered[i].tmax)
        lo_i = _mul(p_hat, prefix_min) + _mul(1.0 - p_hat, suffix_min[i + 1])
        hi_i = _mul(p_hat, prefix_max) + _mul(1.0 - p_hat, suffix_max[i + 1])
        best_lo = max(best_lo, lo_i)
        best_hi = min(best_hi, hi_i)
    return DistanceInterval(best_lo, max(best_lo, best_hi))


def _mul(mass: float, bound: float) -> float:
    """``mass * bound`` with the convention ``0 * inf = 0`` (a zero-mass
    part contributes nothing regardless of its distance)."""
    if mass == 0.0:
        return 0.0
    return mass * bound


def object_bounds(
    q: Point,
    obj: UncertainObject,
    dd: DoorDistances,
    space: IndoorSpace,
    grid=None,
    use_probabilistic: bool = True,
    unreached_floor: float | None = None,
) -> DistanceInterval:
    """The pruning interval for one object, per Table III.

    Single-partition objects get the topological bounds (Eq. 7);
    multi-partition objects get the probabilistic bounds (Eq. 8), which
    degenerate to topological when subregion ranges overlap completely.
    ``unreached_floor`` — see :func:`subregion_stats`.
    """
    stats = [
        subregion_stats(q, s, dd, space, unreached_floor=unreached_floor)
        for s in obj.subregions(space, grid)
    ]
    if len(stats) == 1 or not use_probabilistic:
        return topological_bounds(stats)
    return probabilistic_bounds(stats)


def topological_looser_upper_bound(
    q: Point,
    obj: UncertainObject,
    known_paths: dict[str, tuple[Point, float]],
    space: IndoorSpace,
    grid=None,
) -> float:
    """Lemma 3 (TLU): an upper bound from *some* known path per
    partition, no shortest-path computation required.

    ``known_paths`` maps a partition id to ``(arrival_door_midpoint,
    path_length)`` — any valid path from ``q`` to that door (e.g. the
    greedy expansion of kSeedsSelection).  The bound is
    ``max_S (path_length + |arrival, S|_E^max)``; infinite when some
    subregion's partition has no known path.
    """
    fh = space.floor_height
    worst = 0.0
    for subregion in obj.subregions(space, grid):
        entry = known_paths.get(subregion.partition_id)
        if entry is None:
            return math.inf
        arrival, length = entry
        worst = max(
            worst,
            length + subregion.instances.max_distance_to(arrival, fh),
        )
    return worst
