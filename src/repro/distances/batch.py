"""Batched distance-bounds kernel for the standing-query hot path.

Every maintenance layer — single monitor, thread shards, process
workers — funnels into the same inner loop: for each moved object, each
standing query derives a pruning interval from the paper's bounds
(Lemmas 1-2/Eq. 7, Lemma 5/Eq. 8) and only undecided pairs pay an exact
refinement.  The scalar implementation in
:mod:`repro.distances.bounds` walks subregions and entry doors in
Python, and — worse — repeats the per-object geometry (instance-to-door
Euclidean extrema) once per *query*, even though it does not depend on
the query at all.

This module factors the pair bound into its two independent operands
and evaluates a whole ``(moved objects x standing queries)`` block in a
handful of numpy ops:

* :class:`DoorLayout` — per topology version, a partition-indexed view
  of the space's entry doors: door index rows and midpoint arrays,
  shared by both operands below.
* a **query-side pack** (:class:`QueryPack`) — the standing query's
  session-cached Dijkstra flattened into one ``(n_doors + 1,)`` weight
  vector (the extra slot is the padding sentinel, pinned at ``+inf``).
  Built once per query per topology version and cached on the
  :class:`~repro.queries.session.QuerySession` with the same
  pin/unpin/evict lifecycle as the search itself.
* an **object-side pack** (:class:`ObjectBlock`) — per ingest batch,
  every moved object's subregion stats (partition row, Euclidean
  min/max distances to that partition's entry-door midpoints, mass)
  packed into padded ``(n_subregions, max_doors)`` arrays **once**,
  shared across every standing query at the shard.

A pair's topological bounds then reduce to a gather + add + row-min
(``tmin(S) = min_d (w[d] + emin[S, d])``), with the query's own
partition patched by the scalar direct-path term, exactly as
:func:`repro.distances.bounds.subregion_stats` computes it.

Bit-identity with the scalar path is a hard invariant, not an
aspiration — the equivalence property suite asserts identical delta
histories and identical prune decisions.  The arithmetic is arranged so
every float operation matches the scalar sequence:

* planar squared distance is ``dx*dx + dy*dy`` — the same single
  addition ``(xy - p) ** 2 .sum(axis=1)`` performs over two elements;
* the vertical leg adds ``dz * dz`` unconditionally: the scalar path
  skips the addition when ``dz == 0``, but ``x + 0.0`` is bitwise
  identity for the non-negative squared distances involved;
* an unreachable door carries weight ``+inf`` instead of being skipped:
  ``inf + finite`` never wins a ``min`` unless every door is
  unreachable, in which case both paths yield ``inf``;
* ``min``/``max`` reductions are order-insensitive for floats (no NaNs
  can arise), so numpy's reduction order is safe;
* multi-subregion objects hand their per-subregion extrema — packed in
  the same ``obj.subregions()`` order the scalar path iterates — to the
  *scalar* :func:`~repro.distances.bounds.probabilistic_bounds`, so the
  stable sort and the prefix/suffix float accumulation are literally
  the same code; likewise the probability-mass accumulation of the
  standing iPRQ runs as a sequential Python loop in subregion order.
"""

from __future__ import annotations

import numpy as np

from repro.distances.bounds import (
    DistanceInterval,
    SubregionStats,
    probabilistic_bounds,
)
from repro.geometry.point import Point
from repro.objects.uncertain import UncertainObject
from repro.space.doors_graph import DoorDistances
from repro.space.floorplan import IndoorSpace


class DoorLayout:
    """Partition-indexed entry-door arrays for one topology version.

    ``part_row[pid]`` names the row of partition ``pid``;
    ``entry_idx[row]`` holds the global door indices of its entry doors
    (in :meth:`~repro.space.floorplan.IndoorSpace.entry_doors` order —
    the order the scalar path iterates) and ``entry_mid[row]`` their
    midpoints as an ``(k, 3)`` array of ``x, y, floor`` columns.  Door
    index ``n_doors`` is the padding :attr:`sentinel`: every query-side
    weight vector pins it at ``+inf`` so padded slots never win a min.
    """

    __slots__ = (
        "topology_version",
        "door_index",
        "n_doors",
        "sentinel",
        "part_row",
        "entry_idx",
        "entry_mid",
    )

    def __init__(self, space: IndoorSpace) -> None:
        self.topology_version = space.topology_version
        self.door_index = {
            door_id: i for i, door_id in enumerate(space.doors)
        }
        self.n_doors = len(self.door_index)
        self.sentinel = self.n_doors
        self.part_row: dict[str, int] = {}
        self.entry_idx: list[np.ndarray] = []
        self.entry_mid: list[np.ndarray] = []
        for pid in space.partitions:
            doors = space.entry_doors(pid)
            self.part_row[pid] = len(self.entry_idx)
            self.entry_idx.append(
                np.array(
                    [self.door_index[d.door_id] for d in doors],
                    dtype=np.intp,
                )
            )
            self.entry_mid.append(
                np.array(
                    [
                        [d.midpoint.x, d.midpoint.y, float(d.midpoint.floor)]
                        for d in doors
                    ],
                    dtype=np.float64,
                ).reshape(len(doors), 3)
            )


class QueryPack:
    """One standing query's side of the batched bound: its cached full
    Dijkstra as a flat door-weight vector over a :class:`DoorLayout`."""

    __slots__ = ("dd", "layout", "w", "source_row")

    def __init__(self, dd: DoorDistances, layout: DoorLayout) -> None:
        self.dd = dd
        self.layout = layout
        w = np.full(layout.n_doors + 1, np.inf)
        index = layout.door_index
        for door_id, dist in dd.dist.items():
            row = index.get(door_id)
            if row is not None:
                w[row] = dist
        self.w = w
        self.source_row = layout.part_row.get(dd.source_partition, -1)


class ObjectBlock:
    """The object side of the batched bound: one ingest batch's
    subregion stats packed into padded arrays, shared across queries.

    Rows are subregions in ``(object, subregion)`` order — objects in
    batch order, subregions in ``obj.subregions()`` order (the order
    the scalar path iterates, which the stable sort inside
    :func:`~repro.distances.bounds.probabilistic_bounds` depends on).
    ``obj_offsets[j] : obj_offsets[j + 1]`` is object ``j``'s row span.
    """

    __slots__ = (
        "objects",
        "layout",
        "sub_door",
        "sub_min",
        "sub_max",
        "sub_part",
        "sub_pids",
        "sub_mass",
        "sub_instances",
        "obj_offsets",
    )

    def __init__(
        self,
        objects: list[UncertainObject],
        layout: DoorLayout,
        sub_door: np.ndarray,
        sub_min: np.ndarray,
        sub_max: np.ndarray,
        sub_part: np.ndarray,
        sub_pids: list[str],
        sub_mass: list[float],
        sub_instances: list,
        obj_offsets: np.ndarray,
    ) -> None:
        self.objects = objects
        self.layout = layout
        self.sub_door = sub_door
        self.sub_min = sub_min
        self.sub_max = sub_max
        self.sub_part = sub_part
        self.sub_pids = sub_pids
        self.sub_mass = sub_mass
        self.sub_instances = sub_instances
        self.obj_offsets = obj_offsets

    def __len__(self) -> int:
        return len(self.objects)

    def subset(self, indices: list[int]) -> "ObjectBlock":
        """The block restricted to the objects at ``indices`` (batch
        positions) — what the sharded router hands each shard.  Rows
        are copied in order, so the subset is value-identical to
        packing the routed objects directly (padding columns beyond a
        subset's own widest partition stay at the sentinel, which the
        weight vector maps to ``+inf`` — they never win a min)."""
        rows: list[int] = []
        offsets = [0]
        off = self.obj_offsets
        for j in indices:
            rows.extend(range(off[j], off[j + 1]))
            offsets.append(len(rows))
        return ObjectBlock(
            [self.objects[j] for j in indices],
            self.layout,
            self.sub_door[rows],
            self.sub_min[rows],
            self.sub_max[rows],
            self.sub_part[rows],
            [self.sub_pids[i] for i in rows],
            [self.sub_mass[i] for i in rows],
            [self.sub_instances[i] for i in rows],
            np.array(offsets, dtype=np.intp),
        )


def pack_block(
    objects: list[UncertainObject],
    space: IndoorSpace,
    grid,
    layout: DoorLayout,
) -> ObjectBlock:
    """Pack one batch's subregion stats — the per-object work the
    scalar path repeats per query, paid once here.

    Per subregion, the instance-to-door Euclidean extrema come from a
    single ``(n_instances, n_doors)`` distance matrix whose per-door
    columns are bit-identical to the scalar per-door
    :meth:`~repro.objects.instances.InstanceSet.min_distance_to` /
    ``max_distance_to`` calls (see the module docstring for the float
    argument).
    """
    fh = space.floor_height
    rows_door: list[np.ndarray] = []
    rows_min: list[np.ndarray] = []
    rows_max: list[np.ndarray] = []
    sub_part: list[int] = []
    sub_pids: list[str] = []
    sub_mass: list[float] = []
    sub_instances: list = []
    offsets = [0]
    for obj in objects:
        subs = obj.subregions(space, grid)
        for s in subs:
            row = layout.part_row[s.partition_id]
            idx = layout.entry_idx[row]
            inst = s.instances
            if idx.size:
                mids = layout.entry_mid[row]
                dx = inst.xy[:, 0][:, None] - mids[:, 0][None, :]
                dy = inst.xy[:, 1][:, None] - mids[:, 1][None, :]
                d2 = dx * dx + dy * dy
                dz = (float(inst.floor) - mids[:, 2]) * fh
                d = np.sqrt(d2 + (dz * dz)[None, :])
                rows_min.append(d.min(axis=0))
                rows_max.append(d.max(axis=0))
            else:
                empty = np.empty(0, dtype=np.float64)
                rows_min.append(empty)
                rows_max.append(empty)
            rows_door.append(idx)
            sub_part.append(row)
            sub_pids.append(s.partition_id)
            sub_mass.append(s.mass)
            sub_instances.append(inst)
        offsets.append(offsets[-1] + len(subs))
    n_sub = len(rows_door)
    dmax = max((r.size for r in rows_door), default=0)
    dmax = max(dmax, 1)
    sub_door = np.full((n_sub, dmax), layout.sentinel, dtype=np.intp)
    sub_min = np.zeros((n_sub, dmax), dtype=np.float64)
    sub_max = np.zeros((n_sub, dmax), dtype=np.float64)
    for i, idx in enumerate(rows_door):
        k = idx.size
        if k:
            sub_door[i, :k] = idx
            sub_min[i, :k] = rows_min[i]
            sub_max[i, :k] = rows_max[i]
    return ObjectBlock(
        list(objects),
        layout,
        sub_door,
        sub_min,
        sub_max,
        np.array(sub_part, dtype=np.intp),
        sub_pids,
        sub_mass,
        sub_instances,
        np.array(offsets, dtype=np.intp),
    )


def _subregion_extrema(
    pack: QueryPack, block: ObjectBlock, q: Point, fh: float
) -> tuple[np.ndarray, np.ndarray]:
    """``tmin(S)``/``tmax(S)`` per block row — the whole-block twin of
    :func:`repro.distances.bounds.subregion_stats` (without the
    ``unreached_floor`` patch, which the probability path applies
    itself).  Padded/unreachable door slots carry ``+inf`` weights and
    therefore never win the row min."""
    wrow = pack.w[block.sub_door]
    tmin = (wrow + block.sub_min).min(axis=1)
    tmax = (wrow + block.sub_max).min(axis=1)
    src = pack.source_row
    if src >= 0:
        for i in np.nonzero(block.sub_part == src)[0]:
            inst = block.sub_instances[i]
            tmin[i] = min(tmin[i], inst.min_distance_to(q, fh))
            tmax[i] = min(tmax[i], inst.max_distance_to(q, fh))
    return tmin, tmax


def block_object_bounds(
    pack: QueryPack,
    block: ObjectBlock,
    q: Point,
    space: IndoorSpace,
    use_probabilistic: bool = True,
) -> list[DistanceInterval]:
    """Per-object pruning intervals for the whole block — the batched
    twin of :func:`repro.distances.bounds.object_bounds`, in block
    order.  Single-partition objects reduce their row span directly
    (Eq. 7); multi-partition objects hand their rows to the scalar
    :func:`~repro.distances.bounds.probabilistic_bounds` (Eq. 8), so
    sort stability and float accumulation match the scalar path by
    construction."""
    tmin, tmax = _subregion_extrema(pack, block, q, space.floor_height)
    off = block.obj_offsets
    out: list[DistanceInterval] = []
    for j in range(len(block.objects)):
        a, b = off[j], off[j + 1]
        if b - a == 1 or not use_probabilistic:
            out.append(
                DistanceInterval(
                    float(tmin[a:b].min()), float(tmax[a:b].max())
                )
            )
        else:
            stats = [
                SubregionStats(
                    block.sub_pids[i],
                    float(tmin[i]),
                    float(tmax[i]),
                    block.sub_mass[i],
                )
                for i in range(a, b)
            ]
            out.append(probabilistic_bounds(stats))
    return out


def block_probability_bounds(
    pack: QueryPack,
    block: ObjectBlock,
    q: Point,
    space: IndoorSpace,
    r: float,
) -> tuple[list[float], list[float]]:
    """Per-object qualifying-probability bounds for the whole block —
    the batched twin of
    :func:`repro.queries.prob_range.probability_bounds`, in block
    order.  Subregions no reached door can serve get the scalar path's
    ``unreached_floor = r + 1.0`` lower bound, and the per-object mass
    accumulation runs sequentially in subregion order so float sums
    match the scalar loop exactly."""
    tmin, tmax = _subregion_extrema(pack, block, q, space.floor_height)
    unreached = ~np.isfinite(tmin)
    if unreached.any():
        tmin = np.where(unreached, r + 1.0, tmin)
    off = block.obj_offsets
    los: list[float] = []
    his: list[float] = []
    mass = block.sub_mass
    for j in range(len(block.objects)):
        lo = hi = 0.0
        for i in range(off[j], off[j + 1]):
            if tmax[i] <= r:
                lo += mass[i]
                hi += mass[i]
            elif tmin[i] <= r:
                hi += mass[i]
        los.append(lo)
        his.append(hi)
    return los, his
