"""Indoor distances for uncertain objects (Section II).

* :mod:`repro.distances.euclidean` — Euclidean lower bounds;
* :mod:`repro.distances.expected` — the exact expected indoor distance
  ``|q, O|_I`` (Definition 1) with the three-case analysis of
  Section II-C (Eqs. 3, 4, 6) and the weighted-bisector machinery;
* :mod:`repro.distances.bounds` — the pruning bounds: topological
  upper/lower bounds (Lemmas 1-2, Eq. 7), the Topological Looser Upper
  Bound (Lemma 3), the Markov bound (Lemma 4) and the probabilistic
  bounds (Lemma 5).
"""

from repro.distances.euclidean import euclidean, euclidean_lower_bound
from repro.distances.expected import (
    DistanceCase,
    ExactDistance,
    classify_subregion_paths,
    expected_indoor_distance,
    instance_indoor_distances,
)
from repro.distances.bounds import (
    DistanceInterval,
    SubregionStats,
    markov_lower_bound,
    object_bounds,
    probabilistic_bounds,
    subregion_stats,
    topological_bounds,
    topological_looser_upper_bound,
    weighted_topological_bounds,
)

__all__ = [
    "euclidean",
    "euclidean_lower_bound",
    "DistanceCase",
    "ExactDistance",
    "expected_indoor_distance",
    "instance_indoor_distances",
    "classify_subregion_paths",
    "DistanceInterval",
    "SubregionStats",
    "subregion_stats",
    "topological_bounds",
    "weighted_topological_bounds",
    "topological_looser_upper_bound",
    "markov_lower_bound",
    "probabilistic_bounds",
    "object_bounds",
]
