"""The exact expected indoor distance ``|q, O|_I`` (Section II-B/C).

Definition 1: ``|q, O|_I = E[|q, s_i|_I] = sum_i |q, s_i|_I * p_i``.

Three cases (Section II-C):

1. **single-partition single-path** (Eq. 3) — every shortest path
   ``q ~> s_i`` enters the partition through the same last door ``d``,
   so ``|q, O|_I = |q, d|_I + E[|d, s_i|_E]``;
2. **single-partition multi-path** (Eq. 4) — different instances are
   served by different doors; the per-door service regions form an
   additive weighted Voronoi diagram whose boundaries are the weighted
   bisectors of Table II;
3. **multi-partition** (Eq. 6) — sum the per-subregion expectations
   weighted by subregion mass.

The door weights ``w_d = |q, d|_I`` come from a single-source Dijkstra
(:class:`repro.space.doors_graph.DoorDistances`), so one graph search
serves every object in a query.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.bisector import WeightedBisector
from repro.geometry.point import Point
from repro.objects.uncertain import Subregion, UncertainObject
from repro.space.doors_graph import DoorDistances
from repro.space.floorplan import IndoorSpace


class DistanceCase(enum.Enum):
    """Which of the paper's three distance cases applied."""

    SINGLE_PARTITION_SINGLE_PATH = "single-partition single-path"
    SINGLE_PARTITION_MULTI_PATH = "single-partition multi-path"
    MULTI_PARTITION = "multi-partition"


@dataclass(frozen=True)
class ExactDistance:
    """The exact expected indoor distance plus provenance."""

    value: float
    case: DistanceCase
    #: (partition_id, expected contribution, subregion mass) per subregion.
    per_subregion: tuple[tuple[str, float, float], ...] = field(default=())

    @property
    def is_reachable(self) -> bool:
        return math.isfinite(self.value)


def subregion_door_weights(
    subregion: Subregion,
    dd: DoorDistances,
    space: IndoorSpace,
) -> tuple[list[str], np.ndarray, np.ndarray]:
    """Entry doors of the subregion's partition with their weights.

    Returns ``(door_ids, weights, door_instance_matrix)`` where
    ``weights[k] = |q, d_k|_I`` and the matrix holds
    ``|d_k, s_i|_E`` for every door/instance pair.
    """
    pid = subregion.partition_id
    doors = space.entry_doors(pid)
    instances = subregion.instances
    door_ids: list[str] = []
    weights: list[float] = []
    rows: list[np.ndarray] = []
    for door in doors:
        w = dd.distance_to(door.door_id)
        if not math.isfinite(w):
            continue
        door_ids.append(door.door_id)
        weights.append(w)
        rows.append(instances.distances_to(door.midpoint, space.floor_height))
    if rows:
        matrix = np.vstack(rows)
    else:
        matrix = np.empty((0, len(instances)))
    return door_ids, np.asarray(weights), matrix


def instance_indoor_distances(
    q: Point,
    subregion: Subregion,
    dd: DoorDistances,
    space: IndoorSpace,
) -> np.ndarray:
    """``|q, s_i|_I`` for every instance of one subregion.

    Each instance takes the best serving door (Eq. 1); instances in the
    query's own partition may also take the direct in-partition path.
    Unreachable instances get ``inf``.
    """
    _door_ids, weights, matrix = subregion_door_weights(subregion, dd, space)
    n = len(subregion.instances)
    if matrix.shape[0]:
        via_doors = (weights[:, None] + matrix).min(axis=0)
    else:
        via_doors = np.full(n, np.inf)
    if subregion.partition_id == dd.source_partition:
        direct = subregion.instances.distances_to(q, space.floor_height)
        return np.minimum(via_doors, direct)
    return via_doors


def serving_doors(
    q: Point,
    subregion: Subregion,
    dd: DoorDistances,
    space: IndoorSpace,
) -> list[str | None]:
    """Which door serves each instance (``None`` = the direct path).

    This is the explicit additive-weighted-Voronoi cell assignment; used
    for case classification and by the bisector tests.
    """
    door_ids, weights, matrix = subregion_door_weights(subregion, dd, space)
    n = len(subregion.instances)
    if matrix.shape[0]:
        totals = weights[:, None] + matrix
        best_idx = totals.argmin(axis=0)
        best_val = totals.min(axis=0)
    else:
        best_idx = np.zeros(n, dtype=int)
        best_val = np.full(n, np.inf)
    out: list[str | None] = []
    if subregion.partition_id == dd.source_partition:
        direct = subregion.instances.distances_to(q, space.floor_height)
    else:
        direct = np.full(n, np.inf)
    for i in range(n):
        if direct[i] <= best_val[i]:
            out.append(None)
        elif math.isfinite(best_val[i]):
            out.append(door_ids[int(best_idx[i])])
        else:
            out.append("__unreachable__")
    return out


def classify_subregion_paths(
    q: Point,
    subregion: Subregion,
    dd: DoorDistances,
    space: IndoorSpace,
    use_bisectors: bool = False,
) -> bool:
    """True when the subregion is *single-path* (Eq. 3 applies).

    The default (argmin) test is exact.  With ``use_bisectors=True`` the
    decision follows the paper's implementation sketch instead: build
    the weighted bisector of every door pair and require all instances
    (weakly) on one side.  That test is *conservative*: a straddled
    bisector between two non-serving doors makes it answer "multi-path"
    even when a third door dominates both — exactly the situation where
    the paper says "if the object intersects with the bisector, we
    check all its instances" (i.e. falls back to the argmin test).
    Hence ``use_bisectors=True -> True`` implies the argmin answer is
    also True, but not conversely.
    """
    if not use_bisectors:
        doors = set(serving_doors(q, subregion, dd, space))
        return len(doors) <= 1

    door_ids, weights, _matrix = subregion_door_weights(subregion, dd, space)
    if subregion.partition_id == dd.source_partition:
        # The direct path acts as an extra pseudo-door at q with weight 0.
        door_ids = door_ids + ["__direct__"]
        weights = np.append(weights, 0.0)
        midpoints = [
            space.door(d).midpoint for d in door_ids[:-1]
        ] + [q]
    else:
        midpoints = [space.door(d).midpoint for d in door_ids]
    if len(door_ids) <= 1:
        return True
    xy = subregion.instances.xy
    # Single-path iff no pairwise bisector is straddled: whenever every
    # instance lies (weakly) on one door's side for every pair, one door
    # serves the whole subregion (ties cost the same either way).
    for i in range(len(door_ids)):
        for j in range(i + 1, len(door_ids)):
            bis = WeightedBisector(
                midpoints[i].xy(), midpoints[j].xy(),
                float(weights[i]), float(weights[j]),
            )
            if bis.single_side(xy) is None:
                return False
    return True


def expected_indoor_distance(
    q: Point,
    obj: UncertainObject,
    dd: DoorDistances,
    space: IndoorSpace,
    grid=None,
) -> ExactDistance:
    """The exact expected indoor distance ``|q, O|_I`` (Eqs. 2-6).

    ``dd`` must be a :class:`DoorDistances` computed from ``q`` (the
    subgraph phase's Dijkstra); it may be restricted to candidate
    partitions as long as those cover every path shorter than any bound
    being compared against (the query processors guarantee this).
    """
    subregions = obj.subregions(space, grid)
    contributions: list[tuple[str, float, float]] = []
    total = 0.0
    single_path_everywhere = True
    for subregion in subregions:
        dists = instance_indoor_distances(q, subregion, dd, space)
        contrib = float((dists * subregion.instances.probs).sum())
        if not np.isfinite(dists).all():
            contrib = math.inf
        contributions.append((subregion.partition_id, contrib, subregion.mass))
        total += contrib
        if single_path_everywhere and len(subregions) == 1:
            single_path_everywhere = classify_subregion_paths(
                q, subregion, dd, space
            )
    if len(subregions) > 1:
        case = DistanceCase.MULTI_PARTITION
    elif single_path_everywhere:
        case = DistanceCase.SINGLE_PARTITION_SINGLE_PATH
    else:
        case = DistanceCase.SINGLE_PARTITION_MULTI_PATH
    return ExactDistance(total, case, tuple(contributions))
