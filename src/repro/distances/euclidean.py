"""Euclidean distances and the Euclidean lower bound (Section II-D.1).

``|q, O|_E^min <= |q, O|_I`` always holds — movement can never be
shorter than the straight line — but no Euclidean-only *upper* bound
exists, which is why the topological bounds of
:mod:`repro.distances.bounds` carry the real pruning power.
"""

from __future__ import annotations

from repro.geometry.point import DEFAULT_FLOOR_HEIGHT, Point
from repro.objects.uncertain import UncertainObject


def euclidean(p: Point, q: Point, floor_height: float = DEFAULT_FLOOR_HEIGHT) -> float:
    """``|p, q|_E`` (re-exported for API symmetry with ``|p, q|_I``)."""
    return p.distance(q, floor_height)


def euclidean_lower_bound(
    q: Point, obj: UncertainObject, floor_height: float = DEFAULT_FLOOR_HEIGHT
) -> float:
    """``|q, O|_E^min = min_i |q, s_i|_E`` — a lower bound of the
    expected indoor distance (every instance is at least this far)."""
    return obj.instances.min_distance_to(q, floor_height)
