"""Object population generator (Section V-A parameters).

The paper generates objects "randomly distributed in a given building",
with circular uncertainty regions of radius 5/10/15 m and a pdf of 100
Gaussian sampling points (mean = circle center, standard deviation =
diameter / 6, i.e. the circle is the 3-sigma boundary).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from typing import Iterator

from repro.errors import ReproError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.objects.instances import InstanceSet
from repro.objects.population import ObjectMove, ObjectPopulation
from repro.objects.uncertain import UncertainObject, _contains_many
from repro.space.floorplan import IndoorSpace
from repro.space.grid import PartitionGrid
from repro.space.partition import Partition, PartitionKind


@dataclass
class ObjectGenerator:
    """Generate uncertain objects inside a space.

    Parameters
    ----------
    space:
        The building to populate.
    radius:
        Uncertainty-region radius in metres (paper: 5 / **10** / 15).
    n_instances:
        Sampling points per object (paper: 100).
    seed:
        RNG seed for reproducibility.
    """

    space: IndoorSpace
    radius: float = 10.0
    n_instances: int = 100
    seed: int | None = None
    #: object ids are ``f"{id_prefix}{n}"``; override to avoid clashes
    #: when several generators feed one population/index.
    id_prefix: str = "o"

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise ReproError("radius must be non-negative")
        if self.n_instances < 1:
            raise ReproError("need at least one instance per object")
        self._rng = np.random.default_rng(self.seed)
        self._grid = PartitionGrid.build(self.space)
        self._placeable = [
            p
            for p in self.space.partitions.values()
            if p.kind is not PartitionKind.STAIRCASE
        ]
        if not self._placeable:
            raise ReproError("space has no non-staircase partitions")
        self._id_counter = itertools.count(1)

    @property
    def grid(self) -> PartitionGrid:
        """The partition grid (reusable by callers, e.g. for subregion
        resolution)."""
        return self._grid

    # ------------------------------------------------------------------

    def generate(self, n: int) -> ObjectPopulation:
        """Generate ``n`` objects as a population."""
        population = ObjectPopulation(self.space, grid=self._grid)
        for _ in range(n):
            population.insert(self.generate_one())
        return population

    def generate_one(self, center: Point | None = None) -> UncertainObject:
        """Generate a single object (optionally at a given center)."""
        if center is None:
            center = self._random_center()
        object_id = f"{self.id_prefix}{next(self._id_counter)}"
        region = Circle(center, self.radius)
        instances = self.sample_instances(region)
        return UncertainObject(object_id, region, instances)

    # ------------------------------------------------------------------

    def _random_center(self) -> Point:
        for _ in range(1000):
            partition = self._placeable[
                int(self._rng.integers(len(self._placeable)))
            ]
            x, y = partition.bounds.random_xy(self._rng)
            if partition.contains_xy(x, y):
                return Point(x, y, partition.floor)
        raise ReproError("failed to place an object center")

    def sample_instances(self, region: Circle) -> InstanceSet:
        """Gaussian sampling points, truncated to the region and to the
        building's partitions.

        sigma = diameter / 6 per the paper, so ~99.7% of raw draws land
        inside the circle; draws outside the circle or inside walls are
        rejected and redrawn.  If rejection starves (tiny rooms), the
        remaining instances collapse to the nearest accepted sample or
        the center — mass is always preserved.
        """
        n = self.n_instances
        if region.radius == 0.0:
            xy = np.tile([region.center.x, region.center.y], (n, 1))
            return InstanceSet.uniform(xy, region.floor)
        sigma = region.diameter / 6.0
        candidates = self._grid.candidates_for_rect(
            region.bounds(), region.floor
        )
        inside_any = None
        accepted = np.empty((0, 2))
        for _attempt in range(12):
            need = n - accepted.shape[0]
            if need <= 0:
                break
            draw = self._rng.normal(
                loc=(region.center.x, region.center.y),
                scale=sigma,
                size=(max(need * 2, 16), 2),
            )
            in_circle = (
                (draw[:, 0] - region.center.x) ** 2
                + (draw[:, 1] - region.center.y) ** 2
            ) <= region.radius**2
            draw = draw[in_circle]
            if draw.shape[0] == 0:
                continue
            inside_any = np.zeros(draw.shape[0], dtype=bool)
            for partition in candidates:
                inside_any |= _contains_many(partition, draw)
                if inside_any.all():
                    break
            draw = draw[inside_any]
            accepted = np.vstack([accepted, draw[:need]])
        if accepted.shape[0] < n:
            filler = (
                accepted[-1]
                if accepted.shape[0]
                else np.array([region.center.x, region.center.y])
            )
            pad = np.tile(filler, (n - accepted.shape[0], 1))
            accepted = np.vstack([accepted, pad])
        return InstanceSet.uniform(accepted, region.floor)


@dataclass
class MovementStream:
    """Random-walk position updates over a population (streaming
    workload).

    Each emitted :class:`~repro.objects.population.ObjectMove`
    re-observes one object: with probability ``hop_probability`` the
    object crosses a door into an adjacent partition (staircase shafts
    are walked *through*, so objects change floors), otherwise it drifts
    to a fresh spot inside its current partition.  The instance pdf is
    re-sampled from ``generator``'s Gaussian model around the new
    center, so every move is a full positioning update — the paper's
    delete+insert object workload (Section III-C.2), expressed as a
    stream for :meth:`repro.index.composite.CompositeIndex.update_objects`
    and the continuous query monitor.

    The stream only *creates* moves; callers apply them (via the index)
    so that generation and absorption can be timed separately.
    """

    space: IndoorSpace
    population: ObjectPopulation
    generator: ObjectGenerator
    hop_probability: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.hop_probability <= 1.0:
            raise ReproError("hop_probability must lie in [0, 1]")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------

    def next_moves(self, n: int) -> list[ObjectMove]:
        """One batch: updates for ``n`` distinct randomly chosen objects."""
        ids = self.population.ids()
        if not ids:
            raise ReproError("cannot stream moves over an empty population")
        picks = self._rng.choice(
            len(ids), size=min(n, len(ids)), replace=False
        )
        return [self.move_for(ids[int(i)]) for i in picks]

    def batches(
        self, n_batches: int, batch_size: int
    ) -> Iterator[list[ObjectMove]]:
        """Lazily yield ``n_batches`` batches of ``batch_size`` moves.

        Each batch reflects the population state after the caller applied
        the previous one, so the walk genuinely progresses."""
        for _ in range(n_batches):
            yield self.next_moves(batch_size)

    # ------------------------------------------------------------------

    def move_for(self, object_id: str) -> ObjectMove:
        """A single random-walk step for one object."""
        obj = self.population.get(object_id)
        center = obj.region.center
        current = self.space.locate(center)
        target = current
        if current is not None and self._rng.random() < self.hop_probability:
            target = self._hop_target(current)
        new_center = (
            self._point_inside(target) if target is not None else None
        )
        if new_center is None:
            new_center = center  # stay put, but re-observe the pdf
        region = Circle(new_center, obj.region.radius)
        return ObjectMove(
            object_id, region, self.generator.sample_instances(region)
        )

    def _hop_target(self, current: Partition) -> Partition:
        """A door-adjacent partition; staircases are traversed, not
        occupied (objects never dwell inside a shaft)."""
        pid = current.partition_id
        nbrs = self.space.adjacent_partitions(pid)
        if not nbrs:
            return current
        choice = self.space.partition(
            nbrs[int(self._rng.integers(len(nbrs)))]
        )
        if not choice.is_staircase:
            return choice
        exits = [
            x
            for x in self.space.adjacent_partitions(choice.partition_id)
            if x != pid and not self.space.partition(x).is_staircase
        ]
        if not exits:
            return current
        return self.space.partition(
            exits[int(self._rng.integers(len(exits)))]
        )

    def _point_inside(self, partition: Partition) -> Point | None:
        for _ in range(64):
            x, y = partition.bounds.random_xy(self._rng)
            if partition.contains_xy(x, y):
                return Point(x, y, partition.floor)
        return None


@dataclass
class DirectedMovementStream(MovementStream):
    """Correlated movement toward target partitions (egress surge).

    The evacuation/stadium-egress workload: each chosen object, with
    probability ``compliance``, takes one door-hop along a shortest
    door-count path toward the nearest partition in ``targets`` (exits,
    gathering points); otherwise it falls back to the base random walk.
    Objects already inside a target dwell there, re-observing their pdf
    — so the population drains toward the targets and *stays* drained,
    the mass-correlated pattern a uniform random walk never produces.

    Routing hops are a multi-source BFS over the door-adjacency graph,
    recomputed whenever the space's ``topology_version`` moves — a
    door closure mid-scenario (``CloseDoor``) genuinely reroutes the
    crowd, exactly the churn the evacuation scenario injects.  One-way
    doors are honoured (the BFS expands against door direction, so a
    hop is only suggested where the object could actually traverse).
    An object standing where every target is unreachable falls back to
    the random walk.
    """

    #: Partition ids the crowd converges on.  Must be non-empty.
    targets: tuple[str, ...] = ()
    #: Probability a move follows the route; the rest stays brownian.
    compliance: float = 0.9

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.targets:
            raise ReproError("directed movement needs at least one target")
        for pid in self.targets:
            self.space.partition(pid)  # raises on unknown ids
        if not 0.0 <= self.compliance <= 1.0:
            raise ReproError("compliance must lie in [0, 1]")
        self._hops: dict[str, int] = {}
        self._hops_version = -1

    # ------------------------------------------------------------------

    def _ensure_routes(self) -> None:
        if self._hops_version != self.space.topology_version:
            self._hops = self._bfs_from_targets()
            self._hops_version = self.space.topology_version

    def _bfs_from_targets(self) -> dict[str, int]:
        """Door-count distance to the nearest target, per partition.

        Expands from the targets *backwards*: an edge ``other -> pid``
        exists when ``other`` may exit through a shared open door into
        ``pid``, so the stored hop counts always describe traversable
        forward routes."""
        from collections import deque

        dist = {pid: 0 for pid in self.targets}
        queue = deque(self.targets)
        while queue:
            pid = queue.popleft()
            for door in self.space.doors_of(pid):
                other = door.other_side(pid)
                if other not in dist and door.allows_exit(other):
                    dist[other] = dist[pid] + 1
                    queue.append(other)
        return dist

    def _step_toward(self, current: Partition) -> Partition | None:
        """The door-adjacent partition one routed hop closer to a
        target, staircases traversed like the base walk; ``None`` when
        no open route exists."""
        here = self._hops.get(current.partition_id)
        if here is None:
            return None
        best, best_d = None, here
        for nbr in self.space.adjacent_partitions(current.partition_id):
            d = self._hops.get(nbr)
            if d is not None and d < best_d:
                best, best_d = nbr, d
        if best is None:
            return None
        choice = self.space.partition(best)
        if not choice.is_staircase:
            return choice
        exits = [
            x
            for x in self.space.adjacent_partitions(choice.partition_id)
            if x != current.partition_id
            and not self.space.partition(x).is_staircase
            and self._hops.get(x) is not None
        ]
        if not exits:
            return None
        return self.space.partition(
            min(exits, key=lambda x: (self._hops[x], x))
        )

    def move_for(self, object_id: str) -> ObjectMove:
        obj = self.population.get(object_id)
        center = obj.region.center
        current = self.space.locate(center)
        if current is None or self._rng.random() >= self.compliance:
            return super().move_for(object_id)
        self._ensure_routes()
        if current.partition_id in self.targets:
            target: Partition | None = current  # dwell at the exit
        else:
            target = self._step_toward(current)
        if target is None:
            return super().move_for(object_id)
        new_center = self._point_inside(target)
        if new_center is None:
            new_center = center
        region = Circle(new_center, obj.region.radius)
        return ObjectMove(
            object_id, region, self.generator.sample_instances(region)
        )
