"""Uncertain indoor moving objects (Section II-B).

An object's location is imprecise: positioning reports a circular
*uncertainty region* and the location is a random variable inside it,
represented by a set of discrete *instances* ``{(s_i, p_i)}`` with
``sum p_i = 1`` — the paper's instance representation, which is general
for arbitrary distributions.

Because the region may straddle walls, an object's instances are divided
into *uncertainty subregions* ``S[j]``, one per overlapped partition
(Figure 6); the distance machinery in :mod:`repro.distances` works per
subregion.
"""

from repro.objects.instances import InstanceSet
from repro.objects.uncertain import Subregion, UncertainObject
from repro.objects.generator import MovementStream, ObjectGenerator
from repro.objects.population import ObjectMove, ObjectPopulation

__all__ = [
    "InstanceSet",
    "Subregion",
    "UncertainObject",
    "MovementStream",
    "ObjectGenerator",
    "ObjectMove",
    "ObjectPopulation",
]
