"""Numpy-backed instance sets.

All per-instance math in the library (distance to a door over 100
instances, expectation over probabilities) is vectorised over these
arrays, which is what keeps the pure-Python reproduction usable at the
paper's object counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class InstanceSet:
    """A discrete location distribution ``{(s_i, p_i)}``.

    Attributes
    ----------
    xy:
        ``(n, 2)`` float array of planar instance coordinates.
    floor:
        The floor all instances lie on (uncertainty regions are planar:
        a positioning reader covers one floor).
    probs:
        ``(n,)`` float array of existential probabilities, summing to 1.
    """

    xy: np.ndarray
    floor: int
    probs: np.ndarray

    def __post_init__(self) -> None:
        xy = np.asarray(self.xy, dtype=float)
        probs = np.asarray(self.probs, dtype=float)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ReproError(f"xy must be (n, 2), got {xy.shape}")
        if probs.shape != (xy.shape[0],):
            raise ReproError("probs shape must match number of instances")
        if xy.shape[0] == 0:
            raise ReproError("an instance set cannot be empty")
        if np.any(probs < 0):
            raise ReproError("probabilities must be non-negative")
        total = float(probs.sum())
        # A full object's instances sum to 1; a subregion's to its share
        # of the mass (Eq. 6 needs the raw p_i, not renormalised ones).
        if total <= 0.0 or total > 1.0 + 1e-6:
            raise ReproError(f"probability mass must be in (0, 1], got {total}")
        object.__setattr__(self, "xy", xy)
        object.__setattr__(self, "probs", probs)

    # ------------------------------------------------------------------

    @staticmethod
    def uniform(xy: np.ndarray, floor: int) -> "InstanceSet":
        """Equal-probability instances (the paper's sampling-point pdf)."""
        xy = np.asarray(xy, dtype=float)
        n = xy.shape[0]
        return InstanceSet(xy, floor, np.full(n, 1.0 / n))

    @staticmethod
    def single(point: Point) -> "InstanceSet":
        """A certain (point) object — handy in tests."""
        return InstanceSet(
            np.array([[point.x, point.y]]), point.floor, np.array([1.0])
        )

    def __len__(self) -> int:
        return int(self.xy.shape[0])

    def subset(self, mask_or_idx: np.ndarray) -> "InstanceSet":
        """Instances selected by boolean mask or index array.

        Probabilities are *not* renormalised: a subregion keeps its
        share of the total mass (Eq. 6 needs the raw ``p_i``).
        """
        return InstanceSet(
            self.xy[mask_or_idx], self.floor, self.probs[mask_or_idx]
        )

    # ------------------------------------------------------------------
    # measures
    # ------------------------------------------------------------------

    @property
    def mass(self) -> float:
        """Total probability of this (sub)set."""
        return float(self.probs.sum())

    def bounds(self) -> Rect:
        """Planar bounding rectangle of the instances."""
        mins = self.xy.min(axis=0)
        maxs = self.xy.max(axis=0)
        return Rect(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    def mean(self) -> Point:
        """Probability-weighted mean location."""
        m = self.mass
        if m <= 0:
            raise ReproError("cannot average a zero-mass instance set")
        w = (self.probs / m)[:, None]
        cx, cy = (self.xy * w).sum(axis=0)
        return Point(float(cx), float(cy), self.floor)

    # ------------------------------------------------------------------
    # distances (all planar + vertical leg, vectorised)
    # ------------------------------------------------------------------

    def distances_to(self, p: Point, floor_height: float) -> np.ndarray:
        """``|s_i, p|_E`` for every instance (n,) array."""
        d2 = ((self.xy - np.array([p.x, p.y])) ** 2).sum(axis=1)
        dz = (self.floor - p.floor) * floor_height
        if dz != 0.0:
            d2 = d2 + dz * dz
        return np.sqrt(d2)

    def min_distance_to(self, p: Point, floor_height: float) -> float:
        """``|p, O|_E^min`` over this instance set."""
        return float(self.distances_to(p, floor_height).min())

    def max_distance_to(self, p: Point, floor_height: float) -> float:
        """``|p, O|_E^max`` over this instance set."""
        return float(self.distances_to(p, floor_height).max())

    def expected_distance_to(self, p: Point, floor_height: float) -> float:
        """``E[|s_i, p|_E]`` — the Euclidean expected distance."""
        return float((self.distances_to(p, floor_height) * self.probs).sum())
