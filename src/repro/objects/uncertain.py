"""Uncertain objects and their per-partition subregions.

An :class:`UncertainObject` bundles an uncertainty region (circle), the
discrete instance set, and — once resolved against a space — the
*uncertainty subregions* ``S[j]`` of Section II-B: one
:class:`Subregion` per partition the instances fall into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.geometry.circle import Circle
from repro.geometry.rect import Rect
from repro.objects.instances import InstanceSet
from repro.space.floorplan import IndoorSpace
from repro.space.grid import PartitionGrid
from repro.space.partition import Partition


@dataclass(frozen=True)
class Subregion:
    """``S[j]`` — the instances of one object inside one partition."""

    partition_id: str
    instances: InstanceSet

    @property
    def mass(self) -> float:
        """``sum_{s_i in S[j]} p_i`` — the subregion's probability."""
        return self.instances.mass


@dataclass(eq=False)
class UncertainObject:
    """An indoor moving object with an imprecise location.

    Parameters
    ----------
    object_id:
        Unique identifier.
    region:
        The circular uncertainty region reported by positioning.
    instances:
        The discrete pdf ``{(s_i, p_i)}``; all instances lie inside the
        region on the region's floor.
    """

    object_id: str
    region: Circle
    instances: InstanceSet
    _subregions: list[Subregion] | None = field(default=None, repr=False)
    _subregions_version: int = field(default=-1, repr=False)

    def __post_init__(self) -> None:
        if self.instances.floor != self.region.floor:
            raise ReproError(
                f"object {self.object_id!r}: instances on floor "
                f"{self.instances.floor} but region on {self.region.floor}"
            )

    def __hash__(self) -> int:
        return hash(self.object_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UncertainObject)
            and other.object_id == self.object_id
        )

    # ------------------------------------------------------------------

    @property
    def floor(self) -> int:
        return self.region.floor

    def bounds(self) -> Rect:
        """Planar bounding rectangle of the instances (tighter than the
        region's, and exact for distance filtering)."""
        return self.instances.bounds()

    def __len__(self) -> int:
        """``|O|`` — the number of instances."""
        return len(self.instances)

    # ------------------------------------------------------------------
    # subregions
    # ------------------------------------------------------------------

    def subregions(
        self,
        space: IndoorSpace,
        grid: PartitionGrid | None = None,
    ) -> list[Subregion]:
        """Divide the instances into per-partition subregions (cached
        until the space's topology changes).

        Every instance is assigned to exactly one partition (overlapping
        staircase shafts are disambiguated by assignment order).
        Instances falling into no partition — inside a wall, an artifact
        of sampling — are attached to the partition containing the
        region's center, preserving total probability mass.
        """
        if (
            self._subregions is not None
            and self._subregions_version == space.topology_version
        ):
            return self._subregions
        if grid is not None:
            candidates = grid.candidates_for_rect(self.bounds(), self.floor)
        else:
            rect = self.bounds()
            candidates = [
                p
                for p in space.partitions_on_floor(self.floor)
                if p.bounds.intersects(rect)
            ]
        subregions = self._assign(candidates, space)
        self._subregions = subregions
        self._subregions_version = space.topology_version
        return subregions

    def invalidate_subregions(self) -> None:
        """Drop the cached subregions (e.g. after the object moved)."""
        self._subregions = None
        self._subregions_version = -1

    def _assign(
        self, candidates: list[Partition], space: IndoorSpace
    ) -> list[Subregion]:
        # Deterministic order: where footprints overlap (stacked
        # staircase shafts), every code path must pick the same owner.
        candidates = sorted(candidates, key=lambda p: p.partition_id)
        xy = self.instances.xy
        n = xy.shape[0]
        unassigned = np.ones(n, dtype=bool)
        pieces: list[tuple[str, np.ndarray]] = []
        for partition in candidates:
            if not unassigned.any():
                break
            mask = unassigned & _contains_many(partition, xy)
            if mask.any():
                pieces.append((partition.partition_id, mask))
                unassigned &= ~mask
        if unassigned.any():
            # Wall-clipped stragglers: attach to the center's partition,
            # or to the first candidate when the center is in a wall too.
            center_part = None
            for partition in candidates:
                if partition.contains_xy(self.region.center.x, self.region.center.y):
                    center_part = partition.partition_id
                    break
            if center_part is None:
                if not candidates:
                    raise ReproError(
                        f"object {self.object_id!r} overlaps no partition"
                    )
                center_part = candidates[0].partition_id
            for i, (pid, mask) in enumerate(pieces):
                if pid == center_part:
                    pieces[i] = (pid, mask | unassigned)
                    break
            else:
                pieces.append((center_part, unassigned.copy()))
        return [
            Subregion(pid, self.instances.subset(mask)) for pid, mask in pieces
        ]

    # ------------------------------------------------------------------

    def overlapped_partitions(
        self, space: IndoorSpace, grid: PartitionGrid | None = None
    ) -> list[str]:
        """``P(O)`` — ids of partitions the object overlaps."""
        return [s.partition_id for s in self.subregions(space, grid)]


def _contains_many(partition: Partition, xy: np.ndarray) -> np.ndarray:
    """Vectorised containment of many planar points in a partition."""
    footprint = partition.footprint
    if isinstance(footprint, Rect):
        return (
            (xy[:, 0] >= footprint.minx)
            & (xy[:, 0] <= footprint.maxx)
            & (xy[:, 1] >= footprint.miny)
            & (xy[:, 1] <= footprint.maxy)
        )
    return np.fromiter(
        (footprint.contains_xy(float(x), float(y)) for x, y in xy),
        dtype=bool,
        count=xy.shape[0],
    )
