"""Object populations — the mutable set ``O`` of uncertain objects.

The population is the source of truth the composite index's object layer
is built from; insert/delete/move here mirror the paper's object-update
workload (Section III-C.2), and the index mirrors them incrementally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.objects.instances import InstanceSet
from repro.objects.uncertain import UncertainObject
from repro.space.floorplan import IndoorSpace
from repro.space.grid import PartitionGrid


@dataclass(frozen=True)
class ObjectMove:
    """One positioning update: object ``object_id`` was re-observed at
    ``new_region`` with pdf ``new_instances``.

    The unit of the streaming update workload: movement generators emit
    them, :meth:`repro.index.composite.CompositeIndex.update_objects`
    absorbs them in batches, and the continuous query monitor consumes
    the absorbed results.
    """

    object_id: str
    new_region: Circle
    new_instances: InstanceSet


@dataclass
class ObjectPopulation:
    """The object set ``O`` living inside one space."""

    space: IndoorSpace
    grid: PartitionGrid | None = None
    _objects: dict[str, UncertainObject] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.grid is None:
            self.grid = PartitionGrid.build(self.space)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[UncertainObject]:
        return iter(self._objects.values())

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._objects

    def ids(self) -> list[str]:
        return list(self._objects)

    def get(self, object_id: str) -> UncertainObject:
        try:
            return self._objects[object_id]
        except KeyError:
            raise ReproError(f"unknown object {object_id!r}") from None

    # ------------------------------------------------------------------

    def insert(self, obj: UncertainObject) -> UncertainObject:
        if obj.object_id in self._objects:
            raise ReproError(f"duplicate object id {obj.object_id!r}")
        self._objects[obj.object_id] = obj
        return obj

    def delete(self, object_id: str) -> UncertainObject:
        obj = self._objects.pop(object_id, None)
        if obj is None:
            raise ReproError(f"unknown object {object_id!r}")
        return obj

    def move(
        self, object_id: str, new_region: Circle, new_instances
    ) -> UncertainObject:
        """Replace an object's location (delete + insert semantics,
        Section III-C.2), keeping its identity."""
        old = self.delete(object_id)
        moved = UncertainObject(old.object_id, new_region, new_instances)
        return self.insert(moved)

    # ------------------------------------------------------------------

    def on_floor(self, floor: int) -> list[UncertainObject]:
        return [o for o in self if o.floor == floor]

    def nearest_center(self, p: Point) -> UncertainObject:
        """Object whose region center is Euclidean-closest to ``p``
        (diagnostic helper)."""
        if not self._objects:
            raise ReproError("empty population")
        return min(
            self._objects.values(),
            key=lambda o: p.distance(o.region.center, self.space.floor_height),
        )
