"""A uniform grid over partitions, for fast candidate lookups.

The composite index's tree tier is the paper's structure for partition
retrieval; this grid is an *auxiliary* accelerator used where the tree is
not available yet — object generation (placing millions of instances
needs fast "which partitions could contain this circle" answers) and the
naive baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition


@dataclass
class PartitionGrid:
    """Per-floor uniform bucket grid mapping cells to partitions."""

    space: IndoorSpace
    cell_size: float = 30.0
    _origin: tuple[float, float] = (0.0, 0.0)
    _cells: dict[tuple[int, int, int], list[Partition]] = field(
        default_factory=dict
    )
    _built_for_version: int = -1

    @staticmethod
    def build(space: IndoorSpace, cell_size: float = 30.0) -> "PartitionGrid":
        grid = PartitionGrid(space, cell_size)
        grid.rebuild()
        return grid

    def rebuild(self) -> None:
        bounds = self.space.bounds()
        self._origin = (bounds.minx, bounds.miny)
        self._cells = {}
        for partition in self.space.partitions.values():
            rect = partition.bounds
            for floor in range(partition.floor, partition.upper_floor + 1):
                for key in self._keys_for_rect(rect, floor):
                    self._cells.setdefault(key, []).append(partition)
        self._built_for_version = self.space.topology_version

    def ensure_fresh(self) -> None:
        if self._built_for_version != self.space.topology_version:
            self.rebuild()

    # ------------------------------------------------------------------

    def candidates_for_rect(self, rect: Rect, floor: int) -> list[Partition]:
        """Partitions whose bounds may intersect ``rect`` on ``floor``."""
        self.ensure_fresh()
        seen: set[str] = set()
        out: list[Partition] = []
        for key in self._keys_for_rect(rect, floor):
            for partition in self._cells.get(key, ()):
                if partition.partition_id in seen:
                    continue
                seen.add(partition.partition_id)
                if partition.bounds.intersects(rect):
                    out.append(partition)
        return out

    def candidates_for_point(self, point: Point) -> list[Partition]:
        self.ensure_fresh()
        key = self._key(point.x, point.y, point.floor)
        return [
            p
            for p in self._cells.get(key, ())
            if p.contains_point(point)
        ]

    def locate(self, point: Point) -> Partition | None:
        """Grid-accelerated version of :meth:`IndoorSpace.locate`."""
        candidates = self.candidates_for_point(point)
        return candidates[0] if candidates else None

    # ------------------------------------------------------------------

    def _key(self, x: float, y: float, floor: int) -> tuple[int, int, int]:
        ox, oy = self._origin
        return (
            floor,
            math.floor((x - ox) / self.cell_size),
            math.floor((y - oy) / self.cell_size),
        )

    def _keys_for_rect(self, rect: Rect, floor: int):
        ox, oy = self._origin
        i0 = math.floor((rect.minx - ox) / self.cell_size)
        i1 = math.floor((rect.maxx - ox) / self.cell_size)
        j0 = math.floor((rect.miny - oy) / self.cell_size)
        j1 = math.floor((rect.maxy - oy) / self.cell_size)
        for i in range(i0, i1 + 1):
            for j in range(j0, j1 + 1):
                yield (floor, i, j)
