"""The doors graph ``G_d`` (Section II-A, Figure 3) and Dijkstra search.

Vertices are doors; a directed edge ``d_i -> d_j`` exists when both doors
belong to a common partition ``P`` such that ``d_i`` permits *entering*
``P`` and ``d_j`` permits *leaving* it.  A bidirectional door pair hence
yields edges both ways; a one-way door acquires in-/out-edges exactly as
in Figure 3(b).  Edge weights are intra-partition distances between door
midpoints (footnote 1 of the paper).

The paper does not materialise a separate graph — the composite index's
topological layer plays that role.  This module is that layer's
algorithmic engine: it derives adjacency from an :class:`IndoorSpace`
(optionally restricted to a candidate-partition subset, the *subgraph
phase* of query processing) and runs single-source Dijkstra seeded at a
query point.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.errors import SpaceError, UnreachableError
from repro.geometry.point import Point
from repro.space.floorplan import IndoorSpace


@dataclass(frozen=True)
class DoorDistances:
    """Result of a single-source Dijkstra from a query point.

    ``dist[d]`` is the indoor distance ``|q, d|_I`` from the source point
    to door ``d``'s midpoint, *including* the initial in-partition leg
    ``|q, d_q|_E``.  ``predecessor[d]`` supports path reconstruction
    (``None`` marks a seed door of the source partition).
    """

    source: Point
    source_partition: str
    dist: dict[str, float]
    predecessor: dict[str, str | None]

    def distance_to(self, door_id: str) -> float:
        """``|q, d|_I``; infinity when the door is unreachable."""
        return self.dist.get(door_id, math.inf)

    def path_to(self, door_id: str) -> list[str]:
        """Door sequence of the shortest path ``q ~> door_id``."""
        if door_id not in self.dist:
            raise UnreachableError(
                f"door {door_id!r} unreachable from {self.source}"
            )
        path: list[str] = []
        cur: str | None = door_id
        while cur is not None:
            path.append(cur)
            cur = self.predecessor[cur]
        path.reverse()
        return path


@dataclass
class DoorsGraph:
    """Directed, weighted doors graph derived from an indoor space.

    ``adjacency[d]`` is a list of ``(neighbour_door, weight,
    partition_id)`` triples, where ``partition_id`` names the partition
    the edge crosses — that is what lets the subgraph phase restrict
    relaxation to candidate partitions.
    """

    space: IndoorSpace
    adjacency: dict[str, list[tuple[str, float, str]]] = field(
        default_factory=dict
    )
    _built_for_version: int = -1

    @staticmethod
    def from_space(space: IndoorSpace) -> "DoorsGraph":
        graph = DoorsGraph(space)
        graph.rebuild()
        return graph

    def rebuild(self) -> None:
        """(Re)derive the adjacency from the space's current topology."""
        space = self.space
        adjacency: dict[str, list[tuple[str, float, str]]] = {
            door_id: [] for door_id in space.doors
        }
        for partition in space.partitions.values():
            pid = partition.partition_id
            doors = space.doors_of(pid)
            for d_in in doors:
                if not d_in.allows_entry(pid):
                    continue
                for d_out in doors:
                    if d_out.door_id == d_in.door_id:
                        continue
                    if not d_out.allows_exit(pid):
                        continue
                    weight = space.door_to_door(d_in, d_out)
                    adjacency[d_in.door_id].append(
                        (d_out.door_id, weight, pid)
                    )
        self.adjacency = adjacency
        self._built_for_version = space.topology_version

    def ensure_fresh(self) -> None:
        if self._built_for_version != self.space.topology_version:
            self.rebuild()

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self.adjacency.values())

    # ------------------------------------------------------------------
    # Dijkstra
    # ------------------------------------------------------------------

    def dijkstra_from_point(
        self,
        q: Point,
        source_partition: str | None = None,
        allowed_partitions: set[str] | None = None,
        cutoff: float | None = None,
    ) -> DoorDistances:
        """Single-source shortest door distances from a query point.

        The search is seeded with every door through which the source
        partition can be exited (initial distance ``|q, d_q|_E``) and
        relaxes directed door-to-door edges.  When ``allowed_partitions``
        is given, only edges crossing those partitions are relaxed — the
        *subgraph phase* of Algorithms 1 and 2.  ``cutoff`` stops the
        search beyond a distance bound (safe for range queries: any path
        longer than the range cannot qualify).
        """
        self.ensure_fresh()
        space = self.space
        if source_partition is None:
            located = space.locate(q)
            if located is None:
                raise SpaceError(f"query point {q} is outside every partition")
            source_partition = located.partition_id

        seeds: dict[str, float] = {}
        for door in space.exit_doors(source_partition):
            d = q.distance(door.midpoint, space.floor_height)
            if door.door_id not in seeds or d < seeds[door.door_id]:
                seeds[door.door_id] = d

        dist: dict[str, float] = {}
        predecessor: dict[str, str | None] = {}
        heap: list[tuple[float, str]] = []
        for door_id, d in seeds.items():
            dist[door_id] = d
            predecessor[door_id] = None
            heapq.heappush(heap, (d, door_id))

        while heap:
            d, door_id = heapq.heappop(heap)
            if d > dist.get(door_id, math.inf):
                continue  # stale entry
            if cutoff is not None and d > cutoff:
                continue
            for nbr, weight, pid in self.adjacency.get(door_id, ()):
                if (
                    allowed_partitions is not None
                    and pid not in allowed_partitions
                ):
                    continue
                nd = d + weight
                if cutoff is not None and nd > cutoff:
                    continue
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    predecessor[nbr] = door_id
                    heapq.heappush(heap, (nd, nbr))

        return DoorDistances(q, source_partition, dist, predecessor)

    def dijkstra_between_doors(
        self, source_door: str, cutoff: float | None = None
    ) -> dict[str, float]:
        """All-door shortest distances from one door midpoint.

        This is the building block of the pre-computation baseline
        ([16]/[24]-style, measured in Figure 15(d)).
        """
        self.ensure_fresh()
        if source_door not in self.adjacency:
            raise SpaceError(f"unknown door {source_door!r}")
        dist = {source_door: 0.0}
        heap = [(0.0, source_door)]
        while heap:
            d, door_id = heapq.heappop(heap)
            if d > dist.get(door_id, math.inf):
                continue
            if cutoff is not None and d > cutoff:
                continue
            for nbr, weight, _pid in self.adjacency.get(door_id, ()):
                nd = d + weight
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return dist

    # ------------------------------------------------------------------
    # point-to-point indoor distance (reference implementation)
    # ------------------------------------------------------------------

    def indoor_distance(self, q: Point, p: Point) -> float:
        """Exact indoor distance ``|q, p|_I`` between two points (Eq. 1).

        Reference implementation used by the naive baseline and tests;
        query processing uses the phased algorithms instead.
        """
        space = self.space
        pq = space.locate(q)
        pp = space.locate(p)
        if pq is None or pp is None:
            raise SpaceError("both points must lie inside the space")
        best = math.inf
        if pq.partition_id == pp.partition_id:
            best = q.distance(p, space.floor_height)
        dd = self.dijkstra_from_point(q, pq.partition_id)
        for door in space.entry_doors(pp.partition_id):
            d = dd.distance_to(door.door_id)
            if not math.isfinite(d):
                continue
            total = d + door.midpoint.distance(p, space.floor_height)
            best = min(best, total)
        if not math.isfinite(best):
            raise UnreachableError(f"{p} unreachable from {q}")
        return best
