"""The :class:`IndoorSpace` — registry of partitions and doors.

This is the authoritative model the composite index and the queries are
built over.  It offers topology accessors (doors of a partition, adjacent
partitions), point location, intra-partition metrics, and the low-level
mutators the topology events use.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import SpaceError
from repro.geometry.point import DEFAULT_FLOOR_HEIGHT, Point
from repro.geometry.rect import Rect
from repro.space.door import Door
from repro.space.partition import Partition, PartitionKind


@dataclass
class IndoorSpace:
    """A multi-floor indoor space.

    Attributes
    ----------
    floor_height:
        Vertical distance between consecutive floors (4 m in the paper's
        evaluation).
    """

    floor_height: float = DEFAULT_FLOOR_HEIGHT
    partitions: dict[str, Partition] = field(default_factory=dict)
    doors: dict[str, Door] = field(default_factory=dict)
    #: monotonically increasing counter, bumped by every topology mutation;
    #: lets derived structures (doors graph, composite index) detect
    #: staleness cheaply.
    topology_version: int = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add_partition(self, partition: Partition) -> Partition:
        if partition.partition_id in self.partitions:
            raise SpaceError(f"duplicate partition id {partition.partition_id!r}")
        self.partitions[partition.partition_id] = partition
        self.topology_version += 1
        return partition

    def add_door(self, door: Door) -> Door:
        if door.door_id in self.doors:
            raise SpaceError(f"duplicate door id {door.door_id!r}")
        for pid in door.partitions:
            if pid not in self.partitions:
                raise SpaceError(
                    f"door {door.door_id!r} references unknown partition {pid!r}"
                )
        self.doors[door.door_id] = door
        for pid in door.partitions:
            self.partitions[pid].door_ids.append(door.door_id)
        self.topology_version += 1
        return door

    def remove_door(self, door_id: str) -> Door:
        door = self.doors.pop(door_id, None)
        if door is None:
            raise SpaceError(f"unknown door {door_id!r}")
        for pid in door.partitions:
            partition = self.partitions.get(pid)
            if partition and door_id in partition.door_ids:
                partition.door_ids.remove(door_id)
        self.topology_version += 1
        return door

    def remove_partition(self, partition_id: str) -> Partition:
        """Remove a partition and all doors attached to it."""
        partition = self.partitions.get(partition_id)
        if partition is None:
            raise SpaceError(f"unknown partition {partition_id!r}")
        for door_id in list(partition.door_ids):
            self.remove_door(door_id)
        del self.partitions[partition_id]
        self.topology_version += 1
        return partition

    # ------------------------------------------------------------------
    # topology accessors
    # ------------------------------------------------------------------

    def partition(self, partition_id: str) -> Partition:
        try:
            return self.partitions[partition_id]
        except KeyError:
            raise SpaceError(f"unknown partition {partition_id!r}") from None

    def door(self, door_id: str) -> Door:
        try:
            return self.doors[door_id]
        except KeyError:
            raise SpaceError(f"unknown door {door_id!r}") from None

    def doors_of(self, partition_id: str) -> list[Door]:
        """``D(p)`` — the doors of a partition."""
        return [self.doors[d] for d in self.partition(partition_id).door_ids]

    def exit_doors(self, partition_id: str) -> list[Door]:
        """Doors through which one may *leave* the partition."""
        return [
            d for d in self.doors_of(partition_id) if d.allows_exit(partition_id)
        ]

    def entry_doors(self, partition_id: str) -> list[Door]:
        """Doors through which one may *enter* the partition."""
        return [
            d for d in self.doors_of(partition_id) if d.allows_entry(partition_id)
        ]

    def adjacent_partitions(self, partition_id: str) -> list[str]:
        """Partitions reachable from this one through a single open door."""
        out = []
        for door in self.doors_of(partition_id):
            if door.allows_exit(partition_id):
                out.append(door.other_side(partition_id))
        return out

    def staircases(self) -> list[Partition]:
        return [
            p
            for p in self.partitions.values()
            if p.kind is PartitionKind.STAIRCASE
        ]

    def partitions_on_floor(self, floor: int) -> list[Partition]:
        return [p for p in self.partitions.values() if p.spans_floor(floor)]

    @property
    def num_floors(self) -> int:
        if not self.partitions:
            return 0
        return 1 + max(p.upper_floor for p in self.partitions.values())

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    def bounds(self) -> Rect:
        """Planar bounding rectangle over all partitions."""
        if not self.partitions:
            raise SpaceError("empty space has no bounds")
        rects = [p.bounds for p in self.partitions.values()]
        out = rects[0]
        for r in rects[1:]:
            out = out.union(r)
        return out

    def locate(self, point: Point) -> Partition | None:
        """``P(q)`` — the partition containing a point (linear scan).

        The composite index offers the fast, tree-based version; this one
        is the reference implementation used by tests and small examples.
        """
        for partition in self.partitions.values():
            if partition.contains_point(point):
                return partition
        return None

    def intra_distance(self, a: Point, b: Point) -> float:
        """Distance between two points inside one partition.

        Euclidean, per the paper's footnote 1 (obstructed intra-partition
        distances are out of scope).  Cross-floor staircase traversals get
        the vertical leg through the 3-D metric.
        """
        return a.distance(b, self.floor_height)

    def door_to_door(self, d1: Door, d2: Door) -> float:
        """Intra-partition distance between two door midpoints."""
        return d1.midpoint.distance(d2.midpoint, self.floor_height)

    def random_point(
        self, seed: int | None = None, rng: random.Random | None = None
    ) -> Point:
        """A uniform-ish random point: pick a non-staircase partition at
        random, then a uniform point inside its footprint."""
        if rng is None:
            rng = random.Random(seed)
        candidates = [
            p
            for p in self.partitions.values()
            if p.kind is not PartitionKind.STAIRCASE
        ]
        if not candidates:
            raise SpaceError("no non-staircase partitions to sample from")
        for _ in range(1000):
            partition = rng.choice(candidates)
            x, y = partition.bounds.random_xy(rng)
            if partition.contains_xy(x, y):
                return Point(x, y, partition.floor)
        raise SpaceError("failed to sample a point (degenerate footprints?)")

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Check model consistency; returns a list of problem strings
        (empty means the space is well-formed)."""
        problems = []
        for door in self.doors.values():
            for pid in door.partitions:
                if pid not in self.partitions:
                    problems.append(
                        f"door {door.door_id} references missing partition {pid}"
                    )
                    continue
                partition = self.partitions[pid]
                if door.door_id not in partition.door_ids:
                    problems.append(
                        f"door {door.door_id} missing from partition "
                        f"{pid}'s door list"
                    )
                if not partition.spans_floor(door.midpoint.floor):
                    problems.append(
                        f"door {door.door_id} midpoint floor "
                        f"{door.midpoint.floor} outside partition {pid}'s span"
                    )
        for partition in self.partitions.values():
            for door_id in partition.door_ids:
                if door_id not in self.doors:
                    problems.append(
                        f"partition {partition.partition_id} lists missing "
                        f"door {door_id}"
                    )
            if not partition.door_ids:
                problems.append(
                    f"partition {partition.partition_id} has no doors (isolated)"
                )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndoorSpace({len(self.partitions)} partitions, "
            f"{len(self.doors)} doors, {self.num_floors} floors)"
        )
