"""The indoor-space model (Section II-A of the paper).

An :class:`IndoorSpace` is a set of *partitions* (rooms, hallways,
staircases) interconnected by *doors*.  Doors may be unidirectional
(security gates).  The doors graph ``G_d`` (Figure 3) is derived from the
model by :class:`~repro.space.doors_graph.DoorsGraph`.

The synthetic shopping-mall generator lives in :mod:`repro.space.mall`;
temporal topology variations (sliding walls, closed doors) in
:mod:`repro.space.events`.
"""

from repro.space.door import Door, DoorDirection
from repro.space.partition import Partition, PartitionKind
from repro.space.floorplan import IndoorSpace
from repro.space.builder import SpaceBuilder
from repro.space.doors_graph import DoorsGraph
from repro.space.events import (
    CloseDoor,
    MergePartitions,
    OpenDoor,
    SetDoorDirection,
    SplitPartition,
    TopologyEvent,
)

__all__ = [
    "Door",
    "DoorDirection",
    "Partition",
    "PartitionKind",
    "IndoorSpace",
    "SpaceBuilder",
    "DoorsGraph",
    "TopologyEvent",
    "SplitPartition",
    "MergePartitions",
    "OpenDoor",
    "CloseDoor",
    "SetDoorDirection",
]
