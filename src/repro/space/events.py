"""Temporal topology variations (Section I and Section III-C).

Indoor partitions change over time: a conference hall is split by a
sliding wall (Figure 1, room 21), rooms are merged back, doors are closed
in emergencies, security gates flip direction.  Events mutate an
:class:`~repro.space.floorplan.IndoorSpace` and report exactly what
changed so the composite index can update incrementally instead of
rebuilding — the paper's key maintenance advantage over distance
pre-computation.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import TopologyError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.space.door import Door, DoorDirection
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition


@dataclass
class EventResult:
    """What an event changed; consumed by CompositeIndex.apply_event."""

    removed_partitions: list[Partition] = field(default_factory=list)
    added_partitions: list[Partition] = field(default_factory=list)
    removed_doors: list[Door] = field(default_factory=list)
    added_doors: list[Door] = field(default_factory=list)
    modified_doors: list[Door] = field(default_factory=list)


class TopologyEvent(abc.ABC):
    """A reversible-by-inverse mutation of the indoor topology."""

    @abc.abstractmethod
    def apply(self, space: IndoorSpace) -> EventResult:
        """Mutate the space and describe the change."""


@dataclass
class SplitPartition(TopologyEvent):
    """Split a rectangular partition along an axis-aligned line.

    Mounting the sliding wall of Figure 1's room 21 is
    ``SplitPartition("room21", axis="x", coord=...)`` — afterwards the
    two halves do not communicate directly, and paths must detour through
    doors ``d_41``/``d_42`` exactly as the paper describes.  Pass
    ``connecting_door=True`` for splits that keep an opening.
    """

    partition_id: str
    axis: str  # "x" splits by a vertical line x=coord, "y" by horizontal
    coord: float
    new_ids: tuple[str, str] | None = None
    connecting_door: bool = False
    connecting_door_id: str | None = None

    def apply(self, space: IndoorSpace) -> EventResult:
        old = space.partition(self.partition_id)
        if not isinstance(old.footprint, Rect):
            raise TopologyError(
                f"can only split rectangular partitions, "
                f"{self.partition_id!r} is not one"
            )
        if old.is_staircase:
            raise TopologyError("cannot split a staircase")
        rect = old.footprint
        if self.axis == "x":
            if not (rect.minx < self.coord < rect.maxx):
                raise TopologyError(
                    f"x={self.coord} does not cross {self.partition_id!r}"
                )
            r1, r2 = rect.split_x(self.coord)
        elif self.axis == "y":
            if not (rect.miny < self.coord < rect.maxy):
                raise TopologyError(
                    f"y={self.coord} does not cross {self.partition_id!r}"
                )
            r1, r2 = rect.split_y(self.coord)
        else:
            raise TopologyError(f"axis must be 'x' or 'y', got {self.axis!r}")

        id1, id2 = self.new_ids or (
            f"{self.partition_id}_a",
            f"{self.partition_id}_b",
        )

        # Snapshot attached doors, then remove the old partition (which
        # detaches them), add the halves, and re-attach each door to the
        # half its midpoint falls into.
        doors = [space.doors[d] for d in list(old.door_ids)]
        space.remove_partition(self.partition_id)
        p1 = space.add_partition(
            Partition(id1, r1, old.floor, old.kind)
        )
        p2 = space.add_partition(
            Partition(id2, r2, old.floor, old.kind)
        )
        result = EventResult(
            removed_partitions=[old], added_partitions=[p1, p2]
        )
        for door in doors:
            mid = door.midpoint
            target = id1 if r1.contains_xy(mid.x, mid.y) else id2
            new_partitions = tuple(
                target if pid == self.partition_id else pid
                for pid in door.partitions
            )
            new_door = Door(
                door.door_id,
                door.midpoint,
                new_partitions,  # type: ignore[arg-type]
                direction=door.direction,
                is_open=door.is_open,
            )
            space.add_door(new_door)
            result.removed_doors.append(door)
            result.added_doors.append(new_door)

        if self.connecting_door:
            did = self.connecting_door_id or f"{self.partition_id}_splitdoor"
            if self.axis == "x":
                at = Point(
                    self.coord, (rect.miny + rect.maxy) / 2.0, old.floor
                )
            else:
                at = Point(
                    (rect.minx + rect.maxx) / 2.0, self.coord, old.floor
                )
            door = Door(did, at, (id1, id2))
            space.add_door(door)
            result.added_doors.append(door)
        return result


@dataclass
class MergePartitions(TopologyEvent):
    """Merge two adjacent rectangular partitions into one.

    Dismounting the sliding wall of Figure 1: the two meeting-style
    partitions become a single banquet-style one.  The footprints must
    union to an exact rectangle; doors between the two halves disappear.
    """

    partition_ids: tuple[str, str]
    new_id: str | None = None

    def apply(self, space: IndoorSpace) -> EventResult:
        ida, idb = self.partition_ids
        pa, pb = space.partition(ida), space.partition(idb)
        if pa.is_staircase or pb.is_staircase:
            raise TopologyError("cannot merge staircases")
        if pa.floor != pb.floor:
            raise TopologyError("cannot merge partitions on different floors")
        if not isinstance(pa.footprint, Rect) or not isinstance(
            pb.footprint, Rect
        ):
            raise TopologyError("can only merge rectangular partitions")
        union = pa.footprint.union(pb.footprint)
        if abs(union.area - (pa.footprint.area + pb.footprint.area)) > 1e-9:
            raise TopologyError(
                f"{ida!r} and {idb!r} do not tile a rectangle"
            )
        new_id = self.new_id or f"{ida}+{idb}"

        doors_a = [space.doors[d] for d in list(pa.door_ids)]
        doors_b = [space.doors[d] for d in list(pb.door_ids)]
        internal = {
            d.door_id
            for d in doors_a
            if set(d.partitions) == {ida, idb}
        }
        space.remove_partition(ida)
        space.remove_partition(idb)
        merged = space.add_partition(
            Partition(new_id, union, pa.floor, pa.kind)
        )
        result = EventResult(
            removed_partitions=[pa, pb], added_partitions=[merged]
        )
        seen: set[str] = set()
        for door in doors_a + doors_b:
            if door.door_id in seen:
                continue
            seen.add(door.door_id)
            result.removed_doors.append(door)
            if door.door_id in internal:
                continue  # the sliding wall's own opening disappears
            new_partitions = tuple(
                new_id if pid in (ida, idb) else pid
                for pid in door.partitions
            )
            new_door = Door(
                door.door_id,
                door.midpoint,
                new_partitions,  # type: ignore[arg-type]
                direction=door.direction,
                is_open=door.is_open,
            )
            space.add_door(new_door)
            result.added_doors.append(new_door)
        return result


@dataclass
class CloseDoor(TopologyEvent):
    """Temporarily close a door (emergency blocking, booked rooms)."""

    door_id: str

    def apply(self, space: IndoorSpace) -> EventResult:
        door = space.door(self.door_id)
        if not door.is_open:
            raise TopologyError(f"door {self.door_id!r} is already closed")
        door.is_open = False
        space.topology_version += 1
        return EventResult(modified_doors=[door])


@dataclass
class OpenDoor(TopologyEvent):
    """Re-open a previously closed door."""

    door_id: str

    def apply(self, space: IndoorSpace) -> EventResult:
        door = space.door(self.door_id)
        if door.is_open:
            raise TopologyError(f"door {self.door_id!r} is already open")
        door.is_open = True
        space.topology_version += 1
        return EventResult(modified_doors=[door])


@dataclass
class SetDoorDirection(TopologyEvent):
    """Change a door's direction (e.g. flip a security gate).

    For ``DoorDirection.ONE_WAY``, ``from_partition`` selects the side
    movement starts from.
    """

    door_id: str
    direction: DoorDirection
    from_partition: str | None = None

    def apply(self, space: IndoorSpace) -> EventResult:
        door = space.door(self.door_id)
        if self.direction is DoorDirection.ONE_WAY:
            if self.from_partition is None:
                raise TopologyError(
                    "one-way direction needs from_partition"
                )
            if not door.connects(self.from_partition):
                raise TopologyError(
                    f"door {self.door_id!r} does not touch "
                    f"{self.from_partition!r}"
                )
            other = door.other_side(self.from_partition)
            door.partitions = (self.from_partition, other)
        door.direction = self.direction
        space.topology_version += 1
        return EventResult(modified_doors=[door])
