"""Synthetic shopping-mall generator.

The paper's evaluation uses a real mall floor plan (600 m x 600 m x 4 m
per floor, ~100 rooms, 4 staircases, connecting hallways; Section V-A).
The plan image is not available, so this module generates a floor plan
with the same statistics — this is the substitution documented in
DESIGN.md §4.  Queries and objects are placed randomly in both the paper
and here, so only the plan's aggregate shape matters.

Layout per floor (bottom to top):

* ``bands + 1`` horizontal hallways spanning the floor's width (the
  bottom and top ones shortened to make room for corner staircases);
* between consecutive hallways a *room strip*, split by a central
  *spine* hallway segment into a left and a right row of rooms;
* every room has a door onto the hallway below its strip; every spine
  segment has doors onto the hallways below and above it;
* four staircase shafts in the floor corners (SW/SE attach to the bottom
  hallway, NW/NE to the top one); a shaft spans two consecutive floors
  and has one entrance door per floor.

With the defaults (``bands=5``, ``rooms_per_band_side=10``) a floor has
100 rooms + 6 hallways + 5 spines = 111 partitions, matching the paper's
"100 rooms and 4 staircases" per 600 m x 600 m floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import SpaceError
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.space.builder import SpaceBuilder
from repro.space.door import DoorDirection
from repro.space.floorplan import IndoorSpace
from repro.space.partition import PartitionKind


@dataclass(frozen=True)
class MallParameters:
    """Generator knobs; the defaults reproduce the paper's plan."""

    floors: int = 1
    bands: int = 5
    rooms_per_band_side: int = 10
    floor_size: float = 600.0
    hallway_width: float = 6.0
    stair_size: float = 20.0
    floor_height: float = 4.0
    #: Fraction of room doors that are one-way (into the room); 0 in the
    #: paper's experiments, available for topology-sensitivity studies.
    one_way_fraction: float = 0.0
    seed: int | None = None
    #: Planar offset of the building's south-west corner — several
    #: buildings generated into one shared builder (a campus) each get
    #: their own origin so footprints never overlap.
    origin_x: float = 0.0
    origin_y: float = 0.0
    #: Prepended to every partition/door id; distinct prefixes keep
    #: multi-building ids collision-free (e.g. ``"b0_"``).
    id_prefix: str = ""

    @property
    def rooms_per_floor(self) -> int:
        return 2 * self.bands * self.rooms_per_band_side

    @property
    def partitions_per_floor(self) -> int:
        # rooms + hallways + spine segments (staircase shafts span floors
        # and are counted separately).
        return self.rooms_per_floor + (self.bands + 1) + self.bands


def build_mall(
    floors: int = 1,
    bands: int = 5,
    rooms_per_band_side: int = 10,
    floor_size: float = 600.0,
    hallway_width: float = 6.0,
    stair_size: float = 20.0,
    floor_height: float = 4.0,
    one_way_fraction: float = 0.0,
    seed: int | None = None,
) -> IndoorSpace:
    """Generate a multi-floor mall; see the module docstring for layout."""
    params = MallParameters(
        floors,
        bands,
        rooms_per_band_side,
        floor_size,
        hallway_width,
        stair_size,
        floor_height,
        one_way_fraction,
        seed,
    )
    return generate_mall(params)


def generate_mall(params: MallParameters) -> IndoorSpace:
    builder = SpaceBuilder(floor_height=params.floor_height)
    add_mall(builder, params)
    return builder.build(validate=True)


def add_mall(builder: SpaceBuilder, params: MallParameters) -> None:
    """Generate one mall *into* an existing builder.

    The composition primitive behind multi-building campuses
    (:func:`repro.bench.scenarios.build_campus`): each building is
    offset by its ``origin_x``/``origin_y`` and namespaced by its
    ``id_prefix``, and the caller wires the buildings together (e.g.
    with walkway hallways) before building the space.
    """
    if params.floors < 1:
        raise SpaceError("need at least one floor")
    if params.bands < 1:
        raise SpaceError("need at least one room band")
    wh = params.hallway_width
    bands = params.bands
    strip_height = (params.floor_size - (bands + 1) * wh) / bands
    if strip_height <= 0:
        raise SpaceError("hallways too wide for the floor size")
    rng = random.Random(params.seed)

    for floor in range(params.floors):
        _build_floor(builder, params, floor, strip_height, rng)

    for floor in range(params.floors - 1):
        _build_staircases(builder, params, floor)


# ---------------------------------------------------------------------------
# per-floor construction
# ---------------------------------------------------------------------------


def _strip_height(params: MallParameters) -> float:
    return (
        params.floor_size - (params.bands + 1) * params.hallway_width
    ) / params.bands


def _rect(params: MallParameters, x0: float, y0: float, x1: float, y1: float) -> Rect:
    """A building-local rect, shifted to the building's origin."""
    ox, oy = params.origin_x, params.origin_y
    return Rect(ox + x0, oy + y0, ox + x1, oy + y1)


def _hallway_id(params: MallParameters, floor: int, band: int) -> str:
    return f"{params.id_prefix}f{floor}_hall{band}"


def _spine_id(params: MallParameters, floor: int, band: int) -> str:
    return f"{params.id_prefix}f{floor}_spine{band}"


def _room_id(
    params: MallParameters, floor: int, band: int, side: str, index: int
) -> str:
    return f"{params.id_prefix}f{floor}_room_{band}{side}{index}"


def _build_floor(
    builder: SpaceBuilder,
    params: MallParameters,
    floor: int,
    strip_height: float,
    rng: random.Random,
) -> None:
    wh = params.hallway_width
    size = params.floor_size
    s = params.stair_size
    bands = params.bands
    k = params.rooms_per_band_side
    left_max = (size - wh) / 2.0
    right_min = (size + wh) / 2.0
    room_w = left_max / k

    # Hallways: bands+1 horizontal strips.  When the building has
    # staircases (floors > 1), the bottom (0) and top (bands) strips are
    # shortened to leave the corner shafts free.
    shorten = params.floors > 1
    if shorten and s >= room_w:
        raise SpaceError(
            "stair_size must be smaller than a room width so corner rooms "
            "still touch the shortened end hallways"
        )
    hallway_rects = []
    for band in range(bands + 1):
        y0 = band * (wh + strip_height)
        if shorten and band in (0, bands):
            rect = _rect(params, s, y0, size - s, y0 + wh)
        else:
            rect = _rect(params, 0.0, y0, size, y0 + wh)
        hallway_rects.append(rect)
        builder.add_hallway(_hallway_id(params, floor, band), rect, floor)

    # Room strips + spine segments.
    for band in range(bands):
        y0 = wh + band * (wh + strip_height)
        y1 = y0 + strip_height
        spine = _rect(params, left_max, y0, right_min, y1)
        builder.add_hallway(_spine_id(params, floor, band), spine, floor)
        builder.connect(
            _spine_id(params, floor, band),
            _hallway_id(params, floor, band),
            floor=floor,
        )
        builder.connect(
            _spine_id(params, floor, band),
            _hallway_id(params, floor, band + 1),
            floor=floor,
        )
        for side, x_start in (("L", 0.0), ("R", right_min)):
            for i in range(k):
                x0 = x_start + i * room_w
                room = _rect(params, x0, y0, x0 + room_w, y1)
                rid = _room_id(params, floor, band, side, i)
                builder.add_room(rid, room, floor)
                hall = _hallway_id(params, floor, band)
                direction = (
                    DoorDirection.ONE_WAY
                    if rng.random() < params.one_way_fraction
                    else DoorDirection.BIDIRECTIONAL
                )
                at = _door_on_shared_bottom_wall(
                    room, hallway_rects[band], floor
                )
                builder.connect(
                    hall, rid, at=at, direction=direction, floor=floor
                )


def _door_on_shared_bottom_wall(
    room: Rect, hallway: Rect, floor: int
) -> Point:
    """Door midpoint on the x-overlap of the room's bottom wall and the
    hallway's top wall (they touch by construction)."""
    lo = max(room.minx, hallway.minx)
    hi = min(room.maxx, hallway.maxx)
    if lo >= hi:
        raise SpaceError("room does not touch its hallway")
    return Point((lo + hi) / 2.0, room.miny, floor)


def _build_staircases(
    builder: SpaceBuilder, params: MallParameters, floor: int
) -> None:
    """Four corner shafts spanning ``floor .. floor+1``.

    Each shaft occupies the corner segment of the (shortened) bottom or
    top hallway strip, so shafts never overlap rooms: the only planar
    overlaps in the model are between stacked shafts of the same corner
    on consecutive floor gaps, which share no floor partition ambiguity
    for query points (queries and objects are placed outside
    staircases).
    """
    size = params.floor_size
    s = params.stair_size
    wh = params.hallway_width
    top_y = params.bands * (wh + _strip_height(params))
    corners = {
        # attaches to bottom hallway
        "sw": (_rect(params, 0.0, 0.0, s, wh), 0),
        "se": (_rect(params, size - s, 0.0, size, wh), 0),
        "nw": (_rect(params, 0.0, top_y, s, top_y + wh), params.bands),
        "ne": (
            _rect(params, size - s, top_y, size, top_y + wh),
            params.bands,
        ),
    }
    for name, (rect, band) in corners.items():
        sid = f"{params.id_prefix}stair_{name}_{floor}"
        builder.add_staircase(sid, rect, floor, floor + 1)
        for entrance_floor in (floor, floor + 1):
            builder.connect(
                sid,
                _hallway_id(params, entrance_floor, band),
                floor=entrance_floor,
                door_id=f"{sid}_e{entrance_floor}",
            )


# ---------------------------------------------------------------------------
# reporting helpers
# ---------------------------------------------------------------------------


def mall_statistics(space: IndoorSpace) -> dict[str, int]:
    """Aggregate counts, used by benchmarks and EXPERIMENTS.md."""
    kinds = {kind: 0 for kind in PartitionKind}
    for p in space.partitions.values():
        kinds[p.kind] += 1
    return {
        "partitions": len(space.partitions),
        "doors": len(space.doors),
        "rooms": kinds[PartitionKind.ROOM],
        "hallways": kinds[PartitionKind.HALLWAY],
        "staircases": kinds[PartitionKind.STAIRCASE],
        "floors": space.num_floors,
    }
