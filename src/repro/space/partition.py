"""Partitions — rooms, hallways and staircases (Section II-A).

A partition is an atomic indoor element with geometry (a planar
footprint aligned to one floor, or a vertical span for staircases) and
topology (its doors).  The paper treats hallways and staircases as rooms;
we keep a ``kind`` tag because staircases get special treatment in the
skeleton tier and hallways in the decomposition step.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SpaceError
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect


class PartitionKind(enum.Enum):
    ROOM = "room"
    HALLWAY = "hallway"
    STAIRCASE = "staircase"


@dataclass(eq=False)
class Partition:
    """An indoor partition.

    Parameters
    ----------
    partition_id:
        Unique identifier.
    footprint:
        Planar geometry — a :class:`Rect` or a rectilinear
        :class:`Polygon`.  A staircase's footprint is its shaft cross
        section (shared by both floors it spans).
    floor:
        The (lowest) floor the partition lies on.
    kind:
        Room, hallway or staircase.
    upper_floor:
        For staircases, the highest floor of the span; equals ``floor``
        for everything else.
    """

    partition_id: str
    footprint: Rect | Polygon
    floor: int
    kind: PartitionKind = PartitionKind.ROOM
    upper_floor: int | None = None
    door_ids: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.upper_floor is None:
            self.upper_floor = self.floor
        if self.upper_floor < self.floor:
            raise SpaceError(
                f"partition {self.partition_id!r}: upper_floor < floor"
            )
        if (
            self.kind is not PartitionKind.STAIRCASE
            and self.upper_floor != self.floor
        ):
            raise SpaceError(
                f"partition {self.partition_id!r}: only staircases may span floors"
            )

    def __hash__(self) -> int:
        return hash(self.partition_id)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Partition)
            and other.partition_id == self.partition_id
        )

    # -- geometry ---------------------------------------------------------

    @property
    def bounds(self) -> Rect:
        if isinstance(self.footprint, Rect):
            return self.footprint
        return self.footprint.bounds()

    @property
    def floor_span(self) -> tuple[int, int]:
        """``(lowest, highest)`` floor of the partition."""
        return (self.floor, self.upper_floor)

    @property
    def is_staircase(self) -> bool:
        return self.kind is PartitionKind.STAIRCASE

    def spans_floor(self, floor: int) -> bool:
        return self.floor <= floor <= self.upper_floor

    def contains_xy(self, x: float, y: float) -> bool:
        if isinstance(self.footprint, Rect):
            return self.footprint.contains_xy(x, y)
        return self.footprint.contains_xy(x, y)

    def contains_point(self, point) -> bool:
        """Full containment test: right floor span *and* inside footprint."""
        return self.spans_floor(point.floor) and self.contains_xy(point.x, point.y)

    @property
    def area(self) -> float:
        if isinstance(self.footprint, Rect):
            return self.footprint.area
        return self.footprint.area

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = (
            f"floors {self.floor}-{self.upper_floor}"
            if self.upper_floor != self.floor
            else f"floor {self.floor}"
        )
        return f"Partition({self.partition_id}, {self.kind.value}, {span})"
