"""Doors — the connectors between indoor partitions.

Every door joins exactly two partitions (the paper's simplifying
assumption, Section III-A.4).  A door can be *bidirectional* or *one-way*
(e.g. airport security exits, door ``d_12`` in Figure 1); one-way doors
induce directed edges in the doors graph.  Doors can also be temporarily
closed by topology events.

Door-related distances use the door's midpoint (paper, footnote 1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SpaceError
from repro.geometry.point import Point


class DoorDirection(enum.Enum):
    """Movement permissions through a door."""

    BIDIRECTIONAL = "both"
    ONE_WAY = "one_way"


@dataclass(eq=False)
class Door:
    """A door between two partitions.

    Parameters
    ----------
    door_id:
        Unique identifier.
    midpoint:
        The door's midpoint; all door-to-door distances are measured
        from here.  For a staircase entrance the midpoint's ``floor`` is
        the floor of that entrance.
    partitions:
        The pair of partition ids the door connects.  For a one-way door
        the order is significant: movement is allowed from
        ``partitions[0]`` to ``partitions[1]`` only.
    direction:
        :attr:`DoorDirection.BIDIRECTIONAL` (default) or
        :attr:`DoorDirection.ONE_WAY`.
    is_open:
        Closed doors are skipped by the doors graph (temporal variation,
        Section I).
    """

    door_id: str
    midpoint: Point
    partitions: tuple[str, str]
    direction: DoorDirection = DoorDirection.BIDIRECTIONAL
    is_open: bool = field(default=True)

    def __post_init__(self) -> None:
        if len(self.partitions) != 2:
            raise SpaceError(
                f"door {self.door_id!r} must connect exactly two partitions"
            )
        if self.partitions[0] == self.partitions[1]:
            raise SpaceError(
                f"door {self.door_id!r} connects a partition to itself"
            )

    # Identity semantics: a door is its id.
    def __hash__(self) -> int:
        return hash(self.door_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Door) and other.door_id == self.door_id

    # -- topology predicates ----------------------------------------------

    def connects(self, partition_id: str) -> bool:
        return partition_id in self.partitions

    def other_side(self, partition_id: str) -> str:
        """The partition on the other side of the door."""
        a, b = self.partitions
        if partition_id == a:
            return b
        if partition_id == b:
            return a
        raise SpaceError(
            f"door {self.door_id!r} does not touch partition {partition_id!r}"
        )

    def allows_exit(self, partition_id: str) -> bool:
        """May one *leave* ``partition_id`` through this door?"""
        if not self.is_open or not self.connects(partition_id):
            return False
        if self.direction is DoorDirection.BIDIRECTIONAL:
            return True
        return self.partitions[0] == partition_id

    def allows_entry(self, partition_id: str) -> bool:
        """May one *enter* ``partition_id`` through this door?"""
        if not self.is_open or not self.connects(partition_id):
            return False
        if self.direction is DoorDirection.BIDIRECTIONAL:
            return True
        return self.partitions[1] == partition_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        arrow = "<->" if self.direction is DoorDirection.BIDIRECTIONAL else "->"
        state = "" if self.is_open else " (closed)"
        return (
            f"Door({self.door_id}: {self.partitions[0]}{arrow}"
            f"{self.partitions[1]}{state})"
        )
