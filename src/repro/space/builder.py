"""Fluent construction of indoor spaces.

:class:`SpaceBuilder` keeps examples and tests readable: rooms are added
by footprint, doors are placed automatically on the shared wall of two
rectangular partitions (or at an explicit point), and staircases come
with their two entrance doors wired to the surrounding partitions.
"""

from __future__ import annotations

import itertools

from repro.errors import SpaceError
from repro.geometry.point import DEFAULT_FLOOR_HEIGHT, Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.geometry.segment import Segment
from repro.space.door import Door, DoorDirection
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition, PartitionKind


class SpaceBuilder:
    """Build an :class:`IndoorSpace` step by step.

    Example::

        b = SpaceBuilder()
        b.add_room("r1", Rect(0, 0, 10, 10))
        b.add_room("r2", Rect(10, 0, 20, 10))
        b.connect("r1", "r2")                  # door on the shared wall
        space = b.build()
    """

    def __init__(self, floor_height: float = DEFAULT_FLOOR_HEIGHT) -> None:
        self._space = IndoorSpace(floor_height=floor_height)
        self._door_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------

    def add_room(
        self,
        partition_id: str,
        footprint: Rect | Polygon,
        floor: int = 0,
        kind: PartitionKind = PartitionKind.ROOM,
    ) -> "SpaceBuilder":
        self._space.add_partition(
            Partition(partition_id, footprint, floor, kind)
        )
        return self

    def add_hallway(
        self, partition_id: str, footprint: Rect | Polygon, floor: int = 0
    ) -> "SpaceBuilder":
        return self.add_room(
            partition_id, footprint, floor, kind=PartitionKind.HALLWAY
        )

    def add_staircase(
        self,
        partition_id: str,
        footprint: Rect,
        lower_floor: int,
        upper_floor: int | None = None,
    ) -> "SpaceBuilder":
        """Add a staircase shaft spanning ``lower_floor..upper_floor``.

        Entrance doors are *not* created here — call :meth:`connect` for
        each entrance, giving the floor the entrance sits on.
        """
        if upper_floor is None:
            upper_floor = lower_floor + 1
        self._space.add_partition(
            Partition(
                partition_id,
                footprint,
                lower_floor,
                PartitionKind.STAIRCASE,
                upper_floor=upper_floor,
            )
        )
        return self

    # ------------------------------------------------------------------
    # doors
    # ------------------------------------------------------------------

    def connect(
        self,
        from_partition: str,
        to_partition: str,
        at: Point | None = None,
        door_id: str | None = None,
        direction: DoorDirection = DoorDirection.BIDIRECTIONAL,
        floor: int | None = None,
    ) -> "SpaceBuilder":
        """Add a door between two partitions.

        When ``at`` is omitted the door is placed at the midpoint of the
        shared wall of the two (rectangular) footprints; ``floor`` selects
        the entrance floor for doors involving a staircase (defaults to
        the lower partition's floor).
        """
        space = self._space
        pa = space.partition(from_partition)
        pb = space.partition(to_partition)
        if door_id is None:
            door_id = f"d{next(self._door_counter)}"
            while door_id in space.doors:  # skip explicitly taken ids
                door_id = f"d{next(self._door_counter)}"
        if floor is None:
            floor = self._common_floor(pa, pb)
        if at is None:
            at = self._shared_wall_midpoint(pa, pb, floor)
        elif at.floor != floor:
            at = at.on_floor(floor)
        door = Door(
            door_id,
            at,
            (from_partition, to_partition),
            direction=direction,
        )
        space.add_door(door)
        return self

    def one_way(
        self,
        from_partition: str,
        to_partition: str,
        at: Point | None = None,
        door_id: str | None = None,
        floor: int | None = None,
    ) -> "SpaceBuilder":
        """Add a one-way door permitting only ``from -> to`` movement."""
        return self.connect(
            from_partition,
            to_partition,
            at=at,
            door_id=door_id,
            direction=DoorDirection.ONE_WAY,
            floor=floor,
        )

    # ------------------------------------------------------------------

    def build(self, validate: bool = True) -> IndoorSpace:
        if validate:
            problems = self._space.validate()
            if problems:
                raise SpaceError(
                    "invalid space: " + "; ".join(problems[:5])
                    + ("; ..." if len(problems) > 5 else "")
                )
        return self._space

    @property
    def space(self) -> IndoorSpace:
        """The space under construction (for advanced tweaks)."""
        return self._space

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _common_floor(pa: Partition, pb: Partition) -> int:
        lo = max(pa.floor, pb.floor)
        hi = min(pa.upper_floor, pb.upper_floor)
        if lo > hi:
            raise SpaceError(
                f"partitions {pa.partition_id!r} and {pb.partition_id!r} "
                f"share no floor; pass floor= explicitly"
            )
        return lo

    @staticmethod
    def _shared_wall_midpoint(pa: Partition, pb: Partition, floor: int) -> Point:
        """Midpoint of the wall shared by two rectangular partitions."""
        ra, rb = pa.bounds, pb.bounds
        edges_a = _rect_edges(ra)
        edges_b = _rect_edges(rb)
        best: Segment | None = None
        for ea in edges_a:
            for eb in edges_b:
                shared = ea.overlap_1d(eb)
                if shared is not None and (
                    best is None or shared.length > best.length
                ):
                    best = shared
        if best is None:
            raise SpaceError(
                f"partitions {pa.partition_id!r} and {pb.partition_id!r} "
                f"share no wall; pass at= explicitly"
            )
        x, y = best.midpoint
        return Point(x, y, floor)


def _rect_edges(rect: Rect) -> list[Segment]:
    return [
        Segment(rect.minx, rect.miny, rect.maxx, rect.miny),
        Segment(rect.maxx, rect.miny, rect.maxx, rect.maxy),
        Segment(rect.maxx, rect.maxy, rect.minx, rect.maxy),
        Segment(rect.minx, rect.maxy, rect.minx, rect.miny),
    ]
