"""JSON import/export of indoor spaces.

Floor plans are long-lived assets; a downstream user needs to load the
same building across sessions and tools.  The schema is deliberately
plain: a dict with ``floor_height``, ``partitions`` and ``doors``
arrays, footprints either rectangles (``[minx, miny, maxx, maxy]``) or
polygons (vertex lists).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.errors import SpaceError
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rect import Rect
from repro.space.door import Door, DoorDirection
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition, PartitionKind

SCHEMA_VERSION = 1


def space_to_dict(space: IndoorSpace) -> dict[str, Any]:
    """Serialise a space to a JSON-compatible dict."""
    partitions = []
    for p in space.partitions.values():
        entry: dict[str, Any] = {
            "id": p.partition_id,
            "kind": p.kind.value,
            "floor": p.floor,
        }
        if p.upper_floor != p.floor:
            entry["upper_floor"] = p.upper_floor
        if isinstance(p.footprint, Rect):
            entry["rect"] = [
                p.footprint.minx, p.footprint.miny,
                p.footprint.maxx, p.footprint.maxy,
            ]
        else:
            entry["polygon"] = [list(v) for v in p.footprint.vertices]
        partitions.append(entry)
    doors = []
    for d in space.doors.values():
        entry = {
            "id": d.door_id,
            "partitions": list(d.partitions),
            "midpoint": [d.midpoint.x, d.midpoint.y, d.midpoint.floor],
            "direction": d.direction.value,
        }
        if not d.is_open:
            entry["closed"] = True
        doors.append(entry)
    return {
        "schema": SCHEMA_VERSION,
        "floor_height": space.floor_height,
        "partitions": partitions,
        "doors": doors,
    }


def space_from_dict(data: dict[str, Any]) -> IndoorSpace:
    """Deserialise a space (inverse of :func:`space_to_dict`)."""
    if data.get("schema") != SCHEMA_VERSION:
        raise SpaceError(
            f"unsupported schema version {data.get('schema')!r}"
        )
    space = IndoorSpace(floor_height=float(data["floor_height"]))
    for entry in data["partitions"]:
        if "rect" in entry:
            footprint: Rect | Polygon = Rect(*entry["rect"])
        elif "polygon" in entry:
            footprint = Polygon(entry["polygon"])
        else:
            raise SpaceError(
                f"partition {entry.get('id')!r} has no footprint"
            )
        space.add_partition(
            Partition(
                entry["id"],
                footprint,
                int(entry["floor"]),
                PartitionKind(entry["kind"]),
                upper_floor=int(entry.get("upper_floor", entry["floor"])),
            )
        )
    for entry in data["doors"]:
        x, y, floor = entry["midpoint"]
        door = Door(
            entry["id"],
            Point(float(x), float(y), int(floor)),
            tuple(entry["partitions"]),  # type: ignore[arg-type]
            DoorDirection(entry["direction"]),
            is_open=not entry.get("closed", False),
        )
        space.add_door(door)
    return space


def save_space(space: IndoorSpace, path: str | Path) -> None:
    """Write a space to a JSON file."""
    Path(path).write_text(json.dumps(space_to_dict(space), indent=2))


def load_space(path: str | Path) -> IndoorSpace:
    """Read a space from a JSON file."""
    return space_from_dict(json.loads(Path(path).read_text()))
