"""The composite indoor index (Section III, Figures 2 and 8).

Three layers over one tree:

* **Geometric layer** — the *tree tier* (:class:`IndRTree`, an R*-tree
  over decomposed index units with the 1 cm vertical-extent trick) and
  the *skeleton tier* (:class:`SkeletonTier`, staircase-entrance graph
  with the ``M_s2s`` matrix and the skeleton distance of Definition 2);
* **Topological layer** — door links between leaf partitions (a de facto
  doors graph integrated into the index);
* **Object layer** — per-leaf object buckets plus the ``o-table`` and
  ``h-table`` mappings.

:class:`CompositeIndex` ties the layers together and provides
RangeSearch (Algorithm 4) plus the dynamic operations of Section III-C.
"""

from repro.index.rstar import RStarTree, TreeNode
from repro.index.bulk import str_bulk_load
from repro.index.indr import IndexUnit, IndRTree
from repro.index.skeleton import SkeletonTier
from repro.index.tables import HTable, OTable
from repro.index.composite import CompositeIndex, RangeSearchResult

__all__ = [
    "RStarTree",
    "TreeNode",
    "str_bulk_load",
    "IndexUnit",
    "IndRTree",
    "SkeletonTier",
    "OTable",
    "HTable",
    "CompositeIndex",
    "RangeSearchResult",
]
