"""The composite index (Section III, Figure 8) and RangeSearch (Alg. 4).

Ties the four pieces together:

* tree tier (:class:`IndRTree`) — geometric pruning via the skeleton
  distance bound;
* skeleton tier (:class:`SkeletonTier`) — ``M_s2s`` and Lemma 6;
* topological layer (:class:`DoorsGraph` adjacency, derived lazily from
  the space and annotated per partition) — inter-partition links;
* object layer (:class:`OTable` buckets + :class:`HTable` unit mapping).

Dynamic operations (Section III-C) mutate the layers incrementally; the
doors graph refreshes itself from the space's ``topology_version``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import IndexError_
from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.rect import Box3
from repro.index.indr import IndexUnit, IndRTree
from repro.index.skeleton import SkeletonTier
from repro.index.tables import HTable, OTable
from repro.objects.instances import InstanceSet
from repro.objects.population import ObjectMove, ObjectPopulation
from repro.objects.uncertain import UncertainObject
from repro.space.doors_graph import DoorsGraph
from repro.space.events import EventResult, TopologyEvent
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition, PartitionKind


@dataclass
class RangeSearchResult:
    """Output of Algorithm 4: candidate objects ``R^o`` and candidate
    partitions ``R^p``, plus traversal statistics."""

    objects: list[UncertainObject] = field(default_factory=list)
    partitions: set[str] = field(default_factory=set)
    nodes_visited: int = 0
    units_checked: int = 0


class CompositeIndex:
    """The paper's composite indoor index over a space + population."""

    def __init__(
        self,
        space: IndoorSpace,
        population: ObjectPopulation,
        indr: IndRTree,
        skeleton: SkeletonTier,
        doors_graph: DoorsGraph,
        otable: OTable,
        htable: HTable,
        build_times: dict[str, float],
    ) -> None:
        self.space = space
        self.population = population
        self.indr = indr
        self.skeleton = skeleton
        self.doors_graph = doors_graph
        self.otable = otable
        self.htable = htable
        self.build_times = build_times

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def build(
        space: IndoorSpace,
        population: ObjectPopulation | None = None,
        fanout: int = 20,
        t_shape: float = 0.5,
        bulk: bool = True,
    ) -> "CompositeIndex":
        """Build all layers; per-layer wall-clock times are recorded in
        ``build_times`` (Figure 15(b))."""
        if population is None:
            population = ObjectPopulation(space)
        times: dict[str, float] = {}

        t0 = time.perf_counter()
        indr = IndRTree.from_space(space, fanout=fanout, t_shape=t_shape, bulk=bulk)
        times["tree_tier"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        htable = HTable()
        for unit in indr.units.values():
            htable.add(unit.unit_id, unit.partition_id)
        doors_graph = DoorsGraph.from_space(space)
        times["topological_layer"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        skeleton = SkeletonTier(space)
        times["skeleton_tier"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        otable = OTable()
        index = CompositeIndex(
            space, population, indr, skeleton, doors_graph, otable, htable, times
        )
        for obj in population:
            otable.add(obj.object_id, index._resolve_units(obj))
        times["object_layer"] = time.perf_counter() - t0
        return index

    def objects(self) -> Iterable[UncertainObject]:
        """The indexed objects in population insertion order — the
        order a checkpoint records them in (and must, for a restored
        engine to emit deltas in the same order; see
        :mod:`repro.persist.checkpoint`)."""
        return iter(self.population)

    # ------------------------------------------------------------------
    # geometric-layer distances
    # ------------------------------------------------------------------

    def min_skeleton_distance_to_node(self, q: Point, node) -> float:
        """``|q, e|_K^min`` for a tree node (Eq. 10)."""
        lf, uf = self.indr.node_floor_span(node)
        return self.skeleton.min_distance_to_box(q, node.box, lf, uf)

    def min_skeleton_distance_to_unit(self, q: Point, unit: IndexUnit) -> float:
        box = unit.box(self.space.floor_height)
        return self.skeleton.min_distance_to_box(q, box, unit.floor, unit.floor)

    def min_skeleton_distance_to_object(
        self, q: Point, obj: UncertainObject
    ) -> float:
        """``|q, O|_K^min`` over the object's instances."""
        return self.skeleton.min_distance_to_point_set(
            q, obj.instances, obj.floor
        )

    # ------------------------------------------------------------------
    # RangeSearch (Algorithm 4)
    # ------------------------------------------------------------------

    def range_search(
        self, q: Point, r: float, use_skeleton: bool = True
    ) -> RangeSearchResult:
        """Candidate objects and partitions within skeleton distance
        ``r`` of ``q`` — no false negatives by Lemma 6.

        ``use_skeleton=False`` degrades the node bound to the plain
        Euclidean MINDIST (the "withoutSkeleton" ablation of
        Figure 15(a)).
        """
        result = RangeSearchResult()
        fh = self.space.floor_height
        seen_objects: set[str] = set()
        stack = [self.indr.root]
        while stack:
            node = stack.pop()
            result.nodes_visited += 1
            if node.is_leaf:
                for entry in node.entries:
                    unit: IndexUnit = entry.item
                    result.units_checked += 1
                    if self._node_bound(q, entry.box, unit.floor, unit.floor,
                                        use_skeleton) > r:
                        continue
                    result.partitions.add(unit.partition_id)
                    for object_id in self.otable.objects_in(unit.unit_id):
                        if object_id in seen_objects:
                            continue
                        obj = self.population.get(object_id)
                        if use_skeleton:
                            d = self.min_skeleton_distance_to_object(q, obj)
                        else:
                            d = obj.instances.min_distance_to(q, fh)
                        if d <= r:
                            seen_objects.add(object_id)
                            result.objects.append(obj)
                continue
            for entry in node.entries:
                child = entry.child
                lf, uf = self.indr.node_floor_span(child)
                if self._node_bound(q, entry.box, lf, uf, use_skeleton) <= r:
                    stack.append(child)
        return result

    def _node_bound(
        self, q: Point, box: Box3, lf: int, uf: int, use_skeleton: bool
    ) -> float:
        if use_skeleton:
            return self.skeleton.min_distance_to_box(q, box, lf, uf)
        fh = self.space.floor_height
        # Flattening (dropping the 1 cm vertical extent) is only valid
        # for single-floor boxes; a multi-floor node's z-range must stay
        # intact or upper floors would be wrongly pruned.
        flat = box.flattened() if lf == uf else box
        return flat.min_distance_xyz(q.x, q.y, q.z(fh))

    # ------------------------------------------------------------------
    # point location
    # ------------------------------------------------------------------

    def locate(self, q: Point) -> Partition | None:
        """Tree-based point location (the r = 0 degenerate range query)."""
        unit = self.indr.locate_point(q)
        if unit is None:
            return None
        return self.space.partition(self.htable.partition_of(unit.unit_id))

    # ------------------------------------------------------------------
    # object-layer operations (Section III-C.2)
    # ------------------------------------------------------------------

    def _resolve_units(self, obj: UncertainObject) -> set[str]:
        """Index units overlapping the object's uncertainty region."""
        units = self.indr.units_overlapping_rect(obj.bounds(), obj.floor)
        out = {u.unit_id for u in units}
        if not out:
            raise IndexError_(
                f"object {obj.object_id!r} overlaps no index unit"
            )
        return out

    def insert_object(self, obj: UncertainObject) -> None:
        """Insert an object (population + o-table + leaf buckets)."""
        if obj.object_id not in self.population:
            self.population.insert(obj)
        self.otable.add(obj.object_id, self._resolve_units(obj))

    def delete_object(self, object_id: str) -> UncertainObject:
        """Delete an object using the o-table (no tree search)."""
        self.otable.remove(object_id)
        return self.population.delete(object_id)

    def _moved_unit_ids(
        self, moved: UncertainObject, old_units: set[str]
    ) -> set[str]:
        """New unit set for a moved object via the adjacency fast path.

        In reality an object enters a partition only from an adjacent
        one, so the new units are found by scanning the old units'
        partitions plus their neighbours through the topological layer —
        no indR-tree search (Section III-C.2).  A move that jumps beyond
        the neighbourhood falls back to the tree.
        """
        candidate_partitions: set[str] = set()
        for unit_id in old_units:
            pid = self.htable.partition_of(unit_id)
            candidate_partitions.add(pid)
            for nbr in self.space.adjacent_partitions(pid):
                candidate_partitions.add(nbr)
        rect = moved.bounds()
        new_unit_ids: set[str] = set()
        covered_center = False
        center = moved.region.center
        for pid in candidate_partitions:
            for unit in self.indr.units_of_partition.get(pid, ()):
                if unit.floor == moved.floor and unit.rect.intersects(rect):
                    new_unit_ids.add(unit.unit_id)
                    if unit.contains_point(center):
                        covered_center = True
        if not new_unit_ids or not covered_center:
            new_unit_ids = self._resolve_units(moved)  # tree fallback
        return new_unit_ids

    def move_object(
        self,
        object_id: str,
        new_region: Circle,
        new_instances: InstanceSet,
    ) -> UncertainObject:
        """Object update via the adjacency fast path (Section III-C.2)."""
        old_units = self.otable.units_of(object_id)
        moved = self.population.move(object_id, new_region, new_instances)
        self.otable.update(object_id, self._moved_unit_ids(moved, old_units))
        return moved

    def update_objects(self, moves: Iterable[ObjectMove]) -> list[UncertainObject]:
        """Absorb a batch of streamed position updates.

        The batched counterpart of :meth:`move_object`: each move goes
        through the same adjacency fast path, but the o-table is
        maintained by set *diffing* (:meth:`repro.index.tables.OTable.update`)
        instead of delete+insert, so an object that stays within its leaf
        units costs no bucket churn at all.  Returns the moved objects in
        input order — the continuous query monitor consumes them to
        maintain standing result sets incrementally.

        The batch applies atomically: every move is first resolved
        against the pre-batch state (unknown ids and regions overlapping
        no index unit both raise here), and only then is the whole batch
        applied — a bad batch never leaves a half-applied prefix behind.

        A batch may carry several moves for the same object (a fast
        positioning system can re-observe an object twice within one
        collection window): the *last* move wins and the object is
        diffed/returned exactly once, so consumers never see a stale
        intermediate position.
        """
        otable = self.otable
        population = self.population
        last_write: dict[str, ObjectMove] = {
            move.object_id: move for move in moves
        }
        staged: list[tuple[UncertainObject, set[str]]] = []
        for move in last_write.values():
            old_units = otable.units_of(move.object_id)  # raises on unknown
            moved = UncertainObject(
                move.object_id, move.new_region, move.new_instances
            )
            staged.append((moved, self._moved_unit_ids(moved, old_units)))
        moved_objects: list[UncertainObject] = []
        for moved, new_units in staged:
            population.delete(moved.object_id)
            population.insert(moved)
            otable.update(moved.object_id, new_units)
            moved_objects.append(moved)
        return moved_objects

    # ------------------------------------------------------------------
    # topological-layer operations (Section III-C.1)
    # ------------------------------------------------------------------

    def insert_partition(self, partition: Partition) -> None:
        """Index a partition that was just added to the space."""
        units = self.indr.insert_partition(partition)
        for unit in units:
            self.htable.add(unit.unit_id, unit.partition_id)
        if partition.kind is PartitionKind.STAIRCASE:
            self.skeleton.rebuild()

    def delete_partition(self, partition_id: str) -> list[str]:
        """Un-index a partition; returns ids of objects that overlapped
        it (their unit sets were re-resolved)."""
        was_staircase = (
            partition_id in self.space.partitions
            and self.space.partition(partition_id).kind
            is PartitionKind.STAIRCASE
        )
        units = self.indr.delete_partition(partition_id)
        affected: set[str] = set()
        for unit in units:
            self.htable.remove_unit(unit.unit_id)
            affected |= self.otable.drop_unit(unit.unit_id)
        for object_id in affected:
            obj = self.population.get(object_id)
            obj.invalidate_subregions()
            remaining = self.otable.units_of(object_id)
            self.otable.remove(object_id)
            try:
                self.otable.add(object_id, self._resolve_units(obj))
            except IndexError_:
                # Object stranded in removed space: keep its remaining
                # units if any, else drop it from the index.
                if remaining:
                    self.otable.add(object_id, remaining)
        if was_staircase:
            self.skeleton.rebuild()
        else:
            # The partition is usually already gone from the space (the
            # event mutates the space first), bumping topology_version —
            # let the skeleton resynchronise from that.
            self.skeleton.ensure_fresh()
        return sorted(affected)

    def apply_event(self, event: TopologyEvent) -> EventResult:
        """Apply a topology event to the space and mirror it here."""
        removed_ids = set()
        result = event.apply(self.space)
        for partition in result.removed_partitions:
            removed_ids.add(partition.partition_id)
            self.delete_partition(partition.partition_id)
        for partition in result.added_partitions:
            self.insert_partition(partition)
        # Re-home objects that sat in replaced partitions.
        for partition in result.added_partitions:
            for unit in self.indr.units_of_partition[partition.partition_id]:
                for object_id in self._objects_needing(unit):
                    obj = self.population.get(object_id)
                    obj.invalidate_subregions()
                    if object_id in self.otable:
                        self.otable.remove(object_id)
                    self.otable.add(object_id, self._resolve_units(obj))
        if result.modified_doors:
            # Doors graph and skeleton refresh lazily off topology_version;
            # nothing structural to do in the tree/object layers.
            self.skeleton.ensure_fresh()
        return result

    def _objects_needing(self, unit: IndexUnit) -> list[str]:
        """Objects whose region overlaps a newly added unit but whose
        o-table entry does not yet reference it."""
        out = []
        for obj in self.population:
            if obj.floor != unit.floor:
                continue
            if not unit.rect.intersects(obj.bounds()):
                continue
            if (
                obj.object_id not in self.otable
                or unit.unit_id not in self.otable.units_of(obj.object_id)
            ):
                out.append(obj.object_id)
        return out

    # ------------------------------------------------------------------

    def validate(self) -> list[str]:
        """Cross-layer consistency check (tests + debugging)."""
        problems = self.indr.tree.validate(check_fill=False)
        for unit_id in self.indr.units:
            if unit_id not in self.htable:
                problems.append(f"unit {unit_id} missing from h-table")
        for obj in self.population:
            if obj.object_id not in self.otable:
                problems.append(f"object {obj.object_id} missing from o-table")
                continue
            for unit_id in self.otable.units_of(obj.object_id):
                if unit_id not in self.indr.units:
                    problems.append(
                        f"object {obj.object_id} references dead unit {unit_id}"
                    )
        return problems
