"""Sort-Tile-Recursive (STR) bulk loading — the "packed R*-tree".

The paper packs the tree at construction time (Section V-A, [17]).  STR
sorts items by x, slices into vertical slabs, sorts each slab by y,
slices again, then by z, and packs consecutive runs of ``fanout`` items
into leaves; upper levels are packed recursively the same way.
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.errors import IndexError_
from repro.geometry.rect import Box3
from repro.index.rstar import Entry, RStarTree, TreeNode


def str_bulk_load(
    items: Sequence[tuple[Any, Box3]], fanout: int = 20
) -> RStarTree:
    """Build a packed tree from ``(item, box)`` pairs.

    The resulting tree is a valid :class:`RStarTree`: subsequent inserts
    and deletes use the normal R* algorithms.
    """
    tree = RStarTree(fanout=fanout)
    if not items:
        return tree
    entries = [Entry(box, item=item) for item, box in items]
    nodes = _pack_level(entries, fanout, is_leaf=True)
    while len(nodes) > 1:
        upper_entries = [Entry(n.box, child=n) for n in nodes]
        nodes = _pack_level(upper_entries, fanout, is_leaf=False)
    tree.root = nodes[0]
    tree.root.parent = None
    tree.size = len(entries)
    return tree


def _pack_level(
    entries: list[Entry], fanout: int, is_leaf: bool
) -> list[TreeNode]:
    """Tile one level of entries into nodes of at most ``fanout``."""
    if not entries:
        raise IndexError_("cannot pack an empty level")
    n = len(entries)
    n_nodes = math.ceil(n / fanout)
    # Number of vertical slabs along x, then runs along y inside a slab.
    n_slabs = math.ceil(math.sqrt(n_nodes))
    entries = sorted(entries, key=lambda e: e.box.center[0])
    slab_size = math.ceil(n / n_slabs)
    nodes: list[TreeNode] = []
    for i in range(0, n, slab_size):
        slab = sorted(
            entries[i : i + slab_size],
            key=lambda e: (e.box.center[2], e.box.center[1]),
        )
        for j in range(0, len(slab), fanout):
            node = TreeNode(is_leaf=is_leaf, entries=slab[j : j + fanout])
            for e in node.entries:
                if e.child is not None:
                    e.child.parent = node
            nodes.append(node)
    return nodes
