"""The ``o-table`` and ``h-table`` of the object layer (Section III-A).

* ``h-table`` maps an index unit to the indoor partition it belongs to
  (the inverse of decomposition);
* ``o-table`` maps an object to the set of index units it overlaps, so
  object deletion never searches the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IndexError_


@dataclass
class HTable:
    """``{index unit} -> indoor partition`` (and the reverse view)."""

    _unit_to_partition: dict[str, str] = field(default_factory=dict)
    _partition_to_units: dict[str, set[str]] = field(default_factory=dict)

    def add(self, unit_id: str, partition_id: str) -> None:
        if unit_id in self._unit_to_partition:
            raise IndexError_(f"unit {unit_id!r} already mapped")
        self._unit_to_partition[unit_id] = partition_id
        self._partition_to_units.setdefault(partition_id, set()).add(unit_id)

    def remove_unit(self, unit_id: str) -> str:
        partition_id = self._unit_to_partition.pop(unit_id, None)
        if partition_id is None:
            raise IndexError_(f"unknown unit {unit_id!r}")
        units = self._partition_to_units.get(partition_id)
        if units:
            units.discard(unit_id)
            if not units:
                del self._partition_to_units[partition_id]
        return partition_id

    def remove_partition(self, partition_id: str) -> set[str]:
        units = self._partition_to_units.pop(partition_id, set())
        for unit_id in units:
            self._unit_to_partition.pop(unit_id, None)
        return units

    def partition_of(self, unit_id: str) -> str:
        try:
            return self._unit_to_partition[unit_id]
        except KeyError:
            raise IndexError_(f"unknown unit {unit_id!r}") from None

    def units_of(self, partition_id: str) -> set[str]:
        return set(self._partition_to_units.get(partition_id, set()))

    def __len__(self) -> int:
        return len(self._unit_to_partition)

    def __contains__(self, unit_id: str) -> bool:
        return unit_id in self._unit_to_partition


@dataclass
class OTable:
    """``{object} -> 2^{index unit}`` (and the reverse buckets).

    The reverse view *is* the object layer's per-leaf bucket list: for a
    leaf unit, ``objects_in(unit)`` is the bucket of objects overlapping
    that unit.
    """

    _object_to_units: dict[str, set[str]] = field(default_factory=dict)
    _unit_to_objects: dict[str, set[str]] = field(default_factory=dict)

    def add(self, object_id: str, unit_ids: set[str]) -> None:
        if object_id in self._object_to_units:
            raise IndexError_(f"object {object_id!r} already indexed")
        self._object_to_units[object_id] = set(unit_ids)
        for unit_id in unit_ids:
            self._unit_to_objects.setdefault(unit_id, set()).add(object_id)

    def remove(self, object_id: str) -> set[str]:
        units = self._object_to_units.pop(object_id, None)
        if units is None:
            raise IndexError_(f"unknown object {object_id!r}")
        for unit_id in units:
            bucket = self._unit_to_objects.get(unit_id)
            if bucket:
                bucket.discard(object_id)
                if not bucket:
                    del self._unit_to_objects[unit_id]
        return units

    def update(self, object_id: str, unit_ids: set[str]) -> None:
        """Replace an object's unit set by diffing against the old one.

        Unlike ``remove`` + ``add``, only the buckets of units *entering*
        or *leaving* the set are touched — the common case of a small
        movement step that stays within the same leaf units costs zero
        bucket churn, which is what makes the batched update path of
        :meth:`repro.index.composite.CompositeIndex.update_objects`
        amortize.
        """
        old = self._object_to_units.get(object_id)
        if old is None:
            raise IndexError_(f"unknown object {object_id!r}")
        new = set(unit_ids)
        for unit_id in old - new:
            bucket = self._unit_to_objects.get(unit_id)
            if bucket:
                bucket.discard(object_id)
                if not bucket:
                    del self._unit_to_objects[unit_id]
        for unit_id in new - old:
            self._unit_to_objects.setdefault(unit_id, set()).add(object_id)
        self._object_to_units[object_id] = new

    def drop_unit(self, unit_id: str) -> set[str]:
        """Detach a (deleted) unit from every object that overlapped it.

        Returns the affected object ids so the caller can re-resolve
        their units.
        """
        objects = self._unit_to_objects.pop(unit_id, set())
        for object_id in objects:
            self._object_to_units.get(object_id, set()).discard(unit_id)
        return objects

    def units_of(self, object_id: str) -> set[str]:
        try:
            return set(self._object_to_units[object_id])
        except KeyError:
            raise IndexError_(f"unknown object {object_id!r}") from None

    def objects_in(self, unit_id: str) -> set[str]:
        """The leaf bucket of one index unit."""
        return set(self._unit_to_objects.get(unit_id, set()))

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._object_to_units

    def __len__(self) -> int:
        return len(self._object_to_units)
