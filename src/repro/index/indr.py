"""The indR-tree — the tree tier of the composite index (Section III-A.2).

Partitions are indexed as 3-D boxes whose vertical extent is 1 cm: large
enough for the R*-tree's volume heuristics, negligible for distances
(the query phase treats units as 2-D rectangles at floor elevation via
:meth:`Box3.flattened`).  Irregular partitions are decomposed into
regular *index units* by Algorithm 3; a staircase spanning several
floors contributes one unit per floor so node floor-intervals stay
tight.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from repro.errors import IndexError_
from repro.geometry.decompose import DEFAULT_T_SHAPE, decompose_partition_geometry
from repro.geometry.point import Point
from repro.geometry.rect import Box3, Rect
from repro.index.bulk import str_bulk_load
from repro.index.rstar import DEFAULT_FANOUT, RStarTree, TreeNode
from repro.space.floorplan import IndoorSpace
from repro.space.partition import Partition


@dataclass(frozen=True)
class IndexUnit:
    """One leaf-level entry: a regular rectangle on one floor, belonging
    to exactly one partition."""

    unit_id: str
    partition_id: str
    rect: Rect
    floor: int

    def box(self, floor_height: float, vertical_extent: float = 0.01) -> Box3:
        return Box3.from_rect(self.rect, self.floor, floor_height, vertical_extent)

    def contains_point(self, p: Point) -> bool:
        return p.floor == self.floor and self.rect.contains_xy(p.x, p.y)


class IndRTree:
    """R*-tree over index units, with partition-level bookkeeping."""

    def __init__(
        self,
        floor_height: float,
        fanout: int = DEFAULT_FANOUT,
        t_shape: float = DEFAULT_T_SHAPE,
    ) -> None:
        self.floor_height = floor_height
        self.fanout = fanout
        self.t_shape = t_shape
        self.tree = RStarTree(fanout=fanout)
        self.units: dict[str, IndexUnit] = {}
        self.units_of_partition: dict[str, list[IndexUnit]] = {}
        self._unit_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @staticmethod
    def from_space(
        space: IndoorSpace,
        fanout: int = DEFAULT_FANOUT,
        t_shape: float = DEFAULT_T_SHAPE,
        bulk: bool = True,
    ) -> "IndRTree":
        """Index every partition; ``bulk`` packs with STR (paper setup)."""
        indr = IndRTree(space.floor_height, fanout, t_shape)
        pairs = []
        for partition in space.partitions.values():
            for unit in indr._make_units(partition):
                indr._register(unit)
                pairs.append((unit, unit.box(space.floor_height)))
        if bulk:
            indr.tree = str_bulk_load(pairs, fanout=fanout)
        else:
            for unit, box in pairs:
                indr.tree.insert(unit, box)
        return indr

    def _make_units(self, partition: Partition) -> list[IndexUnit]:
        """Decompose one partition into index units (Algorithm 3), one
        per floor of the partition's span."""
        rects = decompose_partition_geometry(partition.footprint, self.t_shape)
        units = []
        for floor in range(partition.floor, partition.upper_floor + 1):
            for rect in rects:
                units.append(
                    IndexUnit(
                        f"u{next(self._unit_counter)}",
                        partition.partition_id,
                        rect,
                        floor,
                    )
                )
        return units

    def _register(self, unit: IndexUnit) -> None:
        self.units[unit.unit_id] = unit
        self.units_of_partition.setdefault(unit.partition_id, []).append(unit)

    # ------------------------------------------------------------------
    # dynamic operations (Section III-C.1)
    # ------------------------------------------------------------------

    def insert_partition(self, partition: Partition) -> list[IndexUnit]:
        if partition.partition_id in self.units_of_partition:
            raise IndexError_(
                f"partition {partition.partition_id!r} already indexed"
            )
        units = self._make_units(partition)
        for unit in units:
            self._register(unit)
            self.tree.insert(unit, unit.box(self.floor_height))
        return units

    def delete_partition(self, partition_id: str) -> list[IndexUnit]:
        units = self.units_of_partition.pop(partition_id, None)
        if units is None:
            raise IndexError_(f"partition {partition_id!r} not indexed")
        for unit in units:
            del self.units[unit.unit_id]
            if not self.tree.delete(unit, unit.box(self.floor_height)):
                raise IndexError_(
                    f"unit {unit.unit_id!r} missing from the tree"
                )
        return units

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    @property
    def root(self) -> TreeNode:
        return self.tree.root

    def locate_point(self, p: Point) -> IndexUnit | None:
        """Point location through the tree (the paper's r=0 degenerate
        range query)."""
        z = p.floor * self.floor_height
        probe = Box3(p.x, p.y, z, p.x, p.y, z + 0.005)
        for unit in self.tree.items_in_box(probe):
            if unit.contains_point(p):
                return unit
        return None

    def units_overlapping_rect(self, rect: Rect, floor: int) -> list[IndexUnit]:
        z = floor * self.floor_height
        probe = Box3(rect.minx, rect.miny, z, rect.maxx, rect.maxy, z + 0.005)
        return [
            u for u in self.tree.items_in_box(probe)
            if u.floor == floor and u.rect.intersects(rect)
        ]

    def node_floor_span(self, node: TreeNode) -> tuple[int, int]:
        """``[e.lf, e.uf]`` of a tree node, from its box's z-range."""
        box = node.box
        lf = int(math.floor(box.minz / self.floor_height + 1e-9))
        uf = int(math.floor((box.maxz - 0.005) / self.floor_height + 1e-9))
        return lf, max(lf, uf)

    def __len__(self) -> int:
        return len(self.tree)
