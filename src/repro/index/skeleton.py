"""The skeleton tier (Section III-A.5) and skeleton distance (III-B).

Euclidean lower bounds are too loose for multi-floor buildings: almost
the whole building lies within 300 m straight-line of a ground-floor
query point, yet every *path* upstairs runs through a staircase.  The
skeleton tier captures exactly that: a small graph over staircase
entrances with an all-pairs matrix ``M_s2s`` satisfying the paper's four
properties:

1. ``M_s2s[s, s] = 0``;
2. same floor: ``M_s2s[s_i, s_j] = |s_i, s_j|_E``;
3. same staircase: the shortest within-staircase distance;
4. otherwise: the shortest path in the skeleton graph.

The *skeleton distance* (Definition 2) then lower-bounds the indoor
distance (Lemma 6, the Geometric Lower Bound Property) and drives the
tree-tier RangeSearch.

Deviation noted in DESIGN.md: for entities spanning several floors we
minimise over staircase entrances on **all** floors of the span instead
of only the lowest/highest (Eq. 10's ``lf``/``uf``) — identical for
single-floor entities, and never above the true indoor distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Box3
from repro.space.floorplan import IndoorSpace
from repro.space.partition import PartitionKind


@dataclass(frozen=True)
class Entrance:
    """One staircase entrance: a door joining a staircase to a normal
    partition."""

    index: int
    door_id: str
    staircase_id: str
    midpoint: Point

    @property
    def floor(self) -> int:
        return self.midpoint.floor


class SkeletonTier:
    """Staircase-entrance graph with the dense ``M_s2s`` matrix."""

    def __init__(self, space: IndoorSpace) -> None:
        self.space = space
        self.entrances: list[Entrance] = []
        self.by_floor: dict[int, list[Entrance]] = {}
        self.ms2s: np.ndarray = np.zeros((0, 0))
        self._built_for_version = -1
        self.rebuild()

    # ------------------------------------------------------------------

    def rebuild(self) -> None:
        """(Re)collect entrances and recompute ``M_s2s``.

        ``M`` is small (entrances, not doors), so the paper's targeted
        update rule is subsumed by a full vectorised Floyd-Warshall —
        still a sub-millisecond operation at building scale.
        """
        space = self.space
        entrances: list[Entrance] = []
        for staircase in space.staircases():
            sid = staircase.partition_id
            for door in space.doors_of(sid):
                other = door.other_side(sid)
                if space.partition(other).kind is PartitionKind.STAIRCASE:
                    continue  # staircase-to-staircase links are not entrances
                entrances.append(
                    Entrance(len(entrances), door.door_id, sid, door.midpoint)
                )
        self.entrances = entrances
        self.by_floor = {}
        for e in entrances:
            self.by_floor.setdefault(e.floor, []).append(e)

        m = len(entrances)
        dist = np.full((m, m), np.inf)
        np.fill_diagonal(dist, 0.0)
        fh = space.floor_height
        for i in range(m):
            for j in range(i + 1, m):
                a, b = entrances[i], entrances[j]
                w = math.inf
                if a.floor == b.floor:
                    w = a.midpoint.distance(b.midpoint, fh)  # property (2)
                elif a.staircase_id == b.staircase_id:
                    w = a.midpoint.distance(b.midpoint, fh)  # property (3)
                if w < dist[i, j]:
                    dist[i, j] = dist[j, i] = w
        # Floyd-Warshall closure (property 4), vectorised over rows.
        for k in range(m):
            via = dist[:, k : k + 1] + dist[k : k + 1, :]
            np.minimum(dist, via, out=dist)
        self.ms2s = dist
        self._built_for_version = space.topology_version

    def ensure_fresh(self) -> None:
        if self._built_for_version != self.space.topology_version:
            self.rebuild()

    @property
    def num_entrances(self) -> int:
        return len(self.entrances)

    def entrances_on_floor(self, floor: int) -> list[Entrance]:
        """``S(f)`` — staircase entrances on one floor."""
        return self.by_floor.get(floor, [])

    # ------------------------------------------------------------------
    # skeleton distances
    # ------------------------------------------------------------------

    def skeleton_distance(self, q: Point, p: Point) -> float:
        """``|q, p|_K`` (Definition 2).

        Same floor: plain Euclidean.  Different floors: best combination
        of an entrance near ``q``, the ``M_s2s`` hop, and an entrance
        near ``p``.  Infinite when either floor has no staircase access.
        """
        self.ensure_fresh()
        fh = self.space.floor_height
        if q.floor == p.floor:
            return q.distance(p, fh)
        best = math.inf
        for sq in self.entrances_on_floor(q.floor):
            dq = q.distance(sq.midpoint, fh)
            for sp in self.entrances_on_floor(p.floor):
                total = (
                    dq
                    + self.ms2s[sq.index, sp.index]
                    + sp.midpoint.distance(p, fh)
                )
                if total < best:
                    best = total
        return best

    def min_distance_to_box(
        self, q: Point, box: Box3, lf: int, uf: int
    ) -> float:
        """``|q, e|_K^min`` (Eq. 10) for an entity with MBR ``box``
        spanning floors ``[lf, uf]``."""
        self.ensure_fresh()
        fh = self.space.floor_height
        flat = box.flattened() if lf == uf else box
        if lf <= q.floor <= uf:
            return flat.min_distance_xyz(q.x, q.y, q.z(fh))
        sqs = self.entrances_on_floor(q.floor)
        if not sqs:
            # No staircase on the query's floor: fall back to the plain
            # Euclidean MINDIST, which is always a valid lower bound.
            return flat.min_distance_xyz(q.x, q.y, q.z(fh))
        best = math.inf
        dqs = [q.distance(s.midpoint, fh) for s in sqs]
        for floor in range(lf, uf + 1):
            for se in self.entrances_on_floor(floor):
                leg = flat.min_distance_xyz(
                    se.midpoint.x, se.midpoint.y, se.midpoint.z(fh)
                )
                for dq, sq in zip(dqs, sqs):
                    total = dq + self.ms2s[sq.index, se.index] + leg
                    if total < best:
                        best = total
        return best

    def min_distance_to_point_set(self, q: Point, instances, floor: int) -> float:
        """``|q, O|_K^min`` against an object's instances (tighter than
        the MBR version; used in the filtering phase's object test)."""
        self.ensure_fresh()
        fh = self.space.floor_height
        if q.floor == floor:
            return instances.min_distance_to(q, fh)
        sqs = self.entrances_on_floor(q.floor)
        ses = self.entrances_on_floor(floor)
        if not sqs or not ses:
            return instances.min_distance_to(q, fh)
        best = math.inf
        for sq in sqs:
            dq = q.distance(sq.midpoint, fh)
            for se in ses:
                leg = instances.min_distance_to(se.midpoint, fh)
                total = dq + self.ms2s[sq.index, se.index] + leg
                if total < best:
                    best = total
        return best
