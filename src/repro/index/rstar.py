"""An in-memory R*-tree over 3-D boxes (Beckmann et al., SIGMOD 1990).

The paper's tree tier "adapts the R*-tree [3] to index all indoor
partitions" and uses a packed main-memory variant with fanout 20
(Section V-A).  This is a from-scratch implementation with the three R*
ingredients:

* **ChooseSubtree** — minimum overlap enlargement at the leaf level,
  minimum volume enlargement above;
* **Split** — axis by minimum margin sum, distribution by minimum
  overlap (ties: minimum volume);
* **Forced reinsert** — on first overflow per level per insertion, the
  30% of entries farthest from the node's center are reinserted.

The tree is payload-generic: an entry couples a :class:`Box3` with an
arbitrary item.  Deletion uses item identity (``==``) within the
matching box.  :func:`repro.index.bulk.str_bulk_load` provides the
packed construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import IndexError_
from repro.geometry.rect import Box3

DEFAULT_FANOUT = 20
REINSERT_FRACTION = 0.3


@dataclass
class Entry:
    """A box plus either a child node (internal) or a payload (leaf)."""

    box: Box3
    child: "TreeNode | None" = None
    item: Any = None


@dataclass
class TreeNode:
    """One R*-tree node."""

    is_leaf: bool
    entries: list[Entry] = field(default_factory=list)
    parent: "TreeNode | None" = None

    @property
    def box(self) -> Box3:
        """The node's MBR (union of entry boxes)."""
        if not self.entries:
            raise IndexError_("empty node has no MBR")
        out = self.entries[0].box
        for e in self.entries[1:]:
            out = out.union(e.box)
        return out

    def level_in(self, tree: "RStarTree") -> int:
        """Depth of this node (root = 0)."""
        level = 0
        node = self
        while node.parent is not None:
            node = node.parent
            level += 1
        return level


class RStarTree:
    """A dynamic R*-tree.

    Parameters
    ----------
    fanout:
        Maximum entries per node (paper: 20).  Minimum fill is 40%.
    """

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise IndexError_("fanout must be >= 4")
        self.fanout = fanout
        self.min_fill = max(2, math.ceil(0.4 * fanout))
        self.root = TreeNode(is_leaf=True)
        self.size = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def insert(self, item: Any, box: Box3) -> None:
        """Insert a payload with its MBR."""
        self._insert_entry(Entry(box, item=item), reinserted_levels=set())
        self.size += 1

    def delete(self, item: Any, box: Box3) -> bool:
        """Remove one entry matching ``item`` whose box intersects
        ``box``.  Returns False when not found."""
        leaf = self._find_leaf(self.root, item, box)
        if leaf is None:
            return False
        leaf.entries = [e for e in leaf.entries if e.item != item]
        self._condense(leaf)
        # Shrink the root when it degenerates to a single internal child.
        while (
            not self.root.is_leaf
            and len(self.root.entries) == 1
        ):
            self.root = self.root.entries[0].child  # type: ignore[assignment]
            self.root.parent = None
        self.size -= 1
        return True

    def items_in_box(self, box: Box3) -> list[Any]:
        """All payloads whose boxes intersect ``box``."""
        return [e.item for e in self._intersecting_entries(self.root, box)]

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[Any]:
        yield from (e.item for e in self._all_leaf_entries(self.root))

    def traverse(
        self, descend: Callable[[TreeNode], bool]
    ) -> Iterator[Entry]:
        """Yield leaf entries of every node the predicate descends into.

        ``descend(node)`` is consulted per node; the caller prunes by MBR
        (e.g. with a skeleton-distance bound, Algorithm 4).
        """
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not descend(node):
                continue
            if node.is_leaf:
                yield from node.entries
            else:
                stack.extend(e.child for e in node.entries)  # type: ignore[misc]

    @property
    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            h += 1
        return h

    def validate(self, check_fill: bool = True) -> list[str]:
        """Structural invariant check; returns problem descriptions.

        ``check_fill=False`` skips the minimum-fill test — STR-packed
        trees legitimately leave one under-filled node per level.
        """
        problems: list[str] = []
        leaf_depths: set[int] = set()

        def rec(node: TreeNode, depth: int) -> None:
            if (
                check_fill
                and node is not self.root
                and not (self.min_fill <= len(node.entries) <= self.fanout)
            ):
                problems.append(
                    f"node fill {len(node.entries)} outside "
                    f"[{self.min_fill}, {self.fanout}]"
                )
            if len(node.entries) > self.fanout:
                problems.append("node overflow")
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            for e in node.entries:
                if e.child is None:
                    problems.append("internal entry without child")
                    continue
                if e.child.parent is not node:
                    problems.append("broken parent pointer")
                if e.child.entries and not e.box.contains_box(e.child.box):
                    problems.append("entry box does not contain child MBR")
                rec(e.child, depth + 1)

        rec(self.root, 0)
        if len(leaf_depths) > 1:
            problems.append(f"leaves at multiple depths: {leaf_depths}")
        count = sum(1 for _ in self)
        if count != self.size:
            problems.append(f"size {self.size} != leaf entry count {count}")
        return problems

    # ------------------------------------------------------------------
    # insertion machinery
    # ------------------------------------------------------------------

    def _insert_entry(
        self,
        entry: Entry,
        reinserted_levels: set[int],
        target_level: int | None = None,
    ) -> None:
        """Insert an entry; ``target_level=None`` means "into a leaf",
        otherwise the entry (a subtree) goes into a node at that depth."""
        node = self._choose_subtree(entry.box, target_level)
        node.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = node
        if len(node.entries) > self.fanout:
            self._overflow_treatment(node, reinserted_levels)
        else:
            self._adjust_upward(node)

    def _choose_subtree(self, box: Box3, target_level: int | None) -> TreeNode:
        node = self.root
        level = 0
        while not node.is_leaf:
            if target_level is not None and level == target_level:
                return node
            children_are_leaves = node.entries[0].child.is_leaf  # type: ignore[union-attr]
            if children_are_leaves:
                best = self._min_overlap_child(node, box)
            else:
                best = self._min_volume_child(node, box)
            node = best.child  # type: ignore[assignment]
            level += 1
        return node

    @staticmethod
    def _min_volume_child(node: TreeNode, box: Box3) -> Entry:
        def key(e: Entry):
            enlarged = e.box.union(box)
            return (enlarged.volume - e.box.volume, e.box.volume)

        return min(node.entries, key=key)

    @staticmethod
    def _min_overlap_child(node: TreeNode, box: Box3) -> Entry:
        def overlap(target: Entry, with_box: Box3) -> float:
            return sum(
                with_box.intersection_volume(other.box)
                for other in node.entries
                if other is not target
            )

        def key(e: Entry):
            enlarged = e.box.union(box)
            return (
                overlap(e, enlarged) - overlap(e, e.box),
                enlarged.volume - e.box.volume,
                e.box.volume,
            )

        return min(node.entries, key=key)

    def _overflow_treatment(
        self, node: TreeNode, reinserted_levels: set[int]
    ) -> None:
        # R* forced reinsert, applied at the leaf level (the classical
        # optimisation matters most there); internal overflow splits.
        level = node.level_in(self)
        if (
            node.is_leaf
            and node.parent is not None
            and level not in reinserted_levels
        ):
            reinserted_levels.add(level)
            self._forced_reinsert(node, reinserted_levels)
        else:
            self._split(node, reinserted_levels)

    def _forced_reinsert(
        self, node: TreeNode, reinserted_levels: set[int]
    ) -> None:
        center = node.box.center
        node.entries.sort(
            key=lambda e: _center_distance2(e.box.center, center),
            reverse=True,
        )
        k = max(1, int(REINSERT_FRACTION * len(node.entries)))
        evicted = node.entries[:k]
        node.entries = node.entries[k:]
        self._adjust_upward(node)
        for e in evicted:
            self._insert_entry(e, reinserted_levels)

    def _split(self, node: TreeNode, reinserted_levels: set[int]) -> None:
        group_a, group_b = self._rstar_split_groups(node.entries)
        if node.parent is None:
            # Root split: grow the tree by one level.
            new_root = TreeNode(is_leaf=False)
            left = TreeNode(is_leaf=node.is_leaf, entries=group_a)
            right = TreeNode(is_leaf=node.is_leaf, entries=group_b)
            for child_node in (left, right):
                for e in child_node.entries:
                    if e.child is not None:
                        e.child.parent = child_node
                child_node.parent = new_root
            new_root.entries = [
                Entry(left.box, child=left),
                Entry(right.box, child=right),
            ]
            self.root = new_root
            return
        parent = node.parent
        node.entries = group_a
        for e in group_a:
            if e.child is not None:
                e.child.parent = node
        sibling = TreeNode(is_leaf=node.is_leaf, entries=group_b, parent=parent)
        for e in group_b:
            if e.child is not None:
                e.child.parent = sibling
        # Refresh this node's entry box, then add the sibling.
        for e in parent.entries:
            if e.child is node:
                e.box = node.box
                break
        parent.entries.append(Entry(sibling.box, child=sibling))
        if len(parent.entries) > self.fanout:
            self._overflow_treatment(parent, reinserted_levels)
        else:
            self._adjust_upward(parent)

    def _rstar_split_groups(
        self, entries: list[Entry]
    ) -> tuple[list[Entry], list[Entry]]:
        """R* split: choose axis by margin, distribution by overlap."""
        m = self.min_fill
        best_axis = None
        best_margin = math.inf
        for dim in range(3):
            margin = 0.0
            for sort_key in (
                lambda e: e.box.side(dim)[0],
                lambda e: e.box.side(dim)[1],
            ):
                ordered = sorted(entries, key=sort_key)
                for k in range(m, len(ordered) - m + 1):
                    margin += _group_box(ordered[:k]).margin
                    margin += _group_box(ordered[k:]).margin
            if margin < best_margin:
                best_margin = margin
                best_axis = dim

        best_split: tuple[list[Entry], list[Entry]] | None = None
        best_quality = (math.inf, math.inf)
        for sort_key in (
            lambda e: e.box.side(best_axis)[0],
            lambda e: e.box.side(best_axis)[1],
        ):
            ordered = sorted(entries, key=sort_key)
            for k in range(m, len(ordered) - m + 1):
                a, b = ordered[:k], ordered[k:]
                box_a, box_b = _group_box(a), _group_box(b)
                quality = (
                    box_a.intersection_volume(box_b),
                    box_a.volume + box_b.volume,
                )
                if quality < best_quality:
                    best_quality = quality
                    best_split = (list(a), list(b))
        assert best_split is not None
        return best_split

    def _adjust_upward(self, node: TreeNode) -> None:
        """Refresh MBRs from ``node`` to the root."""
        while node.parent is not None:
            parent = node.parent
            for e in parent.entries:
                if e.child is node:
                    e.box = node.box
                    break
            node = parent

    # ------------------------------------------------------------------
    # deletion machinery
    # ------------------------------------------------------------------

    def _find_leaf(
        self, node: TreeNode, item: Any, box: Box3
    ) -> TreeNode | None:
        if node.is_leaf:
            for e in node.entries:
                if e.item == item:
                    return node
            return None
        for e in node.entries:
            if e.box.intersects(box):
                found = self._find_leaf(e.child, item, box)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: TreeNode) -> None:
        """Propagate underflow upward, collecting orphans to reinsert."""
        orphans: list[tuple[Entry, bool, int]] = []
        height = self.height
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_fill:
                parent.entries = [e for e in parent.entries if e.child is not node]
                depth = node.level_in(self)
                for e in node.entries:
                    orphans.append((e, node.is_leaf, depth))
            else:
                for e in parent.entries:
                    if e.child is node:
                        e.box = node.box
                        break
            node = parent
        for entry, was_leaf, depth in orphans:
            if was_leaf:
                self._insert_entry(entry, reinserted_levels=set())
            else:
                # Reinsert a subtree at the depth that keeps leaves level
                # (corrected if the root grew/shrank meanwhile).
                new_height = self.height
                target = depth - (height - new_height)
                self._insert_entry(
                    entry,
                    reinserted_levels=set(),
                    target_level=max(0, target),
                )

    # ------------------------------------------------------------------
    # search machinery
    # ------------------------------------------------------------------

    def _intersecting_entries(
        self, node: TreeNode, box: Box3
    ) -> Iterator[Entry]:
        if node.is_leaf:
            for e in node.entries:
                if e.box.intersects(box):
                    yield e
            return
        for e in node.entries:
            if e.box.intersects(box):
                yield from self._intersecting_entries(e.child, box)  # type: ignore[arg-type]

    def _all_leaf_entries(self, node: TreeNode) -> Iterator[Entry]:
        if node.is_leaf:
            yield from node.entries
            return
        for e in node.entries:
            yield from self._all_leaf_entries(e.child)  # type: ignore[arg-type]


def _group_box(entries: list[Entry]) -> Box3:
    out = entries[0].box
    for e in entries[1:]:
        out = out.union(e.box)
    return out


def _center_distance2(
    a: tuple[float, float, float], b: tuple[float, float, float]
) -> float:
    return (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2 + (a[2] - b[2]) ** 2
