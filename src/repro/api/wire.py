"""Versioned JSON-lines wire protocol for specs, deltas and snapshots.

The ROADMAP's "delta transport" item: serialize the delta-serving
subsystem's currency so subscribers can live **out-of-process** — a
positioning gateway writes the feed, a dashboard in another process (or
machine) tails it.  One JSON object per line, five record types::

    {"v":2,"type":"spec","spec":{"v":1,"kind":"irq","q":[x,y,f],"r":60.0}}
    {"v":2,"type":"watch","query_id":"kiosk","spec":{...spec body...}}
    {"v":2,"type":"snapshot","query_id":"kiosk","members":{"o1":4.25}}
    {"v":2,"type":"delta","query_id":"kiosk","cause":"move",
     "entered":{"o2":7.5},"left":["o3"],"changed":{},"prob_changed":{}}
    {"v":2,"type":"batch","deltas":[{...delta body...}, ...]}

``v`` is :data:`WIRE_VERSION`; nested spec bodies carry their own
:data:`~repro.api.specs.SPEC_SCHEMA_VERSION`.  **Version 2** added the
``prob_changed`` delta field (standing iPRQ re-annotations — member
qualifying probabilities that moved); the decoder still reads version
1 lines, whose deltas simply carry no probability changes, so feeds
written by a v1 producer replay unchanged.  Other unknown versions or
record types raise :class:`~repro.errors.WireError` — a peer speaking
a newer schema fails loudly instead of being half-read.

Encoding is **canonical** (sorted keys, no whitespace, floats via
``repr``), which buys the contract the property tests enforce:
``encode_record(decode_record(line)) == line`` byte for byte, and
replaying a decoded feed (:func:`replay_feed`) reconstructs every
standing query's live result exactly — the same replayability guarantee
:mod:`repro.queries.deltas` gives in-process, now across the wire.
Non-finite distances are refused (``allow_nan=False``): the monitor
never stores them, so one appearing in a feed is a bug upstream, not a
value to smuggle through.

A :class:`DeltaBatch` crosses the wire as its result deltas only; the
in-process side outputs (``moved`` objects, ``deleted``,
``event_result``) are host conveniences and stay home.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass
from typing import IO, Any, Iterable, Iterator

from repro.errors import WireError
from repro.api.specs import QuerySpec, spec_from_dict
from repro.queries.deltas import DeltaBatch, ResultDelta

#: Version stamped into every wire record; bump on layout changes.
#: v2 added the delta ``prob_changed`` field (standing iPRQ).
WIRE_VERSION = 2

#: Versions :func:`decode_record` accepts.  v1 lacks ``prob_changed``;
#: decoding fills it in empty, so old feeds keep replaying.
_READABLE_VERSIONS = (1, WIRE_VERSION)


@dataclass(frozen=True)
class WatchRecord:
    """Feed header: standing query ``query_id`` watches ``spec``."""

    query_id: str
    spec: QuerySpec


@dataclass(frozen=True)
class SnapshotRecord:
    """A standing query's full result at one instant: member id ->
    stored distance (``None`` marks an iRQ member accepted by bounds
    alone).  Re-primes a replay mid-feed."""

    query_id: str
    members: dict[str, float | None]


def _dumps(payload: dict[str, Any]) -> str:
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            allow_nan=False,
        )
    except ValueError as exc:  # non-finite float
        raise WireError(f"unencodable wire record: {exc}") from None
    except TypeError as exc:  # non-JSON value smuggled in
        raise WireError(f"unencodable wire record: {exc}") from None


def _members_to_wire(
    members: dict[str, float | None],
) -> dict[str, float | None]:
    return {
        str(oid): (None if d is None else float(d))
        for oid, d in members.items()
    }


def _members_from_wire(value: Any, what: str) -> dict[str, float | None]:
    if not isinstance(value, dict):
        raise WireError(f"malformed {what} {value!r}")
    out: dict[str, float | None] = {}
    for oid, d in value.items():
        # bool is an int subclass: a JSON `true` is not a distance.
        if d is not None and (
            isinstance(d, bool) or not isinstance(d, (int, float))
        ):
            raise WireError(f"malformed {what} distance {d!r}")
        out[str(oid)] = None if d is None else float(d)
    return out


def _delta_body(delta: ResultDelta) -> dict[str, Any]:
    return {
        "query_id": delta.query_id,
        "cause": delta.cause,
        "entered": _members_to_wire(delta.entered),
        "left": [str(oid) for oid in delta.left],
        "changed": _members_to_wire(delta.distance_changed),
        "prob_changed": _members_to_wire(delta.probability_changed),
    }


def _delta_from_body(body: Any) -> ResultDelta:
    if not isinstance(body, dict):
        raise WireError(f"malformed delta record {body!r}")
    left = body.get("left", [])
    if not isinstance(left, list):
        raise WireError(f"malformed delta 'left' {left!r}")
    try:
        return ResultDelta(
            query_id=str(body["query_id"]),
            cause=str(body["cause"]),
            entered=_members_from_wire(
                body.get("entered", {}), "delta 'entered'"
            ),
            left=tuple(str(oid) for oid in left),
            distance_changed=_members_from_wire(
                body.get("changed", {}), "delta 'changed'"
            ),
            # Absent from v1 records: an old feed carries no standing
            # iPRQ re-annotations, so empty is exactly right.
            probability_changed=_members_from_wire(
                body.get("prob_changed", {}), "delta 'prob_changed'"
            ),
        )
    except KeyError as exc:
        raise WireError(f"delta record missing field {exc}") from None
    except ValueError as exc:  # unknown cause
        raise WireError(str(exc)) from None


def encode_record(
    record: (
        QuerySpec | ResultDelta | DeltaBatch | WatchRecord | SnapshotRecord
    ),
) -> str:
    """One canonical JSON line (no trailing newline) for any wire
    record type."""
    if isinstance(record, QuerySpec):
        # The spec body keeps its own schema version, nested: the wire
        # envelope and the spec schema evolve independently.
        payload: dict[str, Any] = {
            "v": WIRE_VERSION,
            "type": "spec",
            "spec": record.to_dict(),
        }
    elif isinstance(record, ResultDelta):
        payload = {
            "v": WIRE_VERSION,
            "type": "delta",
            **_delta_body(record),
        }
    elif isinstance(record, DeltaBatch):
        payload = {
            "v": WIRE_VERSION,
            "type": "batch",
            "deltas": [_delta_body(d) for d in record.deltas],
        }
    elif isinstance(record, WatchRecord):
        payload = {
            "v": WIRE_VERSION,
            "type": "watch",
            "query_id": record.query_id,
            "spec": record.spec.to_dict(),
        }
    elif isinstance(record, SnapshotRecord):
        payload = {
            "v": WIRE_VERSION,
            "type": "snapshot",
            "query_id": record.query_id,
            "members": _members_to_wire(record.members),
        }
    else:
        raise WireError(
            f"cannot encode {type(record).__name__} as a wire record"
        )
    return _dumps(payload)


def decode_record(
    line: str,
) -> QuerySpec | ResultDelta | DeltaBatch | WatchRecord | SnapshotRecord:
    """Parse one wire line back into its typed record."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError(f"malformed wire line: {exc}") from None
    if not isinstance(data, dict):
        raise WireError(f"wire record must be an object, got {data!r}")
    version = data.get("v")
    if version not in _READABLE_VERSIONS:
        raise WireError(
            f"unsupported wire version {version!r} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    rtype = data.get("type")
    if rtype == "spec":
        try:
            return spec_from_dict(data["spec"])
        except KeyError:
            raise WireError(
                f"spec record missing 'spec' body: {data!r}"
            ) from None
    if rtype == "delta":
        return _delta_from_body(data)
    if rtype == "batch":
        deltas = data.get("deltas")
        if not isinstance(deltas, list):
            raise WireError(f"malformed batch record {data!r}")
        return DeltaBatch(
            deltas=tuple(_delta_from_body(b) for b in deltas)
        )
    if rtype == "watch":
        try:
            return WatchRecord(
                str(data["query_id"]), spec_from_dict(data["spec"])
            )
        except KeyError as exc:
            raise WireError(
                f"watch record missing field {exc}"
            ) from None
    if rtype == "snapshot":
        try:
            return SnapshotRecord(
                str(data["query_id"]),
                _members_from_wire(
                    data["members"], "snapshot 'members'"
                ),
            )
        except KeyError as exc:
            raise WireError(
                f"snapshot record missing field {exc}"
            ) from None
    raise WireError(f"unknown wire record type {rtype!r}")


class DeltaFeedWriter:
    """Serializes a standing-query delta feed onto a text stream, one
    wire record per line.

    :meth:`repro.api.service.QueryService.attach_feed` wires one of
    these into the service's publish path, writing the feed header
    (a ``watch`` + ``snapshot`` record per standing query) up front and
    every published non-empty :class:`DeltaBatch` afterwards — exactly
    the records :func:`replay_feed` folds back into live results.
    """

    def __init__(self, fp: IO[str]) -> None:
        self._fp = fp
        self.records_written = 0

    def write(
        self,
        record: (
            QuerySpec
            | ResultDelta
            | DeltaBatch
            | WatchRecord
            | SnapshotRecord
        ),
    ) -> None:
        """Append one encoded record line to the stream."""
        self._fp.write(encode_record(record) + "\n")
        self.records_written += 1

    def watch(self, query_id: str, spec: QuerySpec) -> None:
        """Write the feed-header watch record for one query."""
        self.write(WatchRecord(query_id, spec))

    def snapshot(
        self, query_id: str, members: dict[str, float | None]
    ) -> None:
        """Write a full-result snapshot record for one query."""
        self.write(SnapshotRecord(query_id, dict(members)))

    def batch(self, batch: DeltaBatch) -> None:
        """Write a batch's deltas; an empty batch writes nothing (an
        idle tick is not a feed event)."""
        if batch.deltas:
            self.write(batch)


@dataclass
class FeedReadStats:
    """Outcome counters of one :func:`read_feed` pass."""

    #: Records successfully decoded and yielded.
    records: int = 0
    #: Final records skipped as a torn tail (0 or 1 per pass): the
    #: writer died mid-record, which is tolerated, not a crash.
    torn_tail: int = 0


def read_feed(
    lines: Iterable[str],
    stats: FeedReadStats | None = None,
) -> Iterator[
    QuerySpec | ResultDelta | DeltaBatch | WatchRecord | SnapshotRecord
]:
    """Decode a JSONL feed line by line.

    Blank lines are skipped, so a feed file still being appended to
    tails cleanly.  A record that fails to decode is tolerated **only**
    as the feed's final non-blank line — the torn tail a writer killed
    mid-:meth:`~DeltaFeedWriter.write` leaves behind.  It is skipped
    (counted in ``stats.torn_tail`` when a :class:`FeedReadStats` is
    passed) instead of crashing the replay; the same failure anywhere
    *before* the tail still raises, because mid-feed corruption means
    the replay cannot be trusted.
    """
    pending: WireError | None = None
    for line in lines:
        line = line.strip()
        if not line:
            continue
        if pending is not None:
            # The bad line was NOT the tail: corruption, not a torn
            # write. Fail loudly where the reader can see it.
            raise pending
        try:
            record = decode_record(line)
        except WireError as exc:
            pending = exc
            continue
        if stats is not None:
            stats.records += 1
        yield record
    if pending is not None and stats is not None:
        stats.torn_tail += 1


def replay_feed(
    records: Iterable[
        QuerySpec
        | ResultDelta
        | DeltaBatch
        | WatchRecord
        | SnapshotRecord
        | str
    ],
    stats: FeedReadStats | None = None,
) -> dict[str, dict[str, float | None]]:
    """Fold a decoded feed into per-query result state.

    ``watch`` opens a query at the empty state, ``snapshot`` re-primes
    it wholesale, ``delta``/``batch`` records apply incrementally, and a
    ``deregister``-cause delta closes the query (it is dropped from the
    returned mapping, matching the monitor's live view).  Replaying a
    complete feed reproduces every standing query's live
    ``result_distances`` exactly — the acceptance check
    ``examples/delta_tail.py`` and ``tests/api/test_wire.py`` run.

    Accepts decoded records *or* raw feed lines (the first item
    decides; raw lines route through :func:`read_feed`).  Pass a
    :class:`FeedReadStats` to observe the pass either way — in
    particular ``torn_tail``, so recovery paths can report a skipped
    partial final record instead of silently absorbing it.
    """
    iterator = iter(records)
    try:
        first = next(iterator)
    except StopIteration:
        return {}
    if isinstance(first, str):
        # Raw lines: read_feed owns the decoding (and the stats).
        decoded = read_feed(itertools.chain([first], iterator), stats)
    else:

        def count(rec):
            if stats is not None:
                stats.records += 1
            return rec

        decoded = (
            count(rec) for rec in itertools.chain([first], iterator)
        )
    states: dict[str, dict[str, float | None]] = {}

    def apply(delta: ResultDelta) -> None:
        if delta.cause == "deregister":
            states.pop(delta.query_id, None)
            return
        delta.apply_to(states.setdefault(delta.query_id, {}))

    for record in decoded:
        if isinstance(record, WatchRecord):
            states.setdefault(record.query_id, {})
        elif isinstance(record, SnapshotRecord):
            states[record.query_id] = dict(record.members)
        elif isinstance(record, ResultDelta):
            apply(record)
        elif isinstance(record, DeltaBatch):
            for delta in record.deltas:
                apply(delta)
        # A bare QuerySpec record carries no query id: metadata only.
    return states
