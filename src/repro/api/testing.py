"""Fault-injection transports for exercising the network layer.

Real networks tear frames at arbitrary byte boundaries, deliver writes
in dribbles, occasionally replay a chunk, and sometimes just go quiet.
:class:`FlakyTransport` manufactures those conditions deterministically
around a real :class:`~repro.api.net.TcpTransport`, so the fault suite
(``tests/api/test_net_faults.py``) can assert the one invariant the
serving layer promises: a client either converges to the exact live
result (reconnect + snapshot re-prime) or surfaces a loud error —
never a silent divergence.

Faults (one per transport instance, armed after ``after_recvs``
successful reads so the handshake can complete):

``"cut"``
    Mid-frame disconnect: the next read delivers only the first half
    of the received chunk, and every read after that raises
    :class:`ConnectionResetError`.  The client is left holding a torn
    frame — exactly what a peer crash looks like.
``"dup"``
    A duplicated chunk: one read's bytes are delivered twice.  The
    frame sequence numbers make this a
    :class:`~repro.errors.FramingError` rather than a silently
    double-applied delta.
``"stall"``
    A stalled read: the connection stays open but delivers nothing,
    surfacing as :class:`TimeoutError` at the client's read timeout.
``"tiny"``
    Pathological write fragmentation: every ``sendall`` goes out one
    byte at a time.  Not an error at all — the peer's incremental
    frame decoder must simply cope.

:class:`FlakyTransportFactory` is the :class:`~repro.api.net.NetClient`
``transport_factory`` hook: it deals one scripted fault per connection
(``faults[i]`` for the i-th), then clean transports forever after —
so "fault once, reconnect, converge" is one client constructor call.
"""

from __future__ import annotations

from repro.api.net import TcpTransport

#: Fault names :class:`FlakyTransport` understands (``None`` = clean).
FAULTS = ("cut", "dup", "stall", "tiny")


class FlakyTransport:
    """One connection's transport with one scripted misbehaviour."""

    def __init__(
        self,
        inner: TcpTransport,
        fault: str | None,
        *,
        after_recvs: int = 2,
    ) -> None:
        if fault is not None and fault not in FAULTS:
            raise ValueError(f"unknown fault {fault!r}; pick from {FAULTS}")
        self.inner = inner
        self.fault = fault
        self.after_recvs = after_recvs
        self.recvs = 0
        self._armed_fired = False
        self._replay: bytes | None = None
        self._dead = False

    # -- transport interface -------------------------------------------

    def connect(self) -> None:
        """Connect the wrapped transport (faults arm on reads)."""
        self.inner.connect()

    def settimeout(self, timeout: float | None) -> None:
        """Pass the timeout through to the wrapped transport."""
        self.inner.settimeout(timeout)

    def sendall(self, data: bytes) -> None:
        """Send, byte-at-a-time under the ``tiny`` fault."""
        if self.fault == "tiny":
            for i in range(len(data)):
                self.inner.sendall(data[i:i + 1])
            return
        self.inner.sendall(data)

    def recv(self, n: int = 65536) -> bytes:
        """Read through the scripted fault (cut/dup/stall) once armed."""
        if self._dead:
            raise ConnectionResetError("flaky transport: connection cut")
        if self._replay is not None:
            chunk, self._replay = self._replay, None
            return chunk
        data = self.inner.recv(n)
        self.recvs += 1
        if (
            self.fault in ("cut", "dup", "stall")
            and not self._armed_fired
            and self.recvs > self.after_recvs
            and data
        ):
            self._armed_fired = True
            if self.fault == "cut":
                self._dead = True
                self.inner.close()
                return data[: max(1, len(data) // 2)]
            if self.fault == "dup":
                self._replay = data
                return data
            if self.fault == "stall":
                self._dead = True
                raise TimeoutError("flaky transport: stalled read")
        return data

    def close(self) -> None:
        """Close the wrapped transport."""
        self.inner.close()


class FlakyTransportFactory:
    """Deal one scripted fault per connection, then clean transports.

    ``faults[i]`` applies to the i-th connection this factory opens
    (``None`` entries and every connection past the script are clean).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 5.0,
        faults: tuple[str | None, ...] = ("cut",),
        after_recvs: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.faults = tuple(faults)
        self.after_recvs = after_recvs
        self.connections = 0
        self.transports: list[FlakyTransport] = []

    def __call__(self) -> FlakyTransport:
        i = self.connections
        self.connections += 1
        fault = self.faults[i] if i < len(self.faults) else None
        transport = FlakyTransport(
            TcpTransport(self.host, self.port, self.timeout),
            fault,
            after_recvs=self.after_recvs,
        )
        self.transports.append(transport)
        return transport
