"""Network serving: a :class:`QueryService` as a TCP delta server.

The wire protocol reached files first (:meth:`QueryService.attach_feed`
— one process writes, another tails).  This module is the ROADMAP's
"library to server" step: an asyncio :class:`NetServer` wraps one
:class:`~repro.api.service.QueryService` and streams standing-query
deltas to many concurrent remote subscribers over length-prefixed,
sequence-numbered frames (:mod:`repro.api.framing`).

Protocol, per connection (client speaks first)::

    C -> S   hello {token: null}          | resume {token}
    S -> C   hello {token, heartbeat_s}
    C -> S   watch_req {spec?, query_id?}
    S -> C   watch {query_id, spec}       # the ack, with the final id
    S -> C   snapshot {query_id, members} # prime: current full result
    S -> C   delta / batch ...            # the live stream
    S -> C   heartbeat {seq}              # when otherwise idle
    C -> S   ping {nonce}  ->  S -> C   pong {nonce}   # drain barrier

Semantics:

* **Negotiation** — a ``watch_req`` naming an existing standing query
  subscribes this connection to it; one carrying a spec registers a
  new standing query.  Either way the server replies with the ``watch``
  ack and a priming ``snapshot`` before any delta, so a client folding
  the stream (exactly :func:`repro.api.wire.replay_feed`'s rules)
  reconstructs the live result from nothing.
* **Backpressure** — each watch is served from a bounded
  :class:`~repro.queries.serving.Subscription` under the drop-oldest
  policy, with ``resync_on_drop``: when a slow connection sheds
  deltas, the very next record it gets is a fresh full-result
  ``snapshot``, so a lossy subscriber re-primes in-band and never
  silently diverges.
* **Heartbeats** — the server emits a ``heartbeat`` whenever a
  connection has been silent for its cadence, and tears down
  connections that never negotiate a watch within the idle timeout.
* **Reconnect** — the server's ``hello`` carries a resume token.  A
  client that reconnects and presents it gets every previously watched
  query re-acked and re-primed from a *current* snapshot; because a
  snapshot replaces replayed state wholesale, the resumed stream is
  bit-identical to an uninterrupted subscriber from that point on
  (the property and fault-injection suites assert it).
* **Duplicate/torn frames** — frame sequence numbers make duplicated,
  dropped or reordered frames a loud
  :class:`~repro.errors.FramingError`; clients treat it like a dead
  connection and resume.

:class:`NetClient` is the blocking counterpart (usable from plain
threads, with optional automatic resume); :class:`AsyncNetClient` the
in-loop one; :class:`ServerThread` hosts a server plus its service on
a dedicated loop thread so synchronous code (benchmarks, tests) can
drive ingest safely.
"""

from __future__ import annotations

import asyncio
import itertools
import secrets
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.api import wire
from repro.api.framing import (
    ByeRecord,
    ErrorRecord,
    FrameDecoder,
    FrameEncoder,
    HeartbeatRecord,
    HelloRecord,
    NetRecord,
    PingRecord,
    PongRecord,
    ResumeRequest,
    WatchRequest,
    decode_net_record,
    encode_net_record,
)
from repro.api.service import QueryService
from repro.api.specs import QuerySpec
from repro.errors import FramingError, NetError, QueryError, WireError
from repro.queries.deltas import ResultDelta
from repro.queries.serving import Subscription

#: Read chunk size for both server and clients.
_READ_CHUNK = 65536


# =====================================================================
# server
# =====================================================================


@dataclass
class NetServerStats:
    """Aggregate counters of one :class:`NetServer`'s lifetime."""

    connections_accepted: int = 0
    connections_active: int = 0
    resumes: int = 0
    watches: int = 0
    records_sent: int = 0
    heartbeats_sent: int = 0
    errors_sent: int = 0
    idle_teardowns: int = 0


class _Connection:
    """Server-side per-connection state (one reader, many pumps)."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        now: float,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.encoder = FrameEncoder()
        self.decoder = FrameDecoder()
        self.subs: dict[str, Subscription] = {}
        self.pumps: dict[str, asyncio.Task] = {}
        self.aux: set[asyncio.Task] = set()
        self.token: str | None = None
        self.negotiated = False
        self.closing = False
        self.last_write = now
        self.last_seen = now
        #: Deltas pulled from a subscription queue but not yet written
        #: (the ping/pong barrier waits for queues *and* this).
        self.inflight = 0
        self.wlock = asyncio.Lock()


class NetServer:
    """Serve one :class:`QueryService` to remote subscribers over TCP.

    Usage (inside a running loop; see :class:`ServerThread` for the
    threaded wrapper synchronous callers want)::

        server = NetServer(service, port=0)
        await server.start()
        host, port = server.address
        ...
        await server.aclose()

    ``maxlen`` bounds every connection's per-query subscription queue
    (drop-oldest + in-band snapshot re-prime); ``heartbeat_s`` is the
    cadence advertised in the hello record; connections holding no
    watches for ``idle_timeout_s`` are torn down.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        maxlen: int | None = 1024,
        heartbeat_s: float = 2.0,
        idle_timeout_s: float = 30.0,
        barrier_timeout_s: float = 30.0,
        resume_keep: int = 1024,
    ) -> None:
        if heartbeat_s <= 0:
            raise NetError(f"heartbeat_s must be > 0, got {heartbeat_s}")
        self.service = service
        self.host = host
        self.port = port
        self.maxlen = maxlen
        self.heartbeat_s = heartbeat_s
        self.idle_timeout_s = idle_timeout_s
        self.barrier_timeout_s = barrier_timeout_s
        self.stats = NetServerStats()
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[_Connection] = set()
        #: Reconnect sessions: token -> ordered watched query ids.
        #: Bounded FIFO (oldest session forgotten past ``resume_keep``).
        self._sessions: OrderedDict[str, list[str]] = OrderedDict()
        self._resume_keep = resume_keep
        self._token_counter = itertools.count(1)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Bind and begin accepting connections (resolves port 0)."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` actually bound (port 0 resolves here)."""
        return (self.host, self.port)

    async def aclose(self) -> None:
        """Stop accepting, say bye to every client, drop connections.
        The wrapped service itself stays open (it belongs to the
        caller)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for conn in list(self._conns):
            try:
                await self._send(conn, ByeRecord())
            except OSError:
                pass
            await self._teardown(conn)

    # -- per-connection plumbing ---------------------------------------

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _Connection(reader, writer, self._now())
        self._conns.add(conn)
        self.stats.connections_accepted += 1
        self.stats.connections_active = len(self._conns)
        hb = asyncio.ensure_future(self._heartbeat_loop(conn))
        try:
            await self._read_loop(conn)
        except (ConnectionError, OSError):
            pass  # peer died mid-frame: session stays resumable
        finally:
            hb.cancel()
            await self._teardown(conn)

    async def _read_loop(self, conn: _Connection) -> None:
        while not conn.closing:
            data = await conn.reader.read(_READ_CHUNK)
            if not data:
                return
            conn.last_seen = self._now()
            try:
                payloads = conn.decoder.feed(data)
                records = [decode_net_record(p) for p in payloads]
            except WireError as exc:  # FramingError included
                await self._fail(conn, f"protocol violation: {exc}")
                return
            for record in records:
                if not await self._on_record(conn, record):
                    return

    async def _on_record(
        self, conn: _Connection, record: NetRecord
    ) -> bool:
        """Handle one client record; False ends the connection."""
        if not conn.negotiated:
            return await self._negotiate(conn, record)
        if isinstance(record, WatchRequest):
            return await self._on_watch(conn, record)
        if isinstance(record, PingRecord):
            task = asyncio.ensure_future(
                self._pong_after_drain(conn, record.nonce)
            )
            conn.aux.add(task)
            task.add_done_callback(conn.aux.discard)
            return True
        if isinstance(record, HeartbeatRecord):
            return True  # client keepalive: last_seen already bumped
        if isinstance(record, ByeRecord):
            # A clean goodbye is a completed session, not a resumable
            # one: forget the token.
            if conn.token is not None:
                self._sessions.pop(conn.token, None)
            return False
        await self._fail(
            conn,
            f"unexpected {type(record).__name__} from client",
        )
        return False

    async def _negotiate(
        self, conn: _Connection, record: NetRecord
    ) -> bool:
        if isinstance(record, HelloRecord):
            conn.token = self._mint_token()
            self._sessions[conn.token] = []
            self._trim_sessions()
            conn.negotiated = True
            await self._send(
                conn,
                HelloRecord(conn.token, heartbeat_s=self.heartbeat_s),
            )
            return True
        if isinstance(record, ResumeRequest):
            watched = self._sessions.get(record.token)
            if watched is None:
                await self._fail(
                    conn, f"unknown resume token {record.token!r}"
                )
                return False
            conn.token = record.token
            conn.negotiated = True
            self.stats.resumes += 1
            await self._send(
                conn,
                HelloRecord(conn.token, heartbeat_s=self.heartbeat_s),
            )
            for query_id in list(watched):
                if query_id not in self.service:
                    # Deregistered while the client was away: close it
                    # on the wire too (replay pops the query), never
                    # leave the client believing a stale result.
                    watched.remove(query_id)
                    await self._send(
                        conn, ResultDelta(query_id, "deregister")
                    )
                    continue
                await self._ack_and_stream(conn, query_id)
            return True
        await self._fail(
            conn,
            "connection must open with a hello or resume record, got "
            f"{type(record).__name__}",
        )
        return False

    async def _on_watch(
        self, conn: _Connection, req: WatchRequest
    ) -> bool:
        query_id = req.query_id
        try:
            if query_id is not None and query_id in self.service:
                spec = self.service.query_spec(query_id)
                if req.spec is not None and req.spec != spec:
                    raise QueryError(
                        f"standing query {query_id!r} is registered "
                        f"with a different spec"
                    )
            elif req.spec is not None:
                query_id = self.service.watch(
                    req.spec, query_id=query_id
                )
            else:
                raise QueryError(
                    "watch_req needs a spec or an existing query_id"
                )
            if query_id in conn.subs:
                raise QueryError(
                    f"connection already watches {query_id!r}"
                )
        except QueryError as exc:
            await self._fail(conn, str(exc))
            return False
        await self._ack_and_stream(conn, query_id)
        if conn.token is not None:
            watched = self._sessions.setdefault(conn.token, [])
            if query_id not in watched:
                watched.append(query_id)
        self.stats.watches += 1
        return True

    async def _ack_and_stream(
        self, conn: _Connection, query_id: str
    ) -> None:
        """The ack + prime + live-stream sequence behind both watch and
        resume: ``watch`` record first, then a subscription whose
        priming snapshot delta becomes the wire ``snapshot`` record."""
        await self._send(
            conn,
            wire.WatchRecord(query_id, self.service.query_spec(query_id)),
        )
        sub = self.service.subscribe(
            query_id,
            snapshot=True,
            maxlen=self.maxlen,
            resync_on_drop=True,
        )
        conn.subs[query_id] = sub
        conn.pumps[query_id] = asyncio.ensure_future(
            self._pump(conn, sub)
        )

    async def _pump(self, conn: _Connection, sub: Subscription) -> None:
        """Drain one subscription onto the socket, translating the
        synthetic snapshot-cause deltas (priming, drop-resync) into
        wholesale ``snapshot`` records."""
        try:
            while True:
                delta = await sub.next_delta()
                if delta is None:
                    return
                conn.inflight += 1
                try:
                    if delta.cause == "snapshot":
                        await self._send(
                            conn,
                            wire.SnapshotRecord(
                                delta.query_id, dict(delta.entered)
                            ),
                        )
                    else:
                        await self._send(conn, delta)
                finally:
                    conn.inflight -= 1
        except (ConnectionError, OSError):
            conn.writer.close()  # reader loop notices and tears down

    async def _pong_after_drain(
        self, conn: _Connection, nonce: int
    ) -> None:
        """Reply to a ping only once every delta published before it
        has left this connection's queues *and* hit the socket."""
        deadline = self._now() + self.barrier_timeout_s
        while self._now() < deadline:
            drained = conn.inflight == 0 and all(
                sub.pending == 0 for sub in conn.subs.values()
            )
            if drained:
                try:
                    await self._send(conn, PongRecord(nonce))
                except (ConnectionError, OSError):
                    pass
                return
            await asyncio.sleep(0.002)
        await self._fail(conn, "drain barrier timed out")

    async def _heartbeat_loop(self, conn: _Connection) -> None:
        seq = 0
        try:
            while not conn.closing:
                await asyncio.sleep(self.heartbeat_s / 4)
                now = self._now()
                idle = now - conn.last_seen > self.idle_timeout_s
                if not conn.subs and idle:
                    self.stats.idle_teardowns += 1
                    await self._fail(
                        conn,
                        "idle connection torn down (no watch within "
                        f"{self.idle_timeout_s}s)",
                    )
                    return
                if now - conn.last_write >= self.heartbeat_s:
                    await self._send(conn, HeartbeatRecord(seq))
                    self.stats.heartbeats_sent += 1
                    seq += 1
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass

    async def _send(self, conn: _Connection, record: NetRecord) -> None:
        data = None
        line = encode_net_record(record)
        async with conn.wlock:
            if conn.closing:
                return
            data = conn.encoder.encode(line)
            conn.writer.write(data)
            await conn.writer.drain()
            conn.last_write = self._now()
        self.stats.records_sent += 1

    async def _fail(self, conn: _Connection, message: str) -> None:
        """Fatal per-connection error: tell the client why, then hang
        up (never a silent divergence)."""
        try:
            await self._send(conn, ErrorRecord(message))
            self.stats.errors_sent += 1
        except (ConnectionError, OSError):
            pass
        conn.closing = True
        conn.writer.close()

    async def _teardown(self, conn: _Connection) -> None:
        conn.closing = True
        for task in list(conn.pumps.values()) + list(conn.aux):
            task.cancel()
        for sub in conn.subs.values():
            self.service.unsubscribe(sub)
        conn.subs.clear()
        conn.pumps.clear()
        conn.writer.close()
        try:
            await conn.writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._conns.discard(conn)
        self.stats.connections_active = len(self._conns)

    def _mint_token(self) -> str:
        return f"s{next(self._token_counter)}-{secrets.token_hex(8)}"

    def _trim_sessions(self) -> None:
        while len(self._sessions) > self._resume_keep:
            self._sessions.popitem(last=False)

    # -- restartability ------------------------------------------------

    def session_state(self) -> list[dict[str, Any]]:
        """The resume-session table as a JSON-able payload — stored in
        every checkpoint's ``extra`` so a server restarted from a
        manifest still honours tokens minted before the crash (a
        reconnecting client is then bit-identical to one whose server
        never died)."""
        return [
            {"token": token, "watched": list(watched)}
            for token, watched in self._sessions.items()
        ]

    def restore_sessions(self, entries: list[dict[str, Any]]) -> int:
        """Reinstate a :meth:`session_state` capture (token order
        preserved — it is the FIFO eviction order); returns the number
        of sessions restored."""
        for entry in entries:
            self._sessions[str(entry["token"])] = [
                str(qid) for qid in entry.get("watched", ())
            ]
        self._trim_sessions()
        return len(entries)


class ServerThread:
    """A :class:`NetServer` (and its service's mutation path) on a
    dedicated event-loop thread.

    Synchronous code must not mutate a served :class:`QueryService`
    directly — publishes touch asyncio queues that belong to the
    server's loop.  This wrapper owns the loop and marshals every
    mutation onto it::

        with ServerThread(service) as st:
            st.watch(RangeSpec(q, 60.0), query_id="kiosk")
            client = NetClient(*st.address)
            ...
            st.ingest(stream.next_moves(50))

    ``ingest``/``insert``/``delete``/``apply_event`` run as the
    monitor-server coroutines (single-writer lock included); ``run``
    executes any synchronous callable on the loop thread; ``call``
    awaits any coroutine there.

    **Durability** — pass ``store`` (a
    :class:`~repro.persist.store.CheckpointStore`) and the thread
    becomes restartable: a durable point is cut at boot (attaching the
    service's WAL, so every subsequent mutation is replayable), every
    ``checkpoint_every_s`` seconds, on :meth:`checkpoint_now`, on a
    clean :meth:`close`, and — with ``install_sigterm=True``, from the
    main thread only — on SIGTERM before the process dies.  Each
    checkpoint carries the server's resume-session table, so
    :meth:`from_store` brings the whole thing back after a crash
    (:meth:`kill` simulates one) with every pre-crash resume token
    still honoured: a client that reconnects into the restarted server
    re-primes from a current snapshot and ends bit-identical to one
    whose server never died.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        store=None,
        checkpoint_every_s: float | None = None,
        install_sigterm: bool = False,
        **server_kwargs,
    ) -> None:
        if checkpoint_every_s is not None and checkpoint_every_s <= 0:
            raise NetError(
                f"checkpoint_every_s must be > 0, got {checkpoint_every_s}"
            )
        if checkpoint_every_s is not None and store is None:
            raise NetError("checkpoint_every_s needs a store")
        if install_sigterm and store is None:
            raise NetError("install_sigterm needs a store")
        self.service = service
        self._kwargs = server_kwargs
        self._store = store
        self._checkpoint_every_s = checkpoint_every_s
        self._want_sigterm = install_sigterm
        self._prev_sigterm = None
        self._resume_sessions: list[dict[str, Any]] = []
        #: The recovery report when built by :meth:`from_store`.
        self.recovery = None
        self.server: NetServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._boot_exc: BaseException | None = None
        self._ckpt_task: asyncio.Task | None = None

    @classmethod
    def from_store(
        cls,
        store,
        config=None,
        **kwargs,
    ) -> "ServerThread":
        """Recover a service from ``store`` (newest readable checkpoint
        + WAL tail replay) and host it — the restart half of the crash
        story.  Resume sessions recorded in the checkpoint's ``extra``
        are reinstated at boot; pass ``port=`` the pre-crash port so
        clients can transparently resume.  ``config`` optionally
        overrides the checkpointed engine shape; the recovery report
        lands on ``.recovery``."""
        service, report = store.recover(config=config)
        thread = cls(service, store=store, **kwargs)
        thread._resume_sessions = list(
            report.extra.get("net_sessions", ())
        )
        thread.recovery = report
        return thread

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> "ServerThread":
        started = threading.Event()

        def main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self.server = NetServer(self.service, **self._kwargs)

            async def boot() -> None:
                try:
                    await self.server.start()
                    if self._resume_sessions:
                        self.server.restore_sessions(
                            self._resume_sessions
                        )
                    if self._store is not None:
                        # First durable point: attaches the WAL, so no
                        # mutation predates the log.
                        self._checkpoint_sync()
                        if self._checkpoint_every_s is not None:
                            self._ckpt_task = asyncio.ensure_future(
                                self._checkpoint_loop()
                            )
                except BaseException as exc:  # surface in __enter__
                    self._boot_exc = exc
                finally:
                    started.set()

            loop.create_task(boot())
            loop.run_forever()
            loop.close()

        self._thread = threading.Thread(
            target=main, name="repro-net-server", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=30):
            raise NetError("server thread failed to start in time")
        if self._boot_exc is not None:
            raise self._boot_exc
        if self._want_sigterm:
            self._install_sigterm()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: a final durable point (when a store is
        attached), bye to every client, loop torn down.  The service's
        WAL is detached afterwards — its segment stream dies with the
        store, and a detached service mutating on is a caller choice,
        not a crash."""
        if self._loop is None:
            return
        self._uninstall_sigterm()
        try:
            if self._store is not None:
                self.run(self._checkpoint_sync)
            self.call(self.server.aclose())
        finally:
            if self._ckpt_task is not None:
                self._loop.call_soon_threadsafe(self._ckpt_task.cancel)
                self._ckpt_task = None
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=30)
            self._loop = None
            if self._store is not None:
                self.service.detach_wal()
                self._store.close()

    def kill(self) -> None:
        """Crash simulation: every connection aborted mid-frame (no
        bye), the listener dropped, the loop stopped — and, crucially,
        *no* final checkpoint, so the store is exactly as durable as
        the last completed cut plus the WAL tail.  Pair with
        :meth:`from_store` to exercise the recovery path."""
        if self._loop is None:
            return
        self._uninstall_sigterm()
        loop, self._loop = self._loop, None

        def die() -> None:
            server = self.server
            if server._server is not None:
                server._server.close()
                server._server = None
            for conn in list(server._conns):
                conn.closing = True
                transport = conn.writer.transport
                if transport is not None:
                    transport.abort()
            for task in asyncio.all_tasks(loop):
                task.cancel()
            loop.call_soon(loop.stop)

        loop.call_soon_threadsafe(die)
        self._thread.join(timeout=30)
        self._ckpt_task = None

    @property
    def address(self) -> tuple[str, int]:
        """The hosted server's bound ``(host, port)``."""
        return self.server.address

    # -- durability ----------------------------------------------------

    def checkpoint_now(self) -> int:
        """Cut a durable point right now (on the loop thread, so the
        snapshot and the session table are mutually consistent);
        returns the new manifest sequence number."""
        if self._store is None:
            raise NetError("no checkpoint store attached")
        return self.run(self._checkpoint_sync)

    def _checkpoint_sync(self) -> int:
        """Loop-thread body of every checkpoint: service state plus the
        current resume-session table."""
        return self._store.checkpoint(
            self.service,
            extra={"net_sessions": self.server.session_state()},
        )

    async def _checkpoint_loop(self) -> None:
        while True:
            await asyncio.sleep(self._checkpoint_every_s)
            self._checkpoint_sync()

    def _install_sigterm(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            raise NetError(
                "install_sigterm requires entering the ServerThread "
                "from the main thread"
            )

        def handler(signum, frame) -> None:
            prev = self._prev_sigterm
            try:
                if self._store is not None and self._loop is not None:
                    self.checkpoint_now()
            finally:
                self._uninstall_sigterm()
                if callable(prev):
                    prev(signum, frame)
                else:
                    signal.raise_signal(signal.SIGTERM)

        self._prev_sigterm = signal.signal(signal.SIGTERM, handler)

    def _uninstall_sigterm(self) -> None:
        if self._prev_sigterm is not None:
            prev, self._prev_sigterm = self._prev_sigterm, None
            try:
                signal.signal(signal.SIGTERM, prev)
            except (ValueError, OSError):  # pragma: no cover
                pass  # not on the main thread any more: leave it

    # -- marshalling ---------------------------------------------------

    def call(self, coro):
        """Await ``coro`` on the server loop; return its result."""
        fut = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return fut.result(timeout=60)

    def run(self, fn: Callable, *args, **kwargs):
        """Run the synchronous ``fn(*args, **kwargs)`` on the loop
        thread (where publishing to subscriber queues is safe)."""
        done = threading.Event()
        box: list = [None, None]

        def go() -> None:
            try:
                box[0] = fn(*args, **kwargs)
            except BaseException as exc:
                box[1] = exc
            finally:
                done.set()

        self._loop.call_soon_threadsafe(go)
        if not done.wait(timeout=60):
            raise NetError("loop-thread call timed out")
        if box[1] is not None:
            raise box[1]
        return box[0]

    # -- service verbs, marshalled ------------------------------------

    def watch(self, spec: QuerySpec, query_id: str | None = None) -> str:
        """Register a standing query on the loop thread."""
        return self.run(self.service.watch, spec, query_id)

    def unwatch(self, query_id: str) -> None:
        """Deregister a standing query on the loop thread."""
        self.run(self.service.unwatch, query_id)

    def ingest(self, moves):
        """Apply a move batch through the served mutation path."""
        return self.call(self.service.server.apply_moves(moves))

    def insert(self, obj):
        """Insert an object through the served mutation path."""
        return self.call(self.service.server.apply_insert(obj))

    def delete(self, object_id: str):
        """Delete an object through the served mutation path."""
        return self.call(self.service.server.apply_delete(object_id))

    def apply_event(self, event):
        """Apply a topology event through the served mutation path."""
        return self.call(self.service.server.apply_event(event))


# =====================================================================
# clients
# =====================================================================


class TcpTransport:
    """Blocking socket transport (the default); the seam
    :class:`~repro.api.testing.FlakyTransport` wraps for fault
    injection."""

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None

    def connect(self) -> None:
        """Open the TCP connection."""
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def _live(self) -> socket.socket:
        if self._sock is None:
            raise ConnectionError("transport is closed")
        return self._sock

    def settimeout(self, timeout: float | None) -> None:
        """Set the socket read/write timeout (``None`` blocks)."""
        self._live().settimeout(timeout)

    def sendall(self, data: bytes) -> None:
        """Write all of ``data`` to the socket."""
        self._live().sendall(data)

    def recv(self, n: int = _READ_CHUNK) -> bytes:
        """Read up to ``n`` bytes (empty bytes means EOF)."""
        return self._live().recv(n)

    def close(self) -> None:
        """Close the socket; safe to call when never connected."""
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None


@dataclass
class _ClientState:
    """Replayed standing-query state shared by both client flavours.

    Folds the incoming record stream by :func:`replay_feed`'s rules —
    ``watch`` opens, ``snapshot`` re-primes wholesale, ``delta`` /
    ``batch`` apply incrementally, ``deregister`` closes — plus the
    net-layer control records."""

    states: dict[str, dict[str, float | None]] = field(
        default_factory=dict
    )
    watched: dict[str, QuerySpec] = field(default_factory=dict)
    token: str | None = None
    heartbeat_s: float | None = None
    records_received: int = 0
    deltas_received: int = 0
    heartbeats_seen: int = 0
    #: Snapshots received for an already-primed query: the count of
    #: mid-stream re-primes (drop-resync or reconnect).
    resyncs: int = 0
    server_said_bye: bool = False
    pongs: set = field(default_factory=set)
    _primed: set = field(default_factory=set)

    def fold(self, record: NetRecord) -> None:
        self.records_received += 1
        if isinstance(record, HelloRecord):
            self.token = record.token
            self.heartbeat_s = record.heartbeat_s
        elif isinstance(record, wire.WatchRecord):
            self.watched[record.query_id] = record.spec
            self.states.setdefault(record.query_id, {})
        elif isinstance(record, wire.SnapshotRecord):
            if record.query_id in self._primed:
                self.resyncs += 1
            self._primed.add(record.query_id)
            self.states[record.query_id] = dict(record.members)
        elif isinstance(record, ResultDelta):
            self._apply(record)
        elif isinstance(record, wire.DeltaBatch):
            for delta in record.deltas:
                self._apply(delta)
        elif isinstance(record, HeartbeatRecord):
            self.heartbeats_seen += 1
        elif isinstance(record, PongRecord):
            self.pongs.add(record.nonce)
        elif isinstance(record, ByeRecord):
            self.server_said_bye = True
        elif isinstance(record, ErrorRecord):
            raise NetError(f"server error: {record.message}")
        # A bare QuerySpec carries no query id: metadata only.

    def _apply(self, delta: ResultDelta) -> None:
        self.deltas_received += 1
        if delta.cause == "deregister":
            self.states.pop(delta.query_id, None)
            self.watched.pop(delta.query_id, None)
            self._primed.discard(delta.query_id)
            return
        delta.apply_to(self.states.setdefault(delta.query_id, {}))


class NetClient:
    """Blocking subscriber to a :class:`NetServer`.

    Usage::

        client = NetClient(host, port)
        client.connect()
        kiosk = client.watch(RangeSpec(q, 60.0))
        client.sync()                       # drain barrier
        client.states[kiosk]                # member -> annotation

    ``states`` is the replayed result per watched query and is kept
    exact: snapshots re-prime it wholesale after any loss, and with
    ``auto_reconnect`` (the default) a dead connection — torn frame,
    reset, stalled read, duplicated frame — is transparently resumed
    with the server-issued token, which re-primes every watch from a
    current snapshot.  A server ``error`` record always surfaces as
    :class:`~repro.errors.NetError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 10.0,
        auto_reconnect: bool = True,
        max_reconnects: int = 8,
        transport_factory: (
            Callable[[], TcpTransport] | None
        ) = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.auto_reconnect = auto_reconnect
        self.max_reconnects = max_reconnects
        self._transport_factory = transport_factory or (
            lambda: TcpTransport(host, port, timeout)
        )
        self._transport: TcpTransport | None = None
        self._encoder = FrameEncoder()
        self._decoder = FrameDecoder()
        self._pending: list[NetRecord] = []
        self._nonce = itertools.count(1)
        self.state = _ClientState()
        self.reconnects = 0

    # -- convenience views ---------------------------------------------

    @property
    def states(self) -> dict[str, dict[str, float | None]]:
        """Folded live result per watched query id."""
        return self.state.states

    @property
    def watched(self) -> dict[str, QuerySpec]:
        """Spec per watched query id, in watch order."""
        return self.state.watched

    @property
    def token(self) -> str | None:
        """The server-issued resume token (``None`` before hello)."""
        return self.state.token

    # -- lifecycle -----------------------------------------------------

    def connect(self) -> None:
        """Open the connection and complete the hello handshake."""
        self._open(ResumeRequest(self.token) if self.token
                   else HelloRecord())

    def reconnect(self) -> None:
        """Resume the session on a fresh connection (token required);
        every watch re-acks and re-primes from a current snapshot."""
        if self.token is None:
            raise NetError("cannot resume: no token (connect first)")
        self.disconnect()
        self._open(ResumeRequest(self.token))
        self.reconnects += 1

    def _open(self, opener: HelloRecord | ResumeRequest) -> None:
        self._transport = self._transport_factory()
        self._transport.connect()
        self._encoder = FrameEncoder()
        self._decoder = FrameDecoder()
        self._pending.clear()
        self.state.server_said_bye = False
        self._send_raw(opener)
        self._read_until(
            lambda r: isinstance(r, HelloRecord),
            time.monotonic() + self.timeout,
            allow_reconnect=False,
        )

    def disconnect(self) -> None:
        """Drop the socket without a goodbye (the session stays
        resumable server-side) — what a crash looks like to the peer."""
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    def close(self) -> None:
        """Polite shutdown: say bye (ending the server-side session),
        then drop the socket."""
        if self._transport is not None:
            try:
                self._send_raw(ByeRecord())
            except (OSError, NetError):
                pass
        self.disconnect()

    # -- verbs ---------------------------------------------------------

    def watch(
        self,
        spec: QuerySpec | None = None,
        query_id: str | None = None,
        timeout: float | None = None,
    ) -> str:
        """Subscribe to a standing query (existing ``query_id``) or
        register a new one from ``spec``; returns the final id once
        the server acks.  Records arriving meanwhile are folded."""
        if spec is None and query_id is None:
            raise NetError("watch needs a spec or a query_id")
        deadline = time.monotonic() + (timeout or self.timeout)
        known = set(self.watched)
        self._send(WatchRequest(spec, query_id))

        def acked(record: NetRecord) -> bool:
            if not isinstance(record, wire.WatchRecord):
                return False
            if query_id is not None:
                return record.query_id == query_id
            return record.spec == spec and record.query_id not in known

        ack = self._read_until(acked, deadline)
        return ack.query_id

    def sync(self, timeout: float | None = None) -> None:
        """Drain barrier: returns once every delta published before
        the server processed this ping has been received and folded.
        Re-pings automatically if a reconnect interrupts the wait."""
        deadline = time.monotonic() + (timeout or self.timeout)
        while True:
            nonce = next(self._nonce)
            epoch = self.reconnects
            self._send(PingRecord(nonce))
            while time.monotonic() < deadline:
                if nonce in self.state.pongs:
                    return
                self._read_some(deadline)
                if self.reconnects != epoch:
                    break  # new connection: this ping is gone, re-ping
            else:
                raise NetError("sync barrier timed out")

    def poll(self, timeout: float = 0.05) -> int:
        """Opportunistic read: fold whatever arrives within
        ``timeout`` seconds; returns the number of records folded.
        A quiet wire is not an error."""
        before = self.state.records_received
        try:
            if self._transport is None:
                raise ConnectionError("not connected")
            self._transport.settimeout(timeout)
            try:
                self._feed(self._transport.recv())
            finally:
                try:
                    self._transport.settimeout(self.timeout)
                except (ConnectionError, OSError):
                    pass  # surfaced by the next read, not a poll bug
        except TimeoutError:
            pass
        except (ConnectionError, OSError, FramingError) as exc:
            self._revive(exc)
        self._fold_pending()
        return self.state.records_received - before

    def records(self) -> Iterator[NetRecord]:
        """Blocking record iterator (each record folded before it is
        yielded); ends at the server's bye."""
        while not self.state.server_said_bye:
            if self._pending:
                record = self._pending.pop(0)
                self.state.fold(record)
                if isinstance(record, ByeRecord):
                    return
                yield record
                continue
            try:
                if self._transport is None:
                    raise ConnectionError("not connected")
                self._feed(self._transport.recv())
            except (
                TimeoutError, ConnectionError, OSError, FramingError
            ) as exc:
                self._revive(exc)

    # -- internals -----------------------------------------------------

    def _send(self, record: NetRecord) -> None:
        try:
            self._send_raw(record)
        except (ConnectionError, OSError) as exc:
            self._revive(exc)
            self._send_raw(record)

    def _send_raw(self, record: NetRecord) -> None:
        if self._transport is None:
            raise ConnectionError("not connected")
        self._transport.sendall(
            self._encoder.encode(encode_net_record(record))
        )

    def _feed(self, data: bytes) -> None:
        if data == b"":
            raise ConnectionError("server closed the connection")
        for payload in self._decoder.feed(data):
            self._pending.append(decode_net_record(payload))

    def _fold_pending(self) -> None:
        while self._pending:
            self.state.fold(self._pending.pop(0))

    def _read_some(self, deadline: float) -> None:
        """Fold at least one read's worth of records (or revive a dead
        connection trying)."""
        if self._pending:
            self._fold_pending()
            return
        if time.monotonic() >= deadline:
            raise NetError("timed out waiting for the server")
        try:
            if self._transport is None:
                raise ConnectionError("not connected")
            self._feed(self._transport.recv())
        except (
            TimeoutError, ConnectionError, OSError, FramingError
        ) as exc:
            self._revive(exc)
        self._fold_pending()

    def _read_until(
        self,
        pred: Callable[[NetRecord], bool],
        deadline: float,
        allow_reconnect: bool = True,
    ) -> NetRecord:
        """Fold records until one satisfies ``pred`` (returned), the
        deadline passes (:class:`NetError`), or the stream ends."""
        while time.monotonic() < deadline:
            while self._pending:
                record = self._pending.pop(0)
                self.state.fold(record)
                if pred(record):
                    return record
            try:
                if self._transport is None:
                    raise ConnectionError("not connected")
                self._feed(self._transport.recv())
            except (
                TimeoutError, ConnectionError, OSError, FramingError
            ) as exc:
                if not allow_reconnect:
                    raise NetError(
                        f"connection failed during handshake: {exc}"
                    ) from exc
                self._revive(exc)
        raise NetError("timed out waiting for the server")

    def _revive(self, exc: Exception) -> None:
        """The connection is unusable (reset, torn frame, duplicated
        frame, stalled read): resume it, or surface the failure."""
        if (
            not self.auto_reconnect
            or self.token is None
            or self.reconnects >= self.max_reconnects
        ):
            self.disconnect()
            raise NetError(f"connection lost: {exc}") from exc
        self.reconnect()


class AsyncNetClient:
    """In-loop counterpart of :class:`NetClient` (asyncio streams).

    Reconnection is explicit (``await resume()``); everything else —
    folding rules, watch ack, ping/pong barrier — matches the blocking
    client, so either can stand in for the other in tests.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 10.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._encoder = FrameEncoder()
        self._decoder = FrameDecoder()
        self._pending: list[NetRecord] = []
        self._nonce = itertools.count(1)
        self.state = _ClientState()
        self.reconnects = 0

    @property
    def states(self) -> dict[str, dict[str, float | None]]:
        """Folded live result per watched query id."""
        return self.state.states

    @property
    def watched(self) -> dict[str, QuerySpec]:
        """Spec per watched query id, in watch order."""
        return self.state.watched

    @property
    def token(self) -> str | None:
        """The server-issued resume token (``None`` before hello)."""
        return self.state.token

    async def connect(self) -> None:
        """Open the connection (resuming when a token is held)."""
        await self._open(
            ResumeRequest(self.token) if self.token else HelloRecord()
        )

    async def resume(self) -> None:
        """Reconnect with the held token; watches re-prime in-band."""
        if self.token is None:
            raise NetError("cannot resume: no token (connect first)")
        await self.aclose(say_bye=False)
        await self._open(ResumeRequest(self.token))
        self.reconnects += 1

    async def _open(
        self, opener: HelloRecord | ResumeRequest
    ) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        self._encoder = FrameEncoder()
        self._decoder = FrameDecoder()
        self._pending.clear()
        self.state.server_said_bye = False
        await self._send(opener)
        await self._read_until(lambda r: isinstance(r, HelloRecord))

    async def aclose(self, say_bye: bool = True) -> None:
        """Close the connection (with a ``bye`` unless told not to)."""
        if self._writer is None:
            return
        if say_bye:
            try:
                await self._send(ByeRecord())
            except (OSError, NetError):
                pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        self._writer = None
        self._reader = None

    async def watch(
        self,
        spec: QuerySpec | None = None,
        query_id: str | None = None,
    ) -> str:
        """Negotiate one watch; returns the acked query id."""
        if spec is None and query_id is None:
            raise NetError("watch needs a spec or a query_id")
        known = set(self.watched)
        await self._send(WatchRequest(spec, query_id))

        def acked(record: NetRecord) -> bool:
            if not isinstance(record, wire.WatchRecord):
                return False
            if query_id is not None:
                return record.query_id == query_id
            return record.spec == spec and record.query_id not in known

        ack = await self._read_until(acked)
        return ack.query_id

    async def sync(self) -> None:
        """Ping/pong drain barrier: returns with all deltas folded."""
        nonce = next(self._nonce)
        await self._send(PingRecord(nonce))
        await self._read_until(
            lambda r: isinstance(r, PongRecord) and r.nonce == nonce
        )

    async def next_record(self) -> NetRecord | None:
        """The next folded record, or ``None`` at end of stream."""
        if self.state.server_said_bye:
            return None
        while not self._pending:
            data = await asyncio.wait_for(
                self._reader.read(_READ_CHUNK), timeout=self.timeout
            )
            if not data:
                raise NetError("server closed the connection")
            for payload in self._decoder.feed(data):
                self._pending.append(decode_net_record(payload))
        record = self._pending.pop(0)
        self.state.fold(record)
        if isinstance(record, ByeRecord):
            return None
        return record

    def __aiter__(self) -> "AsyncNetClient":
        return self

    async def __anext__(self) -> NetRecord:
        record = await self.next_record()
        if record is None:
            raise StopAsyncIteration
        return record

    async def _send(self, record: NetRecord) -> None:
        if self._writer is None:
            raise NetError("not connected")
        self._writer.write(
            self._encoder.encode(encode_net_record(record))
        )
        await self._writer.drain()

    async def _read_until(
        self, pred: Callable[[NetRecord], bool]
    ) -> NetRecord:
        deadline = time.monotonic() + self.timeout
        while time.monotonic() < deadline:
            while self._pending:
                record = self._pending.pop(0)
                self.state.fold(record)
                if pred(record):
                    return record
            record = await self.next_record()
            if record is None:
                raise NetError("stream ended before the awaited record")
            if pred(record):
                return record
        raise NetError("timed out waiting for the server")
