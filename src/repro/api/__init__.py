"""`repro.api` — the unified public query surface.

One declarative vocabulary (:class:`RangeSpec`, :class:`KNNSpec`,
:class:`ProbRangeSpec`), one façade (:class:`QueryService`:
``run``/``watch``/``subscribe``/``ingest`` over one
:class:`~repro.index.composite.CompositeIndex` and one
:class:`~repro.queries.session.QuerySession`), and one versioned wire
protocol (:mod:`repro.api.wire`, JSON lines) so subscribers can live
out-of-process.  The legacy one-shot entry points remain, but every
standing registration funnels through ``register(spec)`` — one
pluggable :class:`~repro.queries.maintainers.StandingQuery` maintainer
per spec kind, iRQ/ikNNQ/iPRQ alike (the deprecated
``register_irq``/``register_iknn`` shims were removed).

Quickstart::

    from repro.api import KNNSpec, QueryService, RangeSpec, ServiceConfig

    service = QueryService(index, ServiceConfig(n_shards=4))
    nearby = service.run(RangeSpec(q, 60.0))       # one-shot
    kiosk = service.watch(RangeSpec(q, 60.0))      # standing
    feed = service.subscribe(KNNSpec(desk, 8))     # async delta push
    service.ingest(moves)                          # drive updates

Serving over the network
------------------------

:mod:`repro.api.net` turns the facade into a TCP server: many remote
subscribers, each negotiating watches and folding the same wire
records the file feed carries, over length-prefixed sequence-numbered
frames (:mod:`repro.api.framing`)::

    # gateway process (owns the loop thread + all mutation)
    with ServerThread(service) as st:
        st.watch(RangeSpec(q, 60.0), query_id="kiosk")
        ...
        st.ingest(moves)

    # any other process / machine
    client = NetClient(host, port)
    client.connect()
    kiosk = client.watch(query_id="kiosk")   # ack + snapshot prime
    client.sync()                            # ping/pong drain barrier
    client.states[kiosk]                     # member -> annotation

The protocol's load-bearing records:

* **negotiation** — the client opens with a ``hello`` (or ``resume``)
  record; the server's ``hello`` reply carries a *resume token* and
  its *heartbeat cadence*.  Each ``watch_req`` (a
  ``SPEC_SCHEMA_VERSION``-tagged spec, an existing query id, or both)
  is acked by a ``watch`` record, then a priming ``snapshot``, then
  the live delta stream — the same fold rules as
  :func:`~repro.api.wire.replay_feed`.
* **heartbeats** — emitted whenever a connection has been silent for
  one cadence; a client hearing nothing for a few cadences should
  presume the server gone.  Connections holding no watches past the
  server's idle timeout are torn down with an ``error`` record.
* **reconnect tokens** — presenting the token on a fresh connection
  re-acks every watched query and re-primes each from a *current*
  snapshot, so a resumed client is bit-identical to an uninterrupted
  subscriber from that point on.  :class:`NetClient` does this
  automatically on dead connections (including duplicated/torn frames,
  surfaced via sequence numbers as
  :class:`~repro.errors.FramingError`); server ``error`` records are
  always surfaced as :class:`~repro.errors.NetError`, never retried.
* **backpressure** — each watch rides a bounded drop-oldest
  subscription with ``resync_on_drop``: a lossy connection's next
  record is a fresh full-result snapshot (loss means re-prime, never
  silent divergence).

Durability and recovery
-----------------------

:mod:`repro.persist` makes the whole engine crash-recoverable.  Two
complementary artifacts, one directory
(:class:`~repro.persist.store.CheckpointStore`):

* **checkpoints** — :meth:`QueryService.checkpoint` writes a
  versioned, schema-stamped, sha256-sealed snapshot (config, space
  topology, every object in insertion order, every standing query's
  spec *and exact maintainer state* in registration order, the auto-id
  counter) atomically — tmp + fsync + rename.
  :meth:`QueryService.restore` rebuilds the engine — single or
  sharded, overridable via ``config=`` — *provably bit-identical*: the
  same subsequent updates produce the same delta sequences, and auto
  query-id allocation continues where it left off.
* **write-ahead log** — with a WAL attached (the store does this at
  every checkpoint), each absorbed mutation (``watch``/``unwatch``/
  ``ingest``/``insert``/``delete``/``apply_event``) is appended and
  fsynced *before* its deltas are published, and the log rotates
  atomically with each snapshot capture.  Recovery
  (:meth:`CheckpointStore.recover <repro.persist.store.CheckpointStore.recover>`
  or the module-level :func:`repro.persist.store.recover`) replays the
  tail through the restored service's own verbs — torn final records
  tolerated, corrupt checkpoints falling back to the previous manifest
  entry — and reconverges exactly.

The network layer rides the same machinery: ``ServerThread(service,
store=..., checkpoint_every_s=...)`` cuts durable points periodically
(plus at boot, on :meth:`~repro.api.net.ServerThread.checkpoint_now`,
on clean close, and on SIGTERM with ``install_sigterm=True``), each
carrying the resume-session table.  After a crash,
:meth:`ServerThread.from_store <repro.api.net.ServerThread.from_store>`
restarts on the old port with every pre-crash resume token honoured: a
reconnecting :class:`NetClient` re-primes and ends bit-identical to a
client whose server never died::

    store = CheckpointStore("gateway-state/")
    with ServerThread(service, store=store, checkpoint_every_s=30.0):
        ...                                  # crash here, then:
    st = ServerThread.from_store(store, port=port).__enter__()
    st.recovery.wal_records                  # tail replayed

Submodules are imported lazily (``repro.api.specs`` must stay
importable from :mod:`repro.queries.monitor` without dragging the whole
service stack in).
"""

import importlib

# Public name -> defining submodule, resolved lazily via __getattr__.
_EXPORTS = {
    "QuerySpec": "repro.api.specs",
    "RangeSpec": "repro.api.specs",
    "KNNSpec": "repro.api.specs",
    "ProbRangeSpec": "repro.api.specs",
    "CountSpec": "repro.api.specs",
    "OccupancySpec": "repro.api.specs",
    "SPEC_SCHEMA_VERSION": "repro.api.specs",
    "spec_from_dict": "repro.api.specs",
    "QueryService": "repro.api.service",
    "ServiceConfig": "repro.api.service",
    "CheckpointStore": "repro.persist",
    "RecoveryReport": "repro.persist",
    "recover": "repro.persist",
    "WIRE_VERSION": "repro.api.wire",
    "WatchRecord": "repro.api.wire",
    "SnapshotRecord": "repro.api.wire",
    "DeltaFeedWriter": "repro.api.wire",
    "FeedReadStats": "repro.api.wire",
    "encode_record": "repro.api.wire",
    "decode_record": "repro.api.wire",
    "read_feed": "repro.api.wire",
    "replay_feed": "repro.api.wire",
    "NetServer": "repro.api.net",
    "NetClient": "repro.api.net",
    "AsyncNetClient": "repro.api.net",
    "ServerThread": "repro.api.net",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}"
        )
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
