"""`repro.api` — the unified public query surface.

One declarative vocabulary (:class:`RangeSpec`, :class:`KNNSpec`,
:class:`ProbRangeSpec`), one façade (:class:`QueryService`:
``run``/``watch``/``subscribe``/``ingest`` over one
:class:`~repro.index.composite.CompositeIndex` and one
:class:`~repro.queries.session.QuerySession`), and one versioned wire
protocol (:mod:`repro.api.wire`, JSON lines) so subscribers can live
out-of-process.  The legacy one-shot entry points remain, but every
standing registration funnels through ``register(spec)`` — one
pluggable :class:`~repro.queries.maintainers.StandingQuery` maintainer
per spec kind, iRQ/ikNNQ/iPRQ alike (the deprecated
``register_irq``/``register_iknn`` shims were removed).

Quickstart::

    from repro.api import KNNSpec, QueryService, RangeSpec, ServiceConfig

    service = QueryService(index, ServiceConfig(n_shards=4))
    nearby = service.run(RangeSpec(q, 60.0))       # one-shot
    kiosk = service.watch(RangeSpec(q, 60.0))      # standing
    feed = service.subscribe(KNNSpec(desk, 8))     # async delta push
    service.ingest(moves)                          # drive updates

Submodules are imported lazily (``repro.api.specs`` must stay
importable from :mod:`repro.queries.monitor` without dragging the whole
service stack in).
"""

import importlib

# Public name -> defining submodule, resolved lazily via __getattr__.
_EXPORTS = {
    "QuerySpec": "repro.api.specs",
    "RangeSpec": "repro.api.specs",
    "KNNSpec": "repro.api.specs",
    "ProbRangeSpec": "repro.api.specs",
    "SPEC_SCHEMA_VERSION": "repro.api.specs",
    "spec_from_dict": "repro.api.specs",
    "QueryService": "repro.api.service",
    "ServiceConfig": "repro.api.service",
    "WIRE_VERSION": "repro.api.wire",
    "WatchRecord": "repro.api.wire",
    "SnapshotRecord": "repro.api.wire",
    "DeltaFeedWriter": "repro.api.wire",
    "encode_record": "repro.api.wire",
    "decode_record": "repro.api.wire",
    "read_feed": "repro.api.wire",
    "replay_feed": "repro.api.wire",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module 'repro.api' has no attribute {name!r}"
        )
    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
