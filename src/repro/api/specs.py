"""Declarative query specifications — the value objects of `repro.api`.

A *spec* describes **what** to ask, independent of **how** it is
evaluated: :class:`RangeSpec` is the paper's iRQ (Definition 3),
:class:`KNNSpec` the ikNNQ (Definition 4) and :class:`ProbRangeSpec`
the probabilistic-threshold extension (:func:`repro.queries.iPRQ`).
Every evaluation surface — one-shot execution, standing registration on
a (sharded) monitor, async subscription — takes the same spec, so a new
capability is plumbed through exactly one registration path instead of
three near-duplicate ``register_irq``/``register_iknn`` trios.

Specs are frozen, validated at construction (same
:class:`~repro.errors.QueryError`\\ s the legacy entry points raised),
and **versioned**: :meth:`QuerySpec.to_dict` emits a plain dict stamped
with :data:`SPEC_SCHEMA_VERSION` and :func:`spec_from_dict` rebuilds the
spec from it, refusing unknown versions or kinds.  Numeric fields are
canonicalised (``r`` to float, ``k`` to int) so that encoding a decoded
dict is byte-identical under the canonical JSON encoding of
:mod:`repro.api.wire` — the round-trip property
``tests/api/test_wire.py`` enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, ClassVar

from repro.errors import QueryError
from repro.geometry.point import Point

#: Version stamped into every serialized spec.  Bump on any change to
#: the spec dict layout; ``spec_from_dict`` rejects versions it does
#: not know how to read (see the "API" section of ROADMAP.md).
SPEC_SCHEMA_VERSION = 1

#: kind string -> spec class, fed by ``_spec_kind`` below.
_SPEC_KINDS: dict[str, type["QuerySpec"]] = {}


def _spec_kind(cls: type["QuerySpec"]) -> type["QuerySpec"]:
    _SPEC_KINDS[cls.kind] = cls
    return cls


def _point_to_wire(q: Point) -> list[float]:
    """Canonical wire form of a query point: ``[x, y, floor]`` with the
    planar coordinates coerced to float (so re-encoding a decoded point
    is byte-identical even when the caller used ints)."""
    return [float(q.x), float(q.y), int(q.floor)]


def _point_from_wire(value: Any) -> Point:
    if not isinstance(value, (list, tuple)) or len(value) != 3:
        raise QueryError(f"malformed query point {value!r}")
    x, y, floor = value
    return Point(
        _as_float(x, "query point x"),
        _as_float(y, "query point y"),
        _as_int(floor, "query point floor"),
    )


def _as_float(value: Any, what: str) -> float:
    if isinstance(value, bool):  # bool is an int subclass: not a number
        raise QueryError(f"{what} must be a number, got {value!r}")
    try:
        return float(value)
    except (TypeError, ValueError):
        raise QueryError(f"{what} must be a number, got {value!r}") from None


def _as_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or (
        isinstance(value, float) and not value.is_integer()
    ):
        raise QueryError(f"{what} must be an integer, got {value!r}")
    try:
        return int(value)
    except (TypeError, ValueError):
        raise QueryError(f"{what} must be an integer, got {value!r}") from None


@dataclass(frozen=True)
class QuerySpec:
    """Base class of the declarative query specs.

    Subclasses set ``kind`` (the wire discriminator, doubling as the
    standing-query id prefix) and ``watchable`` (whether the continuous
    monitor has a registered maintainer for the kind — all three
    built-in kinds do, see :mod:`repro.queries.maintainers`).
    """

    kind: ClassVar[str] = ""
    watchable: ClassVar[bool] = False

    def to_dict(self) -> dict[str, Any]:
        """Versioned plain-dict form, ``spec_from_dict``'s inverse."""
        out: dict[str, Any] = {
            "v": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "q": _point_to_wire(self.q),  # type: ignore[attr-defined]
        }
        out.update(self._params())
        return out

    def _params(self) -> dict[str, Any]:  # pragma: no cover - abstract
        raise NotImplementedError

    @staticmethod
    def from_dict(data: Any) -> "QuerySpec":
        """Rebuild any spec kind from its versioned dict form."""
        return spec_from_dict(data)


@_spec_kind
@dataclass(frozen=True)
class RangeSpec(QuerySpec):
    """Indoor range query: objects within expected indoor distance
    ``r`` of ``q`` (Definition 3, Algorithm 1)."""

    q: Point
    r: float

    kind: ClassVar[str] = "irq"
    watchable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "r", _as_float(self.r, "query range"))
        if not self.r >= 0:
            raise QueryError(f"negative query range {self.r}")

    def _params(self) -> dict[str, Any]:
        return {"r": self.r}

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "RangeSpec":
        return cls(_point_from_wire(data.get("q")), data.get("r"))


@_spec_kind
@dataclass(frozen=True)
class KNNSpec(QuerySpec):
    """Indoor k-nearest-neighbour query: the ``k`` objects with the
    smallest expected indoor distances from ``q`` (Definition 4,
    Algorithm 2)."""

    q: Point
    k: int

    kind: ClassVar[str] = "iknn"
    watchable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "k", _as_int(self.k, "k"))
        if self.k < 1:
            raise QueryError(f"k must be >= 1, got {self.k}")

    def _params(self) -> dict[str, Any]:
        return {"k": self.k}

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "KNNSpec":
        return cls(_point_from_wire(data.get("q")), data.get("k"))


@_spec_kind
@dataclass(frozen=True)
class ProbRangeSpec(QuerySpec):
    """Probabilistic-threshold range query: objects whose probability
    of lying within indoor distance ``r`` of ``q`` is at least
    ``p_min`` (the iPRQ extension).  Watchable: the standing variant is
    maintained incrementally by
    :class:`~repro.queries.maintainers.ProbRangeMaintainer`."""

    q: Point
    r: float
    p_min: float

    kind: ClassVar[str] = "iprq"
    watchable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "r", _as_float(self.r, "query range"))
        object.__setattr__(
            self, "p_min", _as_float(self.p_min, "p_min")
        )
        if not self.r >= 0:
            raise QueryError(f"negative query range {self.r}")
        if not 0.0 < self.p_min <= 1.0:
            raise QueryError(f"p_min must be in (0, 1], got {self.p_min}")

    def _params(self) -> dict[str, Any]:
        return {"r": self.r, "p_min": self.p_min}

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "ProbRangeSpec":
        return cls(
            _point_from_wire(data.get("q")),
            data.get("r"),
            data.get("p_min"),
        )


@_spec_kind
@dataclass(frozen=True)
class CountSpec(QuerySpec):
    """Aggregate count watch: alert when the number of objects within
    expected indoor distance ``r`` of ``q`` reaches ``threshold``.

    Watch-only (``QueryService.run`` refuses it — a one-shot count is
    just ``len(run(RangeSpec(q, r)))``): the standing variant,
    maintained by :class:`~repro.queries.maintainers.CountMaintainer`,
    publishes a single synthetic ``"count"`` member annotated with the
    current count while the threshold is met, and an empty result while
    it is not — so delta subscribers see *entered* when occupancy
    crosses up, *distance_changed* re-annotations while it varies above
    the threshold, and *left* when it crosses back down."""

    q: Point
    r: float
    threshold: int

    kind: ClassVar[str] = "icount"
    watchable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "r", _as_float(self.r, "query range"))
        object.__setattr__(
            self, "threshold", _as_int(self.threshold, "threshold")
        )
        if not self.r >= 0:
            raise QueryError(f"negative query range {self.r}")
        if self.threshold < 1:
            raise QueryError(
                f"threshold must be >= 1, got {self.threshold}"
            )

    def _params(self) -> dict[str, Any]:
        return {"r": self.r, "threshold": self.threshold}

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "CountSpec":
        return cls(
            _point_from_wire(data.get("q")),
            data.get("r"),
            data.get("threshold"),
        )


@_spec_kind
@dataclass(frozen=True)
class OccupancySpec(QuerySpec):
    """Per-partition occupancy watch: alert while the number of objects
    located inside partition ``partition_id`` is at least ``threshold``.

    The only *anchored* spec kind: it names a partition instead of
    carrying a query point (the maintainer derives its spatial anchor —
    and hence shard routing and reach — from the partition's footprint
    at registration time).  Watch-only, like :class:`CountSpec`: the
    standing variant, maintained by
    :class:`~repro.queries.maintainers.OccupancyMaintainer`, publishes a
    single synthetic ``"occupancy"`` member annotated with the current
    population while the threshold is met — the natural evacuation /
    crowd-crush alarm (*entered* when a room fills past ``threshold``,
    re-annotations while it varies above, *left* when it drains back
    down)."""

    partition_id: str
    threshold: int

    kind: ClassVar[str] = "iocc"
    watchable: ClassVar[bool] = True

    def __post_init__(self) -> None:
        if (
            not isinstance(self.partition_id, str)
            or not self.partition_id
        ):
            raise QueryError(
                f"partition_id must be a non-empty string, got "
                f"{self.partition_id!r}"
            )
        object.__setattr__(
            self, "threshold", _as_int(self.threshold, "threshold")
        )
        if self.threshold < 1:
            raise QueryError(
                f"threshold must be >= 1, got {self.threshold}"
            )

    def to_dict(self) -> dict[str, Any]:
        """Anchored specs have no query point, so the base ``q`` field
        is replaced by the partition name."""
        return {
            "v": SPEC_SCHEMA_VERSION,
            "kind": self.kind,
            "partition": self.partition_id,
            "threshold": self.threshold,
        }

    def _params(self) -> dict[str, Any]:  # pragma: no cover - unused
        raise AssertionError("unreachable: to_dict is overridden")

    @classmethod
    def _from_dict(cls, data: dict[str, Any]) -> "OccupancySpec":
        return cls(data.get("partition"), data.get("threshold"))


def spec_from_dict(data: Any) -> QuerySpec:
    """Rebuild a spec from its :meth:`QuerySpec.to_dict` form.

    Raises :class:`~repro.errors.QueryError` on malformed input, an
    unsupported schema version, or an unknown kind — a clear failure
    beats silently guessing at a wire peer's newer schema.
    """
    if not isinstance(data, dict):
        raise QueryError(f"spec must be a dict, got {type(data).__name__}")
    version = data.get("v")
    if version != SPEC_SCHEMA_VERSION:
        raise QueryError(
            f"unsupported spec schema version {version!r} "
            f"(this build reads version {SPEC_SCHEMA_VERSION})"
        )
    kind = data.get("kind")
    cls = _SPEC_KINDS.get(kind)
    if cls is None:
        raise QueryError(f"unknown query spec kind {kind!r}")
    return cls._from_dict(data)  # type: ignore[attr-defined]


def standing_spec(spec: QuerySpec) -> QuerySpec:
    """Validate that ``spec`` can be registered as a standing query;
    the single gate every ``register(spec)`` path shares."""
    if not isinstance(spec, QuerySpec):
        raise QueryError(
            f"expected a QuerySpec, got {type(spec).__name__}"
        )
    if not spec.watchable:
        raise QueryError(
            f"{type(spec).__name__} ({spec.kind}) is one-shot only and "
            "cannot be registered as a standing query"
        )
    return spec  # type: ignore[return-value]
