"""Socket framing and control records for the network serving layer.

The JSONL wire protocol (:mod:`repro.api.wire`) was built for files: a
record per line, framing by newline.  A TCP stream needs more — reads
tear records at arbitrary byte boundaries, a dying peer leaves a torn
tail, and a faulty middlebox (or test harness) can duplicate or drop
chunks.  This module supplies the missing transport layer:

* **Frames** — every payload crosses the socket as::

      @<seq> <len>\\n<payload>\\n

  an ASCII header carrying a per-connection sequence number and the
  payload's byte length, then the payload, then one newline.  The
  length prefix makes framing independent of payload content
  (newline-safe); the trailing newline keeps captures greppable.  The
  sequence number is the loss/duplication detector: a
  :class:`FrameDecoder` insists on ``0, 1, 2, ...`` and raises
  :class:`~repro.errors.FramingError` on any violation, so a duplicated
  or dropped frame surfaces as a loud error (triggering the client's
  reconnect-with-re-prime) instead of a silently diverged result.

* **Control records** — the negotiation vocabulary of
  :mod:`repro.api.net`, encoded with the same canonical JSON rules as
  the data records so the byte-identity property (encode ∘ decode ==
  identity) holds across the whole stream: :class:`HelloRecord` (both
  directions; the server's reply carries the reconnect token and
  heartbeat cadence), :class:`WatchRequest` / :class:`ResumeRequest`
  (client -> server), :class:`HeartbeatRecord`, :class:`PingRecord` /
  :class:`PongRecord` (the drain barrier), :class:`ErrorRecord` and
  :class:`ByeRecord`.  :func:`encode_net_record` /
  :func:`decode_net_record` handle the union of control records and
  the wire data records (spec / watch / snapshot / delta / batch),
  delegating the latter to :mod:`repro.api.wire` unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Union

from repro.api import wire
from repro.api.specs import QuerySpec, spec_from_dict
from repro.errors import FramingError, WireError

#: Hard ceiling on one frame's payload size; a larger length prefix is
#: treated as stream corruption, not a request to buffer without bound.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Longest legal header (``@<seq> <len>\n``); headers are tiny, so a
#: missing newline inside this window means the stream is corrupt.
_MAX_HEADER_BYTES = 64


# ---------------------------------------------------------------------
# frames
# ---------------------------------------------------------------------


class FrameEncoder:
    """Stateful framer for one connection direction.

    Stamps consecutive sequence numbers starting at 0; the peer's
    :class:`FrameDecoder` verifies them.  A reconnect starts a fresh
    encoder/decoder pair (sequence numbers are per-connection).
    """

    def __init__(self) -> None:
        self.seq = 0

    def encode(self, payload: str) -> bytes:
        """Frame one payload: header, payload bytes, terminator."""
        data = payload.encode("utf-8")
        if len(data) > MAX_FRAME_BYTES:
            raise FramingError(
                f"frame payload of {len(data)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte ceiling"
            )
        frame = b"@%d %d\n%s\n" % (self.seq, len(data), data)
        self.seq += 1
        return frame


class FrameDecoder:
    """Incremental frame parser: feed raw socket bytes, get payloads.

    Tolerates arbitrary read boundaries (a frame may arrive one byte at
    a time or many frames per read).  Raises
    :class:`~repro.errors.FramingError` on a malformed header, an
    oversized length, a missing frame terminator, or a sequence-number
    violation — every one of which means the stream can no longer be
    trusted and the connection must be re-primed.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self.expected_seq = 0
        self.frames_decoded = 0

    @property
    def partial_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame — a
        nonzero value at EOF is a torn tail (the peer died mid-frame)."""
        return len(self._buf)

    def feed(self, data: bytes) -> list[str]:
        """Absorb ``data``; return every complete payload it finishes,
        in order (possibly none)."""
        self._buf.extend(data)
        out: list[str] = []
        while True:
            payload = self._next_frame()
            if payload is None:
                return out
            out.append(payload)

    def _next_frame(self) -> str | None:
        newline = self._buf.find(b"\n")
        if newline < 0:
            if len(self._buf) > _MAX_HEADER_BYTES:
                raise FramingError(
                    "no frame header terminator within "
                    f"{_MAX_HEADER_BYTES} bytes: corrupt stream"
                )
            return None
        header = bytes(self._buf[:newline])
        seq, length = self._parse_header(header)
        end = newline + 1 + length
        if len(self._buf) < end + 1:  # payload + trailing newline
            return None
        if self._buf[end] != ord("\n"):
            raise FramingError(
                f"frame {seq} is not newline-terminated: corrupt stream"
            )
        if seq != self.expected_seq:
            raise FramingError(
                f"frame sequence violation: expected {self.expected_seq}, "
                f"got {seq} (duplicated, dropped or reordered frame)"
            )
        payload = bytes(self._buf[newline + 1:end]).decode("utf-8")
        del self._buf[:end + 1]
        self.expected_seq += 1
        self.frames_decoded += 1
        return payload

    @staticmethod
    def _parse_header(header: bytes) -> tuple[int, int]:
        if not header.startswith(b"@"):
            raise FramingError(
                f"bad frame header {header[:32]!r}: corrupt stream"
            )
        parts = header[1:].split(b" ")
        if len(parts) != 2 or not all(p.isdigit() for p in parts):
            raise FramingError(
                f"bad frame header {header[:32]!r}: corrupt stream"
            )
        seq, length = int(parts[0]), int(parts[1])
        if length > MAX_FRAME_BYTES:
            raise FramingError(
                f"frame length {length} exceeds the "
                f"{MAX_FRAME_BYTES}-byte ceiling"
            )
        return seq, length


# ---------------------------------------------------------------------
# control records
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class HelloRecord:
    """Connection opener, both directions.

    The client sends ``token=None`` on a fresh connection; the server
    replies with the assigned reconnect token and its heartbeat cadence
    in seconds (the client should assume the server is gone after a few
    silent cadences)."""

    token: str | None = None
    heartbeat_s: float | None = None


@dataclass(frozen=True)
class WatchRequest:
    """Client -> server: start streaming one standing query.

    With ``query_id`` naming an already-standing query, the server
    subscribes this connection to it (``spec``, when also given, must
    match the registered one).  Otherwise ``spec`` is registered as a
    new standing query (optionally under ``query_id``).  The server
    acks with a ``watch`` record carrying the final id and spec, then a
    ``snapshot`` record, then the live delta stream."""

    spec: QuerySpec | None = None
    query_id: str | None = None


@dataclass(frozen=True)
class ResumeRequest:
    """Client -> server, first record of a reconnect: re-adopt the
    session behind ``token``.  The server re-acks every query the token
    watched (``watch`` record, then a *current* ``snapshot`` — the
    re-prime that makes the resumed stream bit-identical to an
    uninterrupted one) and resumes live streaming."""

    token: str


@dataclass(frozen=True)
class HeartbeatRecord:
    """Periodic liveness signal (per-connection counter)."""

    seq: int


@dataclass(frozen=True)
class PingRecord:
    """Client -> server drain barrier: the server replies with the
    matching :class:`PongRecord` only after every delta published
    before the ping was processed has been written to this
    connection."""

    nonce: int


@dataclass(frozen=True)
class PongRecord:
    """Server -> client: the :class:`PingRecord` barrier completed."""

    nonce: int


@dataclass(frozen=True)
class ErrorRecord:
    """Server -> client, fatal: the connection is about to close and
    the client must surface ``message`` (never retry silently)."""

    message: str


@dataclass(frozen=True)
class ByeRecord:
    """Clean shutdown notice (either direction): end of stream, no
    error, resume not required."""


#: Everything :func:`encode_net_record` accepts — the control records
#: above plus the file-wire data records.
NetRecord = Union[
    HelloRecord,
    WatchRequest,
    ResumeRequest,
    HeartbeatRecord,
    PingRecord,
    PongRecord,
    ErrorRecord,
    ByeRecord,
    QuerySpec,
    "wire.WatchRecord",
    "wire.SnapshotRecord",
    "wire.ResultDelta",
    "wire.DeltaBatch",
]


#: Record types owned by this layer (everything else delegates to
#: :mod:`repro.api.wire`).
_CONTROL_TYPES = frozenset(
    ("hello", "watch_req", "resume", "heartbeat", "ping", "pong",
     "error", "bye")
)


def _control_payload(record: NetRecord) -> dict[str, Any] | None:
    if isinstance(record, HelloRecord):
        body: dict[str, Any] = {"type": "hello", "token": record.token}
        if record.heartbeat_s is not None:
            body["heartbeat_s"] = float(record.heartbeat_s)
        return body
    if isinstance(record, WatchRequest):
        body = {"type": "watch_req", "query_id": record.query_id}
        if record.spec is not None:
            body["spec"] = record.spec.to_dict()
        return body
    if isinstance(record, ResumeRequest):
        return {"type": "resume", "token": str(record.token)}
    if isinstance(record, HeartbeatRecord):
        return {"type": "heartbeat", "seq": int(record.seq)}
    if isinstance(record, PingRecord):
        return {"type": "ping", "nonce": int(record.nonce)}
    if isinstance(record, PongRecord):
        return {"type": "pong", "nonce": int(record.nonce)}
    if isinstance(record, ErrorRecord):
        return {"type": "error", "message": str(record.message)}
    if isinstance(record, ByeRecord):
        return {"type": "bye"}
    return None


def encode_net_record(record: NetRecord) -> str:
    """One canonical JSON line for any net-layer record: control
    records here, data records via :func:`repro.api.wire.encode_record`
    (same envelope version, same canonical encoding)."""
    body = _control_payload(record)
    if body is None:
        return wire.encode_record(record)
    body["v"] = wire.WIRE_VERSION
    return wire._dumps(body)


def decode_net_record(line: str) -> NetRecord:
    """Parse one net-layer line back into its typed record."""
    try:
        data = json.loads(line)
    except json.JSONDecodeError as exc:
        raise WireError(f"malformed wire line: {exc}") from None
    if not isinstance(data, dict):
        raise WireError(f"wire record must be an object, got {data!r}")
    rtype = data.get("type")
    if rtype in _CONTROL_TYPES:
        version = data.get("v")
        if version not in wire._READABLE_VERSIONS:
            raise WireError(
                f"unsupported wire version {version!r} (this build "
                f"reads versions {wire._READABLE_VERSIONS})"
            )
    try:
        if rtype == "hello":
            token = data["token"]
            hb = data.get("heartbeat_s")
            return HelloRecord(
                None if token is None else str(token),
                None if hb is None else float(hb),
            )
        if rtype == "watch_req":
            spec = data.get("spec")
            qid = data["query_id"]
            return WatchRequest(
                None if spec is None else spec_from_dict(spec),
                None if qid is None else str(qid),
            )
        if rtype == "resume":
            return ResumeRequest(str(data["token"]))
        if rtype == "heartbeat":
            return HeartbeatRecord(int(data["seq"]))
        if rtype == "ping":
            return PingRecord(int(data["nonce"]))
        if rtype == "pong":
            return PongRecord(int(data["nonce"]))
        if rtype == "error":
            return ErrorRecord(str(data["message"]))
        if rtype == "bye":
            return ByeRecord()
    except KeyError as exc:
        raise WireError(
            f"{rtype} record missing field {exc}"
        ) from None
    return wire.decode_record(line)
