"""The :class:`QueryService` façade: one object, four verbs.

Before this layer, the paper's three query classes were reachable
through five divergent entry-point styles — the free functions
:func:`~repro.queries.iRQ` / :func:`~repro.queries.ikNNQ` /
:func:`~repro.queries.iPRQ` plus near-duplicate registration trios on
:class:`~repro.queries.monitor.QueryMonitor`,
:class:`~repro.queries.shard.ShardedMonitor` and
:class:`~repro.queries.serving.MonitorServer`.  The façade collapses
them:

* :meth:`QueryService.run` — one-shot evaluation of any spec, with the
  subgraph phase served from the service's shared
  :class:`~repro.queries.session.QuerySession`;
* :meth:`QueryService.watch` — standing registration of any watchable
  spec (iRQ, ikNNQ and the probabilistic-threshold iPRQ alike — one
  :class:`~repro.queries.maintainers.StandingQuery` maintainer per
  kind), incrementally maintained over :meth:`ingest` streams;
* :meth:`QueryService.subscribe` — an async
  :class:`~repro.queries.serving.Subscription` pushing every result
  delta, snapshot-primed;
* :meth:`QueryService.ingest` (and ``insert``/``delete``/
  ``apply_event``) — the single-writer mutation path; every emitted
  delta fans out to subscribers *and* to any attached JSONL wire feed
  (:meth:`attach_feed`), which is how subscribers live out-of-process.

A :class:`ServiceConfig` picks the execution engine — single
:class:`~repro.queries.monitor.QueryMonitor` versus
:class:`~repro.queries.shard.ShardedMonitor` (shard count, worker
pool, bucketed router) — without changing a caller's code, and every
standing-query id is claimed through one
:func:`~repro.queries.monitor.claim_query_id` guard so duplicates fail
loudly no matter which surface claimed first.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Awaitable, Callable

from repro.api.specs import (
    CountSpec,
    KNNSpec,
    OccupancySpec,
    ProbRangeSpec,
    QuerySpec,
    RangeSpec,
    spec_from_dict,
    standing_spec,
)
from repro.api.wire import DeltaFeedWriter
from repro.errors import PersistError, QueryError
from repro.index.composite import CompositeIndex
from repro.objects.generator import MovementStream
from repro.objects.population import ObjectMove, ObjectPopulation
from repro.objects.uncertain import UncertainObject
from repro.persist.checkpoint import (
    CheckpointState,
    read_checkpoint,
    write_checkpoint,
)
from repro.persist.codec import object_from_dict, object_to_dict
from repro.persist.wal import (
    WalDelete,
    WalEvent,
    WalInsert,
    WalMoves,
    WalRecord,
    WalUnwatch,
    WalWatch,
    WalWriter,
)
from repro.queries.deltas import DeltaBatch, ResultDelta
from repro.queries.engine import QueryResult
from repro.queries.monitor import (
    MonitorStats,
    QueryMonitor,
    claim_query_id,
)
from repro.queries.prob_range import iPRQ
from repro.queries.serving import (
    MonitorServer,
    ServeReport,
    Subscription,
)
from repro.queries.session import QuerySession
from repro.queries.shard import ShardedMonitor, ShardStats
from repro.queries.stats import QueryStats
from repro.space.events import EventResult, TopologyEvent
from repro.space.io import space_from_dict, space_to_dict

#: Sentinel: "caller did not pass maxlen" (None is a meaningful value —
#: an explicitly unbounded queue overriding the config default).
_UNSET = object()


class _IdCounter:
    """The service's auto query-id counter, with its position exposed.

    ``itertools.count`` cannot be observed or repositioned, but the
    durability layer needs both: a checkpoint records where allocation
    stands (``next_auto_id``) and WAL replay moves the restored counter
    to where each live registration left it — otherwise a recovered
    service would mint different ids for the next auto-named watch
    than the uninterrupted one (the counter is shared across kinds).
    """

    def __init__(self, start: int = 1) -> None:
        self.value = start

    def __next__(self) -> int:
        value = self.value
        self.value = value + 1
        return value

    def __iter__(self) -> "_IdCounter":
        return self


@dataclass(frozen=True)
class ServiceConfig:
    """Execution knobs of a :class:`QueryService`.

    ``n_shards=1`` (default) runs a single
    :class:`~repro.queries.monitor.QueryMonitor`; ``n_shards>1`` a
    :class:`~repro.queries.shard.ShardedMonitor`, with ``workers``
    selecting its parallel ingest width and ``bucketed_router`` the
    tightened per-floor reach tables.  ``backend`` picks the sharded
    execution engine: ``"thread"`` (default, in-process monitors on a
    thread pool) or ``"process"`` (shard monitors in worker processes
    behind :mod:`repro.queries.procpool` — ``backend="process"``
    forces a sharded monitor even at ``n_shards=1``).  ``kernel``
    picks the distance-bounds evaluation path for standing-query
    maintenance: ``"scalar"`` (default, per-pair Python math) or
    ``"vector"`` (the batched numpy kernel in
    :mod:`repro.distances.batch` — bit-identical results, see the
    ``kernel_*`` counters on
    :class:`~repro.queries.monitor.MonitorStats`).  ``maxlen`` is
    the default subscription queue bound (``None`` = unbounded; see
    :class:`~repro.queries.serving.Subscription` for the drop-oldest
    policy and the ``dropped`` counter).
    """

    n_shards: int = 1
    workers: int = 1
    bucketed_router: bool = True
    backend: str = "thread"
    kernel: str = "scalar"
    maxlen: int | None = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise QueryError(
                f"n_shards must be >= 1, got {self.n_shards}"
            )
        if self.workers < 1:
            raise QueryError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in ("thread", "process"):
            raise QueryError(
                "backend must be 'thread' or 'process', "
                f"got {self.backend!r}"
            )
        if self.kernel not in ("scalar", "vector"):
            raise QueryError(
                f"kernel must be 'scalar' or 'vector', got {self.kernel!r}"
            )
        if self.maxlen is not None and self.maxlen < 1:
            raise QueryError(f"maxlen must be >= 1, got {self.maxlen}")


class QueryService:
    """One façade over index, session, monitor and serving layers.

    Usage::

        service = QueryService(index, ServiceConfig(n_shards=4))
        nearby = service.run(RangeSpec(q, 60.0))        # one-shot
        kiosk = service.watch(RangeSpec(q, 60.0))       # standing
        feed = service.subscribe(KNNSpec(desk, 8))      # push
        service.ingest(stream.next_moves(100))          # update

    ``run``/``watch``/``subscribe`` results are bit-identical to the
    legacy entry points they wrap (``tests/api/test_service.py``
    asserts it); the façade adds no semantics, only a single surface.
    """

    def __init__(
        self,
        index: CompositeIndex,
        config: ServiceConfig | None = None,
        session: QuerySession | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.index = index
        self.session = session or QuerySession(index)
        if self.config.n_shards > 1 or self.config.backend == "process":
            self.monitor: QueryMonitor | ShardedMonitor = ShardedMonitor(
                index,
                n_shards=self.config.n_shards,
                session=self.session,
                workers=self.config.workers,
                bucketed_router=self.config.bucketed_router,
                backend=self.config.backend,
                kernel=self.config.kernel,
            )
        else:
            self.monitor = QueryMonitor(
                index,
                session=self.session,
                kernel=self.config.kernel,
            )
        self.server = MonitorServer(self.monitor)
        self.server.on_publish = self._feed_batch
        self.server.on_drop = self._feed_resync_snapshot
        self.server.on_mutation = self._log_mutation
        self._feeds: list[DeltaFeedWriter] = []
        self._id_counter = _IdCounter()
        self._wal: WalWriter | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """End every subscription and shut a sharded monitor's worker
        pool down (idempotent).  Attached feeds are not closed — their
        files belong to the caller."""
        self._closed = True
        self.server.close()
        if isinstance(self.monitor, ShardedMonitor):
            self.monitor.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # one-shot evaluation
    # ------------------------------------------------------------------

    def run(
        self, spec: QuerySpec, stats: QueryStats | None = None
    ) -> QueryResult:
        """Evaluate ``spec`` once, immediately, against the current
        population.  iRQ/ikNNQ serve their subgraph phase from the
        shared session cache (one Dijkstra per query point, reused by
        standing queries at the same spot); iPRQ runs the full
        four-phase pipeline."""
        if isinstance(spec, RangeSpec):
            return self.session.irq(spec.q, spec.r, stats=stats)
        if isinstance(spec, KNNSpec):
            return self.session.iknnq(spec.q, spec.k, stats=stats)
        if isinstance(spec, ProbRangeSpec):
            return iPRQ(spec.q, spec.r, spec.p_min, self.index, stats=stats)
        if isinstance(spec, CountSpec):
            raise QueryError(
                "CountSpec is watch-only: a one-shot count is "
                "len(run(RangeSpec(q, r)).objects); watch() it to get "
                "threshold-crossing alerts"
            )
        if isinstance(spec, OccupancySpec):
            raise QueryError(
                "OccupancySpec is watch-only: watch() it to get "
                "partition-occupancy threshold alerts"
            )
        raise QueryError(
            f"cannot run {type(spec).__name__}: not a known query spec"
        )

    # ------------------------------------------------------------------
    # standing queries
    # ------------------------------------------------------------------

    def claim_query_id(
        self, query_id: str | None, spec: QuerySpec
    ) -> str:
        """Allocate (or validate) a standing-query id.  Every id this
        service hands out flows through here — one guard, one counter —
        so a duplicate raises a clear
        :class:`~repro.errors.QueryError` instead of colliding
        silently across shards or surfaces."""
        return claim_query_id(
            self.monitor, query_id, standing_spec(spec).kind,
            self._id_counter,
        )

    def watch(self, spec: QuerySpec, query_id: str | None = None) -> str:
        """Register ``spec`` as a standing query; returns its id.

        The initial result is emitted as a ``register`` delta to
        subscribers and attached feeds (feeds also get the ``watch``
        header record, so a replay knows the query's spec)."""
        if self._closed:
            raise QueryError("service is closed")
        query_id = self.claim_query_id(query_id, spec)
        self.monitor.register(spec, query_id=query_id)
        self._log(WalWatch(query_id, spec, self._id_counter.value))
        for feed in self._feeds:
            feed.watch(query_id, spec)
        self.server.publish(self.monitor.drain_pending_deltas())
        return query_id

    def unwatch(self, query_id: str) -> None:
        """Deregister a standing query: its deregister delta (every
        member leaves) reaches subscribers and feeds, and all its
        subscriptions end."""
        members = self.monitor.result_distances(query_id)
        self.server.deregister(query_id)
        self._log(WalUnwatch(query_id))
        if not members:
            # An empty result deregisters without a delta (nothing
            # changed for in-process subscribers), but a wire feed
            # still needs the closure record — replay_feed must drop
            # the query, exactly as the live monitor did.
            self._feed_batch(
                DeltaBatch(
                    deltas=(ResultDelta(query_id, "deregister"),)
                )
            )

    def subscribe(
        self,
        spec_or_id: QuerySpec | str,
        snapshot: bool = True,
        maxlen: int | None = _UNSET,  # type: ignore[assignment]
        resync_on_drop: bool = False,
    ) -> Subscription:
        """A live delta feed for one standing query.

        Pass a spec to register-and-subscribe in one step (the
        subscription's ``query_id`` carries the new id), or an existing
        id to add another consumer.  ``maxlen`` defaults to the
        service config's bound; ``resync_on_drop`` makes a bounded feed
        self-healing (a full-result snapshot delta is queued after any
        lossy publish — see
        :meth:`~repro.queries.serving.MonitorServer.subscribe`)."""
        if isinstance(spec_or_id, QuerySpec):
            query_id = self.watch(spec_or_id)
        else:
            query_id = spec_or_id
        if maxlen is _UNSET:
            maxlen = self.config.maxlen
        return self.server.subscribe(
            query_id,
            snapshot=snapshot,
            maxlen=maxlen,
            resync_on_drop=resync_on_drop,
        )

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach a subscription from the delta fan-out."""
        self.server.unsubscribe(sub)

    # ------------------------------------------------------------------
    # mutation (single writer)
    # ------------------------------------------------------------------

    def ingest(self, moves: list[ObjectMove]) -> DeltaBatch:
        """Absorb a batch of position updates: index mutation, standing
        result maintenance, delta fan-out to subscribers and feeds."""
        return self._publish(
            lambda: self.monitor.apply_moves(moves),
            log=lambda: WalMoves(tuple(moves)),
        )

    def insert(self, obj: UncertainObject) -> DeltaBatch:
        """A brand-new object appears."""
        return self._publish(
            lambda: self.monitor.apply_insert(obj),
            log=lambda: WalInsert(obj),
        )

    def delete(self, object_id: str) -> DeltaBatch:
        """An object disappears."""
        return self._publish(
            lambda: self.monitor.apply_delete(object_id),
            log=lambda: WalDelete(object_id),
        )

    def apply_event(self, event: TopologyEvent) -> EventResult:
        """Apply a topology event (door closure, split, merge); every
        standing query resynchronises and the resync deltas fan out.
        Returns the space-level outcome."""
        batch = self._publish(
            lambda: self.monitor.apply_event(event),
            log=lambda: WalEvent(event),
        )
        return batch.event_result

    def _publish(
        self,
        op: Callable[[], DeltaBatch],
        log: Callable[[], WalRecord] | None = None,
    ) -> DeltaBatch:
        if self._closed:
            raise QueryError("service is closed")
        # The server's writer lock serialises this sync mutation against
        # any in-flight offloaded batch of a concurrently running
        # serve() — monitor and index state stay single-writer.  (The
        # publish itself is only loop-safe when no event loop is
        # draining subscribers at this instant; interleave sync
        # mutations with an active serve() from `on_batch`, not from a
        # foreign thread.)
        with self.server._op_lock:
            batch = op()
            # WAL after the mutation succeeded (a raising op logs
            # nothing) and before the fan-out: in the crash window
            # between log and publish, recovery replays a mutation no
            # client ever saw — reconnecting clients re-prime from the
            # recovered snapshot, so both sides agree either way.
            if log is not None:
                self._log(log())
            self.server.publish(batch)
        return batch

    def _log(self, record: WalRecord) -> None:
        if self._wal is not None:
            self._wal.write(record)

    def _log_mutation(self, kind: str, payload: Any) -> None:
        """WAL tap for mutations driven through the monitor server's
        async ``apply_*`` verbs (``serve`` loops, the network layer) —
        the synchronous verbs above log directly and never reach this
        hook, so nothing is recorded twice."""
        if self._wal is None:
            return
        if kind == "moves":
            self._log(WalMoves(tuple(payload)))
        elif kind == "insert":
            self._log(WalInsert(payload))
        elif kind == "delete":
            self._log(WalDelete(payload))
        elif kind == "event":
            self._log(WalEvent(payload))

    async def serve(
        self,
        stream: MovementStream,
        n_batches: int,
        batch_size: int,
        on_batch: Callable[[int, DeltaBatch], Awaitable[None] | None]
        | None = None,
    ) -> ServeReport:
        """Drive ``n_batches`` of ``batch_size`` moves from ``stream``
        through the monitor inside the running event loop (see
        :meth:`~repro.queries.serving.MonitorServer.serve`); the report
        includes the run's published *and* dropped delta totals."""
        return await self.server.serve(
            stream, n_batches, batch_size, on_batch=on_batch
        )

    # ------------------------------------------------------------------
    # wire feeds (out-of-process subscribers)
    # ------------------------------------------------------------------

    def attach_feed(self, fp: IO[str]) -> DeltaFeedWriter:
        """Mirror this service's published deltas onto ``fp`` as JSON
        lines (:mod:`repro.api.wire`).

        The feed opens with a header — one ``watch`` record plus one
        ``snapshot`` record per currently-standing query — then carries
        every subsequently published non-empty batch, so a consumer
        that replays the whole file (:func:`repro.api.wire.replay_feed`)
        reconstructs each standing query's live result exactly.
        """
        writer = DeltaFeedWriter(fp)
        for query_id in self.query_ids():
            writer.watch(query_id, self.query_spec(query_id))
            writer.snapshot(query_id, self.result_distances(query_id))
        self._feeds.append(writer)
        return writer

    def detach_feed(self, writer: DeltaFeedWriter) -> None:
        """Stop publishing batches to ``writer`` (no-op if detached)."""
        if writer in self._feeds:
            self._feeds.remove(writer)

    def _feed_batch(self, batch: DeltaBatch) -> None:
        for feed in self._feeds:
            feed.batch(batch)

    def _feed_resync_snapshot(self, query_id: str) -> None:
        """Feed resumption after loss: when a bounded subscription shed
        deltas during a publish, write the query's *current* result as
        a mid-stream ``snapshot`` record into every attached feed.
        ``replay_feed`` re-primes wholesale at a snapshot, so a feed
        consumer that resumes from (or across) the loss point — a
        rotated file, a tail that joined late — reconstructs the live
        result exactly even on lossy runs."""
        if not self._feeds:
            return
        if query_id not in self.monitor:
            # Dropped during its own deregister publish: the feed
            # already carries the closing deregister delta.
            return
        members = self.monitor.result_distances(query_id)
        for feed in self._feeds:
            feed.snapshot(query_id, members)

    # ------------------------------------------------------------------
    # durability (checkpoint / restore / WAL)
    # ------------------------------------------------------------------

    def attach_wal(self, writer: WalWriter) -> None:
        """Append every subsequent input mutation (watch/unwatch,
        moves, insert, delete, topology event) to ``writer`` — the
        replayable half of the durability story.  Records are written
        after the mutation succeeds and before its deltas fan out, so
        a failed mutation logs nothing and recovery never replays an
        op the engine rejected.  Normally called by
        :class:`~repro.persist.store.CheckpointStore`, which also
        rotates the writer at every checkpoint boundary."""
        self._wal = writer

    def detach_wal(self) -> WalWriter | None:
        """Stop logging; returns the writer that was attached (its
        stream still belongs to whoever opened it)."""
        writer, self._wal = self._wal, None
        return writer

    def checkpoint(
        self,
        path: str | Path,
        extra: dict[str, Any] | None = None,
        rotate_wal_to: IO[str] | None = None,
    ) -> int:
        """Write a digest-sealed snapshot of the whole service to
        ``path`` atomically; returns bytes written.

        The capture runs under the single-writer lock, so it is a
        consistent cut even against a concurrently running ``serve``.
        When ``rotate_wal_to`` is given (an open text stream), the
        attached WAL rotates onto it *inside the same lock* — no
        mutation can slip between the snapshot and the segment
        boundary, which is what lets recovery replay exactly the
        post-checkpoint tail.  ``extra`` is an opaque payload carried
        through the round trip (the net layer keeps its resume-session
        table there)."""
        with self.server._op_lock:
            state = self._capture(extra)
            old_stream: IO[str] | None = None
            if rotate_wal_to is not None:
                if self._wal is None:
                    self._wal = WalWriter(rotate_wal_to)
                else:
                    old_stream = self._wal.rotate(rotate_wal_to)
        if old_stream is not None:
            try:
                old_stream.close()
            except OSError:  # pragma: no cover - best effort
                pass
        return write_checkpoint(path, state)

    def _capture(self, extra: dict[str, Any] | None) -> CheckpointState:
        """Everything a bit-identical rebuild needs (caller holds the
        writer lock): config (plus the index build shape), space and
        its topology version, objects in population insertion order,
        query specs + maintainer snapshots in registration order, reach
        epoch(s), and the auto-id counter."""
        monitor = self.monitor
        if isinstance(monitor, ShardedMonitor):
            reach_epoch: int | list[int] = [
                shard.reach_epoch for shard in monitor.shards
            ]
        else:
            reach_epoch = monitor.reach_epoch
        space = self.index.space
        config = dict(asdict(self.config))
        config["index"] = {
            "fanout": self.index.indr.fanout,
            "t_shape": self.index.indr.t_shape,
        }
        return CheckpointState(
            config=config,
            space=space_to_dict(space),
            topology_version=space.topology_version,
            reach_epoch=reach_epoch,
            next_auto_id=self._id_counter.value,
            objects=[
                object_to_dict(obj) for obj in self.index.objects()
            ],
            queries=[
                {
                    "query_id": query_id,
                    "spec": spec.to_dict(),
                    "state": state,
                }
                for query_id, spec, state in monitor.snapshot_queries()
            ],
            extra=dict(extra or {}),
        )

    @classmethod
    def restore(
        cls,
        path: str | Path,
        config: "ServiceConfig | None" = None,
    ) -> "QueryService":
        """Rebuild a service from a checkpoint file (digest verified —
        a torn or corrupt file raises
        :class:`~repro.errors.PersistError` rather than restoring
        silently-wrong state).  ``config`` overrides the checkpointed
        engine shape — e.g. restart a single-engine checkpoint
        sharded; results stay identical either way."""
        return cls.from_state(read_checkpoint(path), config=config)

    @classmethod
    def from_state(
        cls,
        state: CheckpointState,
        config: "ServiceConfig | None" = None,
    ) -> "QueryService":
        """Rebuild from an already-read :class:`CheckpointState`.

        The index is rebuilt from scratch over the restored space and
        population — its tree *structure* may differ from the crashed
        process's incrementally-mutated one, but every distance and
        probability bound the maintainers consume is tree-independent,
        so restored results (and all subsequent deltas) are
        bit-identical.  Maintainer states are reinstated exactly from
        their snapshots, never recomputed: a fresh recompute could
        legitimately differ in unobservable internals (bound markers,
        incremental kNN bookkeeping) and leak phantom deltas on the
        next update."""
        space = space_from_dict(state.space)
        space.topology_version = int(state.topology_version)
        cfg = dict(state.config)
        index_shape = cfg.pop("index", {})
        population = ObjectPopulation(space)
        for payload in state.objects:
            population.insert(object_from_dict(payload))
        index = CompositeIndex.build(
            space,
            population,
            fanout=int(index_shape.get("fanout", 20)),
            t_shape=float(index_shape.get("t_shape", 0.5)),
        )
        if config is None:
            try:
                config = ServiceConfig(**cfg)
            except (TypeError, QueryError) as exc:
                raise PersistError(
                    f"checkpoint carries an unusable config: {exc}"
                ) from None
        service = cls(index, config)
        for payload in state.queries:
            try:
                query_id = str(payload["query_id"])
                spec = spec_from_dict(payload["spec"])
                query_state = payload["state"]
            except (KeyError, TypeError, QueryError) as exc:
                raise PersistError(
                    f"checkpoint carries an unusable query record: {exc}"
                ) from None
            service.monitor.restore_query(spec, query_id, query_state)
        # Reach epochs transfer only when the engine shape matches the
        # checkpointed one (a config override may change it); they are
        # cache-invalidation counters, so starting over merely costs
        # one rebuild of each shard's reach table, never correctness.
        epochs = state.reach_epoch
        monitor = service.monitor
        if isinstance(monitor, ShardedMonitor):
            if isinstance(epochs, list) and len(epochs) == len(
                monitor.shards
            ):
                for shard, epoch in zip(monitor.shards, epochs):
                    shard.reach_epoch = int(epoch)
        elif isinstance(epochs, int):
            monitor.reach_epoch = epochs
        service._id_counter.value = int(state.next_auto_id)
        return service

    # ------------------------------------------------------------------
    # result / introspection surface
    # ------------------------------------------------------------------

    def result_ids(self, query_id: str) -> set[str]:
        """One standing query's current member ids."""
        return self.monitor.result_ids(query_id)

    def result_distances(self, query_id: str) -> dict[str, float | None]:
        """One standing query's members with stored annotations."""
        return self.monitor.result_distances(query_id)

    def results(self) -> dict[str, set[str]]:
        """Every standing query's current member-id set."""
        return self.monitor.results()

    def query_ids(self) -> list[str]:
        """Standing query ids, in registration order."""
        return self.monitor.query_ids()

    def query_spec(self, query_id: str) -> QuerySpec:
        """The spec a standing query was registered with."""
        return self.monitor.query_spec(query_id)

    def __len__(self) -> int:
        return len(self.monitor)

    def __contains__(self, query_id: str) -> bool:
        return query_id in self.monitor

    @property
    def stats(self) -> MonitorStats:
        """The engine's aggregate maintenance counters."""
        return self.monitor.stats

    @property
    def routing(self) -> ShardStats | None:
        """Shard-router accounting (``None`` under a single monitor)."""
        return getattr(self.monitor, "routing", None)

    @property
    def deltas_published(self) -> int:
        """Total deltas fanned out to subscribers and feeds."""
        return self.server.deltas_published

    @property
    def deltas_dropped(self) -> int:
        """Total deltas shed by bounded subscriptions."""
        return self.server.deltas_dropped

    def drain_pending_deltas(self) -> DeltaBatch:
        """Flush deltas parked by out-of-band work through the publish
        path (subscribers and feeds see them); returns the batch."""
        batch = self.monitor.drain_pending_deltas()
        self.server.publish(batch)
        return batch

    def subscriptions(self, query_id: str) -> list[Subscription]:
        """The live subscriptions for one standing query (server
        internals surfaced read-only for tests/dashboards)."""
        return list(self.server._subs.get(query_id, ()))
