"""The door-to-door pre-computation baseline ([16], [24] style).

Prior work assumes all pairwise door distances ``|d_i -> d_j|_I`` are
computed before query time.  That makes query evaluation simple, but a
single topology change (a mounted sliding wall, a closed door)
invalidates a large share of the matrix and forces recomputation — the
paper measures over half an hour at 2 000 partitions (Figure 15(d))
against sub-millisecond composite-index updates.  This class reproduces
the comparison: :meth:`build` performs the full |D| single-source
searches and reports the wall-clock cost, and :meth:`rebuild` is what a
topology change costs.
"""

from __future__ import annotations

import math
import time

from repro.distances.expected import expected_indoor_distance
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.objects.population import ObjectPopulation
from repro.objects.uncertain import UncertainObject
from repro.space.doors_graph import DoorDistances, DoorsGraph
from repro.space.floorplan import IndoorSpace
from repro.space.grid import PartitionGrid


class PrecomputedDistanceIndex:
    """All-pairs door-to-door shortest distances, plus query evaluation
    on top of them."""

    def __init__(
        self,
        space: IndoorSpace,
        population: ObjectPopulation | None = None,
    ) -> None:
        self.space = space
        self.population = population or ObjectPopulation(space)
        self.graph = DoorsGraph.from_space(space)
        self.grid = self.population.grid or PartitionGrid.build(space)
        self.d2d: dict[str, dict[str, float]] = {}
        self.build_seconds = 0.0
        self.build()

    # ------------------------------------------------------------------

    def build(self) -> float:
        """Run |D| single-source Dijkstras; returns the wall-clock cost."""
        t0 = time.perf_counter()
        self.graph.ensure_fresh()
        self.d2d = {
            door_id: self.graph.dijkstra_between_doors(door_id)
            for door_id in self.space.doors
        }
        self.build_seconds = time.perf_counter() - t0
        return self.build_seconds

    def rebuild(self) -> float:
        """What one topology change costs this design (Figure 15(d))."""
        return self.build()

    def door_distance(self, d_from: str, d_to: str) -> float:
        """``|d_from ~> d_to|_I`` from the matrix."""
        try:
            return self.d2d[d_from].get(d_to, math.inf)
        except KeyError:
            raise QueryError(f"unknown door {d_from!r}") from None

    # ------------------------------------------------------------------
    # query evaluation on the precomputed matrix
    # ------------------------------------------------------------------

    def door_distances_from(self, q: Point) -> DoorDistances:
        """Per-door distances from a query point, assembled from the
        matrix instead of a fresh graph search."""
        located = self.space.locate(q)
        if located is None:
            raise QueryError(f"query point {q} outside every partition")
        source = located.partition_id
        fh = self.space.floor_height
        dist: dict[str, float] = {}
        for dq in self.space.exit_doors(source):
            leg = q.distance(dq.midpoint, fh)
            row = self.d2d.get(dq.door_id, {})
            for ds, through in row.items():
                total = leg + through
                if total < dist.get(ds, math.inf):
                    dist[ds] = total
        predecessor = {door_id: None for door_id in dist}
        return DoorDistances(q, source, dist, predecessor)

    def exact_distance(self, q: Point, obj: UncertainObject) -> float:
        dd = self.door_distances_from(q)
        return expected_indoor_distance(
            q, obj, dd, self.space, self.grid
        ).value

    def range_query(self, q: Point, r: float) -> set[str]:
        if r < 0:
            raise QueryError(f"negative query range {r}")
        dd = self.door_distances_from(q)
        out = set()
        for obj in self.population:
            d = expected_indoor_distance(
                q, obj, dd, self.space, self.grid
            ).value
            if d <= r:
                out.add(obj.object_id)
        return out

    def knn_query(self, q: Point, k: int) -> list[tuple[str, float]]:
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        dd = self.door_distances_from(q)
        ranked = sorted(
            (
                expected_indoor_distance(
                    q, obj, dd, self.space, self.grid
                ).value,
                obj.object_id,
            )
            for obj in self.population
        )
        return [
            (oid, d) for d, oid in ranked[:k] if math.isfinite(d)
        ]
