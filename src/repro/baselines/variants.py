"""Named ablation variants of the query processors.

Thin wrappers over the ``with_pruning`` / ``use_skeleton`` switches of
:func:`repro.queries.iRQ` and :func:`repro.queries.ikNNQ`, so the
benchmark tables read like the paper's legends ("withoutPruning",
"withoutSkeleton").
"""

from __future__ import annotations

from repro.geometry.point import Point
from repro.index.composite import CompositeIndex
from repro.queries.engine import QueryResult
from repro.queries.knn import ikNNQ
from repro.queries.range_query import iRQ
from repro.queries.stats import QueryStats


def irq_without_pruning(
    q: Point, r: float, index: CompositeIndex, stats: QueryStats | None = None
) -> QueryResult:
    """Figure 14(b): iRQ with phase 3 disabled — every filtered
    candidate is refined exactly."""
    return iRQ(q, r, index, with_pruning=False, stats=stats)


def irq_euclidean_filter(
    q: Point, r: float, index: CompositeIndex, stats: QueryStats | None = None
) -> QueryResult:
    """Figure 15(a): iRQ filtering by plain Euclidean MINDIST instead of
    the skeleton distance."""
    return iRQ(q, r, index, use_skeleton=False, stats=stats)


def iknnq_without_pruning(
    q: Point, k: int, index: CompositeIndex, stats: QueryStats | None = None
) -> QueryResult:
    """Figure 14(d): ikNNQ with phase 3 disabled."""
    return ikNNQ(q, k, index, with_pruning=False, stats=stats)


def iknnq_euclidean_filter(
    q: Point, k: int, index: CompositeIndex, stats: QueryStats | None = None
) -> QueryResult:
    """ikNNQ counterpart of the Euclidean-only filter ablation."""
    return ikNNQ(q, k, index, use_skeleton=False, stats=stats)
