"""Exhaustive query evaluation without index or bounds.

For every object the exact expected indoor distance is computed from an
unrestricted single-source Dijkstra.  Quadratic in practice — exactly
what the paper's stack avoids — but simple enough to trust, which makes
it the oracle for result-set equality tests.
"""

from __future__ import annotations

import math

from repro.distances.expected import (
    expected_indoor_distance,
    instance_indoor_distances,
)
from repro.errors import QueryError
from repro.geometry.point import Point
from repro.objects.population import ObjectPopulation
from repro.objects.uncertain import UncertainObject
from repro.space.doors_graph import DoorsGraph
from repro.space.floorplan import IndoorSpace
from repro.space.grid import PartitionGrid


class NaiveEvaluator:
    """Index-free exact evaluation over a population."""

    def __init__(
        self, space: IndoorSpace, population: ObjectPopulation
    ) -> None:
        self.space = space
        self.population = population
        self.graph = DoorsGraph.from_space(space)
        self.grid = population.grid or PartitionGrid.build(space)

    # ------------------------------------------------------------------

    def exact_distance(self, q: Point, obj: UncertainObject) -> float:
        """``|q, O|_I`` via one full Dijkstra (no pruning anywhere)."""
        self.graph.ensure_fresh()
        dd = self.graph.dijkstra_from_point(q)
        return expected_indoor_distance(
            q, obj, dd, self.space, self.grid
        ).value

    def all_distances(self, q: Point) -> dict[str, float]:
        """Exact expected distances of every object from ``q``."""
        self.graph.ensure_fresh()
        dd = self.graph.dijkstra_from_point(q)
        return {
            obj.object_id: expected_indoor_distance(
                q, obj, dd, self.space, self.grid
            ).value
            for obj in self.population
        }

    # ------------------------------------------------------------------

    def range_query(self, q: Point, r: float) -> set[str]:
        """Oracle iRQ: ids of objects with ``|q, O|_I <= r``."""
        if r < 0:
            raise QueryError(f"negative query range {r}")
        return {
            oid for oid, d in self.all_distances(q).items() if d <= r
        }

    def knn_query(self, q: Point, k: int) -> list[tuple[str, float]]:
        """Oracle ikNNQ: the ``k`` (id, distance) pairs with smallest
        expected distances (ties broken by id; unreachable excluded)."""
        if k < 1:
            raise QueryError(f"k must be >= 1, got {k}")
        ranked = sorted(
            (
                (d, oid)
                for oid, d in self.all_distances(q).items()
                if math.isfinite(d)
            ),
        )
        return [(oid, d) for d, oid in ranked[:k]]

    def kth_distance(self, q: Point, k: int) -> float:
        """The k-th smallest expected distance (for tie-aware checks)."""
        ranked = self.knn_query(q, k)
        if len(ranked) < k:
            return math.inf
        return ranked[-1][1]

    # ------------------------------------------------------------------

    def qualifying_probability(
        self, q: Point, obj: UncertainObject, r: float
    ) -> float:
        """Exact ``Pr(|q, s|_I <= r)`` for one object: the total mass
        of instances whose indoor distance is within ``r``, from one
        full Dijkstra (no bounds, no pruning)."""
        self.graph.ensure_fresh()
        dd = self.graph.dijkstra_from_point(q)
        total = 0.0
        for subregion in obj.subregions(self.space, self.grid):
            dists = instance_indoor_distances(q, subregion, dd, self.space)
            total += float(subregion.instances.probs[dists <= r].sum())
        return total

    def prob_range_query(
        self, q: Point, r: float, p_min: float
    ) -> set[str]:
        """Oracle iPRQ: ids of objects with qualifying probability at
        least ``p_min``."""
        if r < 0:
            raise QueryError(f"negative query range {r}")
        if not 0.0 < p_min <= 1.0:
            raise QueryError(f"p_min must be in (0, 1], got {p_min}")
        return {
            obj.object_id
            for obj in self.population
            if self.qualifying_probability(q, obj, r) >= p_min
        }
