"""Baselines and ablation variants.

* :class:`NaiveEvaluator` — index-free exhaustive evaluation; the
  correctness oracle for the query processors.
* :class:`PrecomputedDistanceIndex` — the door-to-door pre-computation
  alternative of prior work ([16], [24]), whose maintenance cost under
  topology changes is the comparison of Figure 15(d).
* :mod:`repro.baselines.variants` — named ablation entry points
  (no-pruning, no-skeleton) used by the Figure 14/15 benchmarks.
"""

from repro.baselines.naive import NaiveEvaluator
from repro.baselines.precompute import PrecomputedDistanceIndex
from repro.baselines.variants import (
    iknnq_euclidean_filter,
    iknnq_without_pruning,
    irq_euclidean_filter,
    irq_without_pruning,
)

__all__ = [
    "NaiveEvaluator",
    "PrecomputedDistanceIndex",
    "irq_without_pruning",
    "irq_euclidean_filter",
    "iknnq_without_pruning",
    "iknnq_euclidean_filter",
]
