"""Unit tests for repro.objects.population."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry import Circle, Point
from repro.objects import InstanceSet, ObjectGenerator, ObjectPopulation, UncertainObject


def make_obj(oid, x, y, floor=0):
    return UncertainObject(
        oid,
        Circle(Point(x, y, floor), 1.0),
        InstanceSet.uniform(np.array([[x, y]]), floor),
    )


class TestBasicOps:
    def test_insert_get_contains(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        pop.insert(make_obj("a", 5, 5))
        assert "a" in pop and len(pop) == 1
        assert pop.get("a").object_id == "a"

    def test_duplicate_insert_rejected(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        pop.insert(make_obj("a", 5, 5))
        with pytest.raises(ReproError):
            pop.insert(make_obj("a", 6, 6))

    def test_delete(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        pop.insert(make_obj("a", 5, 5))
        gone = pop.delete("a")
        assert gone.object_id == "a" and len(pop) == 0
        with pytest.raises(ReproError):
            pop.delete("a")

    def test_get_unknown_raises(self, five_rooms):
        with pytest.raises(ReproError):
            ObjectPopulation(five_rooms).get("zzz")

    def test_iteration(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        for i in range(3):
            pop.insert(make_obj(f"o{i}", 5 + i, 5))
        assert sorted(o.object_id for o in pop) == ["o0", "o1", "o2"]


class TestMove:
    def test_move_replaces_location(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        pop.insert(make_obj("a", 5, 5))
        new_region = Circle(Point(15, 5, 0), 1.0)
        new_instances = InstanceSet.uniform(np.array([[15.0, 5.0]]), 0)
        moved = pop.move("a", new_region, new_instances)
        assert moved.region.center == Point(15, 5, 0)
        assert len(pop) == 1
        assert pop.get("a").region.center.x == 15

    def test_move_unknown_raises(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        with pytest.raises(ReproError):
            pop.move("nope", Circle(Point(0, 0, 0), 1.0),
                     InstanceSet.uniform(np.array([[0.0, 0.0]]), 0))


class TestQueriesOverPopulation:
    def test_on_floor(self, two_floor_space):
        pop = ObjectPopulation(two_floor_space)
        pop.insert(make_obj("g", 5, 5, floor=0))
        pop.insert(make_obj("u", 5, 5, floor=1))
        assert [o.object_id for o in pop.on_floor(0)] == ["g"]
        assert [o.object_id for o in pop.on_floor(1)] == ["u"]

    def test_nearest_center(self, five_rooms):
        pop = ObjectPopulation(five_rooms)
        pop.insert(make_obj("near", 14, 11))
        pop.insert(make_obj("far", 2, 2))
        assert pop.nearest_center(Point(15, 12, 0)).object_id == "near"

    def test_nearest_center_empty_raises(self, five_rooms):
        with pytest.raises(ReproError):
            ObjectPopulation(five_rooms).nearest_center(Point(0, 0, 0))

    def test_generator_integration(self, small_mall):
        pop = ObjectGenerator(small_mall, radius=2.0, n_instances=5, seed=1).generate(10)
        assert len(pop) == 10
        floors = {o.floor for o in pop}
        assert floors <= {0, 1}
