"""Unit tests for repro.objects.instances."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry import Point
from repro.objects import InstanceSet

FH = 4.0


def square_set():
    xy = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
    return InstanceSet.uniform(xy, floor=0)


class TestConstruction:
    def test_uniform_probs(self):
        s = square_set()
        assert len(s) == 4
        assert s.probs.tolist() == [0.25] * 4
        assert s.mass == pytest.approx(1.0)

    def test_single(self):
        s = InstanceSet.single(Point(3, 4, 2))
        assert len(s) == 1 and s.floor == 2
        assert s.xy.tolist() == [[3, 4]]

    def test_bad_shapes_rejected(self):
        with pytest.raises(ReproError):
            InstanceSet(np.zeros((3, 3)), 0, np.full(3, 1 / 3))
        with pytest.raises(ReproError):
            InstanceSet(np.zeros((3, 2)), 0, np.full(4, 0.25))

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            InstanceSet(np.zeros((0, 2)), 0, np.zeros(0))

    def test_negative_probs_rejected(self):
        with pytest.raises(ReproError):
            InstanceSet(np.zeros((2, 2)), 0, np.array([1.5, -0.5]))

    def test_mass_above_one_rejected(self):
        with pytest.raises(ReproError):
            InstanceSet(np.zeros((2, 2)), 0, np.array([0.9, 0.9]))

    def test_partial_mass_allowed_for_subregions(self):
        s = InstanceSet(np.zeros((2, 2)), 0, np.array([0.1, 0.2]))
        assert s.mass == pytest.approx(0.3)


class TestSubset:
    def test_subset_keeps_raw_probs(self):
        s = square_set()
        sub = s.subset(np.array([True, False, True, False]))
        assert len(sub) == 2
        assert sub.mass == pytest.approx(0.5)

    def test_subset_by_indices(self):
        s = square_set()
        sub = s.subset(np.array([0, 3]))
        assert sub.xy.tolist() == [[0, 0], [1, 1]]


class TestMeasures:
    def test_bounds(self):
        assert square_set().bounds().corners()[0] == (0.0, 0.0)
        assert square_set().bounds().maxx == 1.0

    def test_mean(self):
        m = square_set().mean()
        assert (m.x, m.y, m.floor) == (0.5, 0.5, 0)

    def test_weighted_mean(self):
        s = InstanceSet(
            np.array([[0.0, 0.0], [10.0, 0.0]]), 0, np.array([0.9, 0.1])
        )
        assert s.mean().x == pytest.approx(1.0)


class TestDistances:
    def test_distances_same_floor(self):
        s = square_set()
        d = s.distances_to(Point(0, 0, 0), FH)
        assert d.tolist() == pytest.approx(
            [0.0, 1.0, 1.0, np.sqrt(2)], abs=1e-12
        )

    def test_distances_cross_floor(self):
        s = square_set()
        d = s.distances_to(Point(0, 0, 1), FH)
        assert d[0] == pytest.approx(FH)
        assert d[1] == pytest.approx(np.hypot(1, FH))

    def test_min_max(self):
        s = square_set()
        q = Point(2, 0, 0)
        assert s.min_distance_to(q, FH) == pytest.approx(1.0)
        assert s.max_distance_to(q, FH) == pytest.approx(np.hypot(2, 1))

    def test_expected_distance(self):
        s = InstanceSet(
            np.array([[0.0, 0.0], [4.0, 0.0]]), 0, np.array([0.25, 0.75])
        )
        q = Point(0, 0, 0)
        assert s.expected_distance_to(q, FH) == pytest.approx(3.0)

    def test_min_le_expected_le_max(self):
        rng = np.random.default_rng(0)
        xy = rng.uniform(0, 50, size=(100, 2))
        s = InstanceSet.uniform(xy, 0)
        q = Point(-3, 17, 0)
        lo = s.min_distance_to(q, FH)
        mid = s.expected_distance_to(q, FH)
        hi = s.max_distance_to(q, FH)
        assert lo <= mid <= hi
