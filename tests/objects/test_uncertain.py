"""Unit tests for repro.objects.uncertain (subregion resolution)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry import Circle, Point
from repro.objects import InstanceSet, UncertainObject
from repro.space.grid import PartitionGrid


def obj_at(points, center, radius=5.0, floor=0, oid="o1"):
    xy = np.array(points, dtype=float)
    return UncertainObject(
        oid,
        Circle(Point(*center, floor), radius),
        InstanceSet.uniform(xy, floor),
    )


class TestConstruction:
    def test_floor_mismatch_rejected(self):
        with pytest.raises(ReproError):
            UncertainObject(
                "o1",
                Circle(Point(0, 0, 1), 5.0),
                InstanceSet.uniform(np.zeros((2, 2)), 0),
            )

    def test_identity(self):
        a = obj_at([[0, 0]], (0, 0))
        b = obj_at([[9, 9]], (9, 9))
        b.object_id = "o1"
        assert a == b and hash(a) == hash(b)

    def test_len_is_instance_count(self):
        assert len(obj_at([[0, 0], [1, 1], [2, 2]], (1, 1))) == 3

    def test_bounds_from_instances(self):
        o = obj_at([[1, 1], [3, 4]], (2, 2))
        b = o.bounds()
        assert (b.minx, b.miny, b.maxx, b.maxy) == (1, 1, 3, 4)


class TestSubregions:
    def test_single_partition(self, five_rooms):
        o = obj_at([[2, 2], [3, 3], [4, 4]], (3, 3))
        subs = o.subregions(five_rooms)
        assert len(subs) == 1
        assert subs[0].partition_id == "r1"
        assert subs[0].mass == pytest.approx(1.0)

    def test_straddling_two_rooms(self, five_rooms):
        # r1 is x in [0, 10], r2 is x in [10, 20]: instances across.
        o = obj_at([[8, 5], [9, 5], [12, 5], [13, 5]], (10, 5))
        subs = o.subregions(five_rooms)
        by_pid = {s.partition_id: s for s in subs}
        assert set(by_pid) == {"r1", "r2"}
        assert by_pid["r1"].mass == pytest.approx(0.5)
        assert by_pid["r2"].mass == pytest.approx(0.5)

    def test_three_partitions(self, five_rooms):
        o = obj_at([[5, 9], [5, 12], [5, 15]], (5, 12), radius=6.0)
        subs = o.subregions(five_rooms)
        assert {s.partition_id for s in subs} == {"r1", "h", "r4"}

    def test_total_mass_preserved(self, five_rooms):
        o = obj_at([[8, 5], [12, 5], [15, 12]], (11, 7), radius=8.0)
        subs = o.subregions(five_rooms)
        assert sum(s.mass for s in subs) == pytest.approx(1.0)

    def test_wall_instance_reattached(self, five_rooms):
        # (15, 30) lies outside every partition; mass must not vanish.
        o = obj_at([[5, 5], [15, 30]], (5, 5), radius=30.0)
        subs = o.subregions(five_rooms)
        assert sum(s.mass for s in subs) == pytest.approx(1.0)
        assert {s.partition_id for s in subs} == {"r1"}

    def test_object_outside_everything_raises(self, five_rooms):
        o = obj_at([[500, 500]], (500, 500))
        with pytest.raises(ReproError):
            o.subregions(five_rooms)

    def test_caching_and_invalidation(self, five_rooms):
        o = obj_at([[5, 5]], (5, 5))
        first = o.subregions(five_rooms)
        assert o.subregions(five_rooms) is first
        o.invalidate_subregions()
        again = o.subregions(five_rooms)
        assert again is not first
        assert again[0].partition_id == first[0].partition_id

    def test_cache_expires_on_topology_change(self, five_rooms):
        o = obj_at([[5, 5]], (5, 5))
        first = o.subregions(five_rooms)
        five_rooms.topology_version += 1
        assert o.subregions(five_rooms) is not first

    def test_grid_path_matches_scan_path(self, five_rooms):
        o1 = obj_at([[8, 5], [12, 5], [15, 12]], (11, 7), radius=8.0)
        o2 = obj_at([[8, 5], [12, 5], [15, 12]], (11, 7), radius=8.0, oid="o2")
        grid = PartitionGrid.build(five_rooms)
        a = {s.partition_id: s.mass for s in o1.subregions(five_rooms)}
        b = {s.partition_id: s.mass for s in o2.subregions(five_rooms, grid)}
        assert a == b

    def test_overlapped_partitions(self, five_rooms):
        o = obj_at([[8, 5], [12, 5]], (10, 5))
        assert set(o.overlapped_partitions(five_rooms)) == {"r1", "r2"}
