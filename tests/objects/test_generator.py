"""Unit tests for the object generator (paper Section V-A parameters)."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry import Point
from repro.objects import ObjectGenerator


class TestGeneration:
    def test_population_size(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=3.0, n_instances=20, seed=1)
        pop = gen.generate(25)
        assert len(pop) == 25

    def test_instance_count_and_mass(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=3.0, n_instances=50, seed=2)
        obj = gen.generate_one()
        assert len(obj) == 50
        assert obj.instances.mass == pytest.approx(1.0)

    def test_instances_inside_region(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=4.0, n_instances=100, seed=3)
        for _ in range(10):
            obj = gen.generate_one()
            d = np.hypot(
                obj.instances.xy[:, 0] - obj.region.center.x,
                obj.instances.xy[:, 1] - obj.region.center.y,
            )
            assert (d <= obj.region.radius + 1e-9).all()

    def test_instances_inside_partitions(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=4.0, n_instances=60, seed=4)
        for _ in range(5):
            obj = gen.generate_one()
            subs = obj.subregions(small_mall, gen.grid)
            assert sum(s.mass for s in subs) == pytest.approx(1.0)

    def test_gaussian_spread_matches_sigma(self, small_mall):
        # sigma = diameter/6; with many instances the sample std should be
        # in that ballpark (truncation shrinks it slightly).
        gen = ObjectGenerator(small_mall, radius=6.0, n_instances=400, seed=5)
        # place at a room center so walls don't clip the distribution
        part = small_mall.partition("f0_room_0L1")
        cx, cy = part.bounds.center
        obj = gen.generate_one(center=Point(cx, cy, 0))
        sigma = obj.region.diameter / 6.0
        sx = obj.instances.xy[:, 0].std()
        assert 0.5 * sigma <= sx <= 1.3 * sigma

    def test_zero_radius_object(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=0.0, n_instances=10, seed=6)
        obj = gen.generate_one()
        assert np.allclose(obj.instances.xy, obj.instances.xy[0])

    def test_determinism(self, small_mall):
        a = ObjectGenerator(small_mall, radius=3.0, n_instances=10, seed=7).generate(5)
        b = ObjectGenerator(small_mall, radius=3.0, n_instances=10, seed=7).generate(5)
        for oid in a.ids():
            assert np.allclose(a.get(oid).instances.xy, b.get(oid).instances.xy)

    def test_ids_unique_and_sequential(self, small_mall):
        gen = ObjectGenerator(small_mall, seed=8, n_instances=5)
        pop = gen.generate(3)
        assert pop.ids() == ["o1", "o2", "o3"]

    def test_explicit_center(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=2.0, n_instances=10, seed=9)
        center = small_mall.random_point(seed=11)
        obj = gen.generate_one(center=center)
        assert obj.region.center == center


class TestValidation:
    def test_bad_radius(self, small_mall):
        with pytest.raises(ReproError):
            ObjectGenerator(small_mall, radius=-1.0)

    def test_bad_instances(self, small_mall):
        with pytest.raises(ReproError):
            ObjectGenerator(small_mall, n_instances=0)
