"""Unit tests for the composite index (build, RangeSearch, dynamic ops)."""

import numpy as np
import pytest

from repro.geometry import Circle, Point, Rect
from repro.index import CompositeIndex
from repro.objects import InstanceSet, ObjectGenerator, UncertainObject
from repro.space import DoorsGraph, Partition, SplitPartition, MergePartitions


def point_obj(oid, x, y, floor=0):
    return UncertainObject(
        oid,
        Circle(Point(x, y, floor), 1.0),
        InstanceSet.uniform(np.array([[x, y]]), floor),
    )


@pytest.fixture
def mall_index(small_mall):
    gen = ObjectGenerator(small_mall, radius=3.0, n_instances=20, seed=11)
    pop = gen.generate(60)
    return CompositeIndex.build(small_mall, pop)


class TestBuild:
    def test_layers_built(self, mall_index):
        assert len(mall_index.indr) > 0
        assert mall_index.skeleton.num_entrances == 8
        assert len(mall_index.otable) == 60
        assert mall_index.validate() == []

    def test_build_times_recorded(self, mall_index):
        assert set(mall_index.build_times) == {
            "tree_tier", "topological_layer", "skeleton_tier", "object_layer",
        }
        assert all(t >= 0 for t in mall_index.build_times.values())

    def test_empty_population(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        assert len(idx.otable) == 0
        assert idx.validate() == []


class TestPointLocation:
    def test_locate(self, mall_index, small_mall):
        p = small_mall.random_point(seed=5)
        part = mall_index.locate(p)
        assert part is not None and part.contains_point(p)

    def test_locate_outside(self, mall_index):
        assert mall_index.locate(Point(-100, -100, 0)) is None


class TestRangeSearch:
    def test_no_false_negatives(self, mall_index, small_mall):
        """Every object within true indoor distance r must be returned
        (Lemma 6 guarantee)."""
        graph = DoorsGraph.from_space(small_mall)
        q = small_mall.random_point(seed=21)
        r = 40.0
        result = mall_index.range_search(q, r)
        got = {o.object_id for o in result.objects}
        for obj in mall_index.population:
            # Min indoor distance to any instance lower-bounds the
            # expected distance; check candidates cover everything whose
            # *skeleton* min distance is within r.
            d = mall_index.min_skeleton_distance_to_object(q, obj)
            if d <= r:
                assert obj.object_id in got

    def test_r_zero_degenerates_to_point_location(self, mall_index, small_mall):
        q = small_mall.random_point(seed=22)
        result = mall_index.range_search(q, 0.0)
        pid = mall_index.locate(q).partition_id
        assert pid in result.partitions

    def test_without_skeleton_retrieves_more(self, small_mall):
        gen = ObjectGenerator(small_mall, radius=3.0, n_instances=10, seed=12)
        idx = CompositeIndex.build(small_mall, gen.generate(40))
        q = small_mall.random_point(seed=23)
        r = 50.0
        with_sk = idx.range_search(q, r, use_skeleton=True)
        without_sk = idx.range_search(q, r, use_skeleton=False)
        assert len(without_sk.partitions) >= len(with_sk.partitions)
        assert {o.object_id for o in with_sk.objects} <= {
            o.object_id for o in without_sk.objects
        }

    def test_big_radius_returns_everything(self, mall_index):
        q = mall_index.space.random_point(seed=24)
        result = mall_index.range_search(q, 1e6)
        assert len(result.objects) == 60


class TestObjectOps:
    def test_insert_object(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))
        assert "a" in idx.otable
        units = idx.otable.units_of("a")
        assert all(idx.htable.partition_of(u) == "r1" for u in units)

    def test_delete_object(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))
        idx.delete_object("a")
        assert "a" not in idx.otable
        assert len(idx.population) == 0

    def test_move_object_adjacent(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))  # r1
        # Move into the hallway (adjacent to r1): fast path applies.
        idx.move_object(
            "a",
            Circle(Point(15, 12, 0), 1.0),
            InstanceSet.uniform(np.array([[15.0, 12.0]]), 0),
        )
        units = idx.otable.units_of("a")
        assert {idx.htable.partition_of(u) for u in units} == {"h"}

    def test_move_object_teleport_falls_back(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))  # r1
        # Jump to r5, which is not adjacent to r1: tree fallback.
        idx.move_object(
            "a",
            Circle(Point(25, 20, 0), 1.0),
            InstanceSet.uniform(np.array([[25.0, 20.0]]), 0),
        )
        units = idx.otable.units_of("a")
        assert {idx.htable.partition_of(u) for u in units} == {"r5"}

    def test_update_objects_dedupes_duplicate_moves(self, five_rooms):
        """A batch carrying several moves for one object applies
        last-write-wins and diffs the object exactly once."""
        from repro.objects import ObjectMove

        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))  # r1
        moves = [
            ObjectMove(
                "a",
                Circle(Point(15, 12, 0), 1.0),
                InstanceSet.uniform(np.array([[15.0, 12.0]]), 0),
            ),
            ObjectMove(  # last write: back into r1
                "a",
                Circle(Point(6, 5, 0), 1.0),
                InstanceSet.uniform(np.array([[6.0, 5.0]]), 0),
            ),
        ]
        moved = idx.update_objects(moves)
        assert [obj.object_id for obj in moved] == ["a"]
        assert idx.population.get("a").region.center == Point(6.0, 5.0, 0)
        units = idx.otable.units_of("a")
        assert {idx.htable.partition_of(u) for u in units} == {"r1"}
        assert not idx.validate()

    def test_straddling_object_in_multiple_buckets(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        obj = UncertainObject(
            "wide",
            Circle(Point(10, 5, 0), 4.0),
            InstanceSet.uniform(np.array([[8.0, 5.0], [12.0, 5.0]]), 0),
        )
        idx.insert_object(obj)
        pids = {
            idx.htable.partition_of(u) for u in idx.otable.units_of("wide")
        }
        assert {"r1", "r2"} <= pids


class TestTopologyOps:
    def test_insert_partition(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        new = Partition("annex", Rect(30, 0, 40, 10), 0)
        five_rooms.add_partition(new)
        idx.insert_partition(new)
        assert idx.locate(Point(35, 5, 0)).partition_id == "annex"
        assert idx.validate() == []

    def test_delete_partition_reresolves_objects(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        obj = UncertainObject(
            "wide",
            Circle(Point(10, 5, 0), 4.0),
            InstanceSet.uniform(np.array([[8.0, 5.0], [12.0, 5.0]]), 0),
        )
        idx.insert_object(obj)
        affected = idx.delete_partition("r2")
        assert affected == ["wide"]
        pids = {
            idx.htable.partition_of(u) for u in idx.otable.units_of("wide")
        }
        assert pids == {"r1"}

    def test_apply_split_event(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))  # in r1
        idx.apply_event(SplitPartition("r1", axis="x", coord=5.0))
        assert idx.locate(Point(2, 5, 0)).partition_id == "r1_a"
        assert idx.locate(Point(8, 5, 0)).partition_id == "r1_b"
        # The object sat at x=5: it must live in exactly the units of the
        # half containing it.
        pids = {idx.htable.partition_of(u) for u in idx.otable.units_of("a")}
        assert pids <= {"r1_a", "r1_b"}
        assert idx.validate() == []

    def test_apply_merge_event(self, five_rooms):
        idx = CompositeIndex.build(five_rooms)
        idx.insert_object(point_obj("a", 5, 5))
        idx.apply_event(SplitPartition("r1", axis="x", coord=5.0))
        idx.apply_event(MergePartitions(("r1_a", "r1_b"), "r1"))
        assert idx.locate(Point(2, 5, 0)).partition_id == "r1"
        pids = {idx.htable.partition_of(u) for u in idx.otable.units_of("a")}
        assert pids == {"r1"}
        assert idx.validate() == []

    def test_staircase_delete_refreshes_skeleton(self, two_floor_space):
        idx = CompositeIndex.build(two_floor_space)
        assert idx.skeleton.num_entrances == 2
        two_floor_space.remove_partition("stair")
        idx.delete_partition("stair")
        assert idx.skeleton.num_entrances == 0
