"""Unit tests for the R*-tree (insert/delete/search + invariants)."""

import random

import pytest

from repro.errors import IndexError_
from repro.geometry import Box3
from repro.index import RStarTree


def box_at(x, y, z=0.0, size=1.0):
    return Box3(x, y, z, x + size, y + size, z + 0.01)


def random_boxes(n, seed=0, extent=100.0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, extent), rng.uniform(0, extent)
        z = rng.choice([0.0, 4.0, 8.0])
        out.append((i, box_at(x, y, z, size=rng.uniform(0.5, 5.0))))
    return out


def brute_force_hits(items, probe):
    return sorted(i for i, b in items if b.intersects(probe))


class TestBasics:
    def test_tiny_fanout_rejected(self):
        with pytest.raises(IndexError_):
            RStarTree(fanout=2)

    def test_empty_tree(self):
        t = RStarTree()
        assert len(t) == 0
        assert t.items_in_box(box_at(0, 0)) == []
        assert t.height == 1

    def test_insert_and_find(self):
        t = RStarTree(fanout=4)
        t.insert("a", box_at(0, 0))
        t.insert("b", box_at(10, 10))
        assert len(t) == 2
        assert t.items_in_box(box_at(-0.5, -0.5)) == ["a"]

    def test_iteration_yields_all(self):
        t = RStarTree(fanout=4)
        for i, b in random_boxes(50):
            t.insert(i, b)
        assert sorted(t) == list(range(50))


class TestSearchCorrectness:
    @pytest.mark.parametrize("n,fanout", [(30, 4), (200, 8), (500, 20)])
    def test_matches_brute_force(self, n, fanout):
        items = random_boxes(n, seed=n)
        t = RStarTree(fanout=fanout)
        for i, b in items:
            t.insert(i, b)
        rng = random.Random(99)
        for _ in range(25):
            probe = box_at(
                rng.uniform(-5, 100), rng.uniform(-5, 100),
                rng.choice([0.0, 4.0]), size=rng.uniform(1, 20),
            )
            assert sorted(t.items_in_box(probe)) == brute_force_hits(items, probe)

    def test_traverse_with_true_predicate_visits_everything(self):
        items = random_boxes(100, seed=5)
        t = RStarTree(fanout=8)
        for i, b in items:
            t.insert(i, b)
        got = sorted(e.item for e in t.traverse(lambda node: True))
        assert got == list(range(100))

    def test_traverse_prunes(self):
        items = random_boxes(100, seed=6)
        t = RStarTree(fanout=8)
        for i, b in items:
            t.insert(i, b)
        got = list(t.traverse(lambda node: False))
        assert got == []


class TestInvariants:
    @pytest.mark.parametrize("n", [10, 100, 400])
    def test_invariants_after_inserts(self, n):
        t = RStarTree(fanout=8)
        for i, b in random_boxes(n, seed=n + 1):
            t.insert(i, b)
        assert t.validate() == []

    def test_invariants_after_mixed_workload(self):
        items = random_boxes(300, seed=3)
        t = RStarTree(fanout=8)
        alive = {}
        rng = random.Random(17)
        for i, b in items:
            t.insert(i, b)
            alive[i] = b
            if rng.random() < 0.3 and alive:
                victim = rng.choice(sorted(alive))
                assert t.delete(victim, alive.pop(victim))
        assert t.validate() == []
        assert sorted(t) == sorted(alive)

    def test_height_grows(self):
        t = RStarTree(fanout=4)
        for i, b in random_boxes(100, seed=8):
            t.insert(i, b)
        assert t.height >= 3


class TestDeletion:
    def test_delete_missing_returns_false(self):
        t = RStarTree(fanout=4)
        t.insert("a", box_at(0, 0))
        assert not t.delete("zzz", box_at(0, 0))
        assert len(t) == 1

    def test_delete_all(self):
        items = random_boxes(150, seed=4)
        t = RStarTree(fanout=8)
        for i, b in items:
            t.insert(i, b)
        for i, b in items:
            assert t.delete(i, b)
        assert len(t) == 0
        assert t.validate() == []

    def test_root_shrinks_after_mass_delete(self):
        items = random_boxes(200, seed=12)
        t = RStarTree(fanout=8)
        for i, b in items:
            t.insert(i, b)
        tall = t.height
        for i, b in items[:190]:
            t.delete(i, b)
        assert t.height <= tall
        assert sorted(t) == sorted(i for i, _ in items[190:])
        assert t.validate() == []

    def test_search_correct_after_deletions(self):
        items = random_boxes(120, seed=13)
        t = RStarTree(fanout=6)
        for i, b in items:
            t.insert(i, b)
        removed = {i for i, _ in items[::3]}
        for i, b in items:
            if i in removed:
                t.delete(i, b)
        kept = [(i, b) for i, b in items if i not in removed]
        probe = Box3(0, 0, 0, 60, 60, 10)
        assert sorted(t.items_in_box(probe)) == brute_force_hits(kept, probe)
