"""Unit tests for STR bulk loading."""

import random

import pytest

from repro.geometry import Box3
from repro.index import RStarTree, str_bulk_load


def random_items(n, seed=0):
    rng = random.Random(seed)
    out = []
    for i in range(n):
        x, y = rng.uniform(0, 200), rng.uniform(0, 200)
        z = rng.choice([0.0, 4.0, 8.0, 12.0])
        out.append((i, Box3(x, y, z, x + 2, y + 2, z + 0.01)))
    return out


class TestBulkLoad:
    def test_empty(self):
        t = str_bulk_load([])
        assert len(t) == 0

    def test_single(self):
        t = str_bulk_load([("a", Box3(0, 0, 0, 1, 1, 1))])
        assert list(t) == ["a"]
        assert t.height == 1

    @pytest.mark.parametrize("n", [5, 20, 21, 100, 399, 1000])
    def test_all_items_present(self, n):
        items = random_items(n, seed=n)
        t = str_bulk_load(items, fanout=20)
        assert sorted(t) == list(range(n))

    @pytest.mark.parametrize("n", [50, 400])
    def test_valid_structure(self, n):
        t = str_bulk_load(random_items(n, seed=n + 7), fanout=10)
        problems = [p for p in t.validate() if "fill" not in p]
        # STR packing may leave one under-filled node per level; all
        # other invariants must hold exactly.
        assert problems == []

    def test_search_matches_brute_force(self):
        items = random_items(300, seed=2)
        t = str_bulk_load(items, fanout=16)
        probe = Box3(50, 50, 0, 120, 120, 5)
        expected = sorted(i for i, b in items if b.intersects(probe))
        assert sorted(t.items_in_box(probe)) == expected

    def test_packed_tree_is_shallower_or_equal(self):
        items = random_items(500, seed=3)
        packed = str_bulk_load(items, fanout=10)
        dynamic = RStarTree(fanout=10)
        for i, b in items:
            dynamic.insert(i, b)
        assert packed.height <= dynamic.height

    def test_dynamic_ops_after_bulk_load(self):
        items = random_items(100, seed=4)
        t = str_bulk_load(items, fanout=10)
        t.insert(1000, Box3(5, 5, 0, 6, 6, 0.01))
        assert 1000 in set(t)
        i, b = items[0]
        assert t.delete(i, b)
        assert i not in set(t)
        assert len(t) == 100
