"""Unit tests for the skeleton tier (M_s2s, Definition 2, Lemma 6)."""

import math

import numpy as np
import pytest

from repro.geometry import Point
from repro.index import SkeletonTier
from repro.space import DoorsGraph


class TestEntrances:
    def test_two_floor_space_has_two_entrances(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        assert sk.num_entrances == 2
        assert {e.door_id for e in sk.entrances} == {"se0", "se1"}

    def test_by_floor(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        assert [e.door_id for e in sk.entrances_on_floor(0)] == ["se0"]
        assert [e.door_id for e in sk.entrances_on_floor(1)] == ["se1"]
        assert sk.entrances_on_floor(7) == []

    def test_single_floor_building_has_none(self, five_rooms):
        sk = SkeletonTier(five_rooms)
        assert sk.num_entrances == 0

    def test_mall_entrance_count(self, small_mall):
        sk = SkeletonTier(small_mall)
        # 4 shafts x 2 entrances per shaft (2-floor mall).
        assert sk.num_entrances == 8


class TestMs2sProperties:
    def test_diagonal_zero(self, small_mall):
        sk = SkeletonTier(small_mall)
        assert np.allclose(np.diag(sk.ms2s), 0.0)

    def test_symmetric(self, small_mall):
        sk = SkeletonTier(small_mall)
        assert np.allclose(sk.ms2s, sk.ms2s.T)

    def test_same_floor_is_euclidean(self, small_mall):
        sk = SkeletonTier(small_mall)
        fh = small_mall.floor_height
        for a in sk.entrances:
            for b in sk.entrances:
                if a.floor == b.floor and a.index != b.index:
                    assert sk.ms2s[a.index, b.index] <= (
                        a.midpoint.distance(b.midpoint, fh) + 1e-9
                    )

    def test_same_staircase_direct(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        a, b = sk.entrances
        expected = a.midpoint.distance(
            b.midpoint, two_floor_space.floor_height
        )
        assert sk.ms2s[a.index, b.index] == pytest.approx(expected)

    def test_triangle_inequality(self, small_mall):
        sk = SkeletonTier(small_mall)
        m = sk.ms2s
        n = sk.num_entrances
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert m[i, j] <= m[i, k] + m[k, j] + 1e-9


class TestSkeletonDistance:
    def test_same_floor_is_euclidean(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        q, p = Point(1, 1, 0), Point(9, 7, 0)
        assert sk.skeleton_distance(q, p) == pytest.approx(q.distance(p))

    def test_cross_floor_routes_through_entrances(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        q, p = Point(5, 5, 0), Point(5, 5, 1)
        d = sk.skeleton_distance(q, p)
        assert d > q.distance(p, two_floor_space.floor_height) - 1e-9
        se0 = two_floor_space.door("se0").midpoint
        assert d >= q.distance(se0, two_floor_space.floor_height)

    def test_unreachable_floor_is_infinite(self, five_rooms):
        sk = SkeletonTier(five_rooms)
        assert sk.skeleton_distance(Point(5, 5, 0), Point(5, 5, 3)) == math.inf

    def test_lemma6_lower_bound(self, small_mall):
        """|q,p|_K <= |q,p|_I on random point pairs (Lemma 6)."""
        sk = SkeletonTier(small_mall)
        graph = DoorsGraph.from_space(small_mall)
        for seed in range(8):
            q = small_mall.random_point(seed=seed)
            p = small_mall.random_point(seed=seed + 50)
            indoor = graph.indoor_distance(q, p)
            skel = sk.skeleton_distance(q, p)
            assert skel <= indoor + 1e-6, (q, p, skel, indoor)


class TestMinDistanceToBox:
    def test_same_floor_is_mindist(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        unit_box = two_floor_space.partition("room0").bounds
        from repro.geometry.rect import Box3
        box = Box3.from_rect(unit_box, 0, two_floor_space.floor_height)
        q = Point(15, 5, 0)
        assert sk.min_distance_to_box(q, box, 0, 0) == pytest.approx(5.0)

    def test_cross_floor_bound_holds(self, small_mall):
        sk = SkeletonTier(small_mall)
        graph = DoorsGraph.from_space(small_mall)
        from repro.geometry.rect import Box3
        q = small_mall.random_point(seed=1)
        for seed in range(2, 8):
            p = small_mall.random_point(seed=seed)
            if p.floor == q.floor:
                continue
            part = small_mall.locate(p)
            box = Box3.from_rect(part.bounds, p.floor, small_mall.floor_height)
            bound = sk.min_distance_to_box(q, box, p.floor, p.floor)
            indoor = graph.indoor_distance(q, p)
            assert bound <= indoor + 1e-6

    def test_rebuild_on_topology_change(self, two_floor_space):
        sk = SkeletonTier(two_floor_space)
        assert sk.num_entrances == 2
        two_floor_space.remove_partition("stair")
        sk.ensure_fresh()
        assert sk.num_entrances == 0
