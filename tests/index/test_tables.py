"""Unit tests for the o-table and h-table."""

import pytest

from repro.errors import IndexError_
from repro.index import HTable, OTable


class TestHTable:
    def test_add_and_lookup(self):
        h = HTable()
        h.add("u1", "p1")
        h.add("u2", "p1")
        h.add("u3", "p2")
        assert h.partition_of("u1") == "p1"
        assert h.units_of("p1") == {"u1", "u2"}
        assert len(h) == 3
        assert "u1" in h and "zzz" not in h

    def test_duplicate_unit_rejected(self):
        h = HTable()
        h.add("u1", "p1")
        with pytest.raises(IndexError_):
            h.add("u1", "p2")

    def test_remove_unit(self):
        h = HTable()
        h.add("u1", "p1")
        h.add("u2", "p1")
        assert h.remove_unit("u1") == "p1"
        assert h.units_of("p1") == {"u2"}
        with pytest.raises(IndexError_):
            h.remove_unit("u1")

    def test_remove_partition(self):
        h = HTable()
        h.add("u1", "p1")
        h.add("u2", "p1")
        h.add("u3", "p2")
        assert h.remove_partition("p1") == {"u1", "u2"}
        assert len(h) == 1
        assert h.units_of("p1") == set()

    def test_unknown_unit_raises(self):
        with pytest.raises(IndexError_):
            HTable().partition_of("u")


class TestOTable:
    def test_add_and_views(self):
        o = OTable()
        o.add("obj1", {"u1", "u2"})
        o.add("obj2", {"u2"})
        assert o.units_of("obj1") == {"u1", "u2"}
        assert o.objects_in("u2") == {"obj1", "obj2"}
        assert o.objects_in("u9") == set()
        assert len(o) == 2

    def test_duplicate_object_rejected(self):
        o = OTable()
        o.add("obj1", {"u1"})
        with pytest.raises(IndexError_):
            o.add("obj1", {"u2"})

    def test_remove(self):
        o = OTable()
        o.add("obj1", {"u1", "u2"})
        assert o.remove("obj1") == {"u1", "u2"}
        assert o.objects_in("u1") == set()
        with pytest.raises(IndexError_):
            o.remove("obj1")

    def test_drop_unit(self):
        o = OTable()
        o.add("obj1", {"u1", "u2"})
        o.add("obj2", {"u1"})
        affected = o.drop_unit("u1")
        assert affected == {"obj1", "obj2"}
        assert o.units_of("obj1") == {"u2"}
        assert o.units_of("obj2") == set()

    def test_contains(self):
        o = OTable()
        o.add("obj1", {"u1"})
        assert "obj1" in o and "obj2" not in o

    def test_unknown_object_raises(self):
        with pytest.raises(IndexError_):
            OTable().units_of("nope")
