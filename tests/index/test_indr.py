"""Unit tests for the indR-tree (tree tier)."""

import pytest

from repro.errors import IndexError_
from repro.geometry import Point, Rect
from repro.index import IndRTree
from repro.space import Partition


class TestConstruction:
    def test_indexes_every_partition(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        assert set(indr.units_of_partition) == set(five_rooms.partitions)

    def test_units_cover_partition_areas(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        for pid, partition in five_rooms.partitions.items():
            units = indr.units_of_partition[pid]
            assert sum(u.rect.area for u in units) == pytest.approx(partition.area)

    def test_hallway_decomposed(self, five_rooms):
        indr = IndRTree.from_space(five_rooms, t_shape=0.5)
        # The hallway is 30 x 4 (ratio 0.133) and must be split.
        assert len(indr.units_of_partition["h"]) > 1

    def test_t_shape_zero_keeps_whole(self, five_rooms):
        indr = IndRTree.from_space(five_rooms, t_shape=0.0)
        assert len(indr.units_of_partition["h"]) == 1

    def test_staircase_unit_per_floor(self, two_floor_space):
        indr = IndRTree.from_space(two_floor_space)
        units = indr.units_of_partition["stair"]
        assert {u.floor for u in units} == {0, 1}
        floors = [u.floor for u in units]
        assert floors.count(0) == floors.count(1)

    def test_bulk_and_dynamic_equal_content(self, five_rooms):
        a = IndRTree.from_space(five_rooms, bulk=True)
        b = IndRTree.from_space(five_rooms, bulk=False)
        assert len(a) == len(b)
        assert a.tree.validate() == []
        assert b.tree.validate() == []

    def test_vertical_extent_one_centimeter(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        unit = next(iter(indr.units.values()))
        box = unit.box(five_rooms.floor_height)
        assert box.maxz - box.minz == pytest.approx(0.01)


class TestPointLocation:
    def test_locate_room(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        unit = indr.locate_point(Point(5, 5, 0))
        assert unit is not None and unit.partition_id == "r1"

    def test_locate_hallway(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        unit = indr.locate_point(Point(15, 12, 0))
        assert unit.partition_id == "h"

    def test_locate_wrong_floor(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        assert indr.locate_point(Point(5, 5, 3)) is None

    def test_locate_outside(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        assert indr.locate_point(Point(-50, -50, 0)) is None

    def test_locate_on_mall(self, small_mall):
        indr = IndRTree.from_space(small_mall)
        for seed in range(10):
            p = small_mall.random_point(seed=seed)
            unit = indr.locate_point(p)
            assert unit is not None
            assert small_mall.partition(unit.partition_id).contains_point(p)


class TestRectQueries:
    def test_units_overlapping_rect(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        probe = Rect(8, 4, 12, 6)  # straddles r1 | r2
        pids = {u.partition_id for u in indr.units_overlapping_rect(probe, 0)}
        assert pids == {"r1", "r2"}

    def test_floor_filter(self, two_floor_space):
        indr = IndRTree.from_space(two_floor_space)
        probe = Rect(0, 0, 30, 10)
        pids0 = {u.partition_id for u in indr.units_overlapping_rect(probe, 0)}
        pids1 = {u.partition_id for u in indr.units_overlapping_rect(probe, 1)}
        assert "room0" in pids0 and "room0" not in pids1
        assert "room1" in pids1
        assert "stair" in pids0 and "stair" in pids1


class TestDynamicOps:
    def test_insert_partition(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        new = Partition("annex", Rect(30, 0, 40, 10), 0)
        units = indr.insert_partition(new)
        assert units and indr.locate_point(Point(35, 5, 0)).partition_id == "annex"

    def test_double_insert_rejected(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        with pytest.raises(IndexError_):
            indr.insert_partition(five_rooms.partition("r1"))

    def test_delete_partition(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        n_before = len(indr)
        removed = indr.delete_partition("h")
        assert len(indr) == n_before - len(removed)
        assert indr.locate_point(Point(15, 12, 0)) is None
        assert indr.tree.validate() == []

    def test_delete_unknown_rejected(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        with pytest.raises(IndexError_):
            indr.delete_partition("zzz")


class TestFloorSpans:
    def test_leaf_node_span(self, two_floor_space):
        indr = IndRTree.from_space(two_floor_space)
        lf, uf = indr.node_floor_span(indr.root)
        assert (lf, uf) == (0, 1)

    def test_single_floor_span(self, five_rooms):
        indr = IndRTree.from_space(five_rooms)
        assert indr.node_floor_span(indr.root) == (0, 0)
