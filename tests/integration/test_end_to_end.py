"""End-to-end integration: the full pipeline on a 3-floor mall, with
object churn and topology events interleaved with queries."""

import math

import pytest

from repro.baselines import NaiveEvaluator
from repro.geometry import Circle
from repro.index import CompositeIndex
from repro.objects import ObjectGenerator
from repro.queries import QueryStats, iRQ, ikNNQ
from repro.space import CloseDoor, MergePartitions, OpenDoor, SplitPartition


@pytest.fixture(scope="module")
def pipeline(medium_mall):
    gen = ObjectGenerator(medium_mall, radius=5.0, n_instances=12, seed=101)
    pop = gen.generate(150)
    index = CompositeIndex.build(medium_mall, pop)
    return medium_mall, gen, pop, index


class TestFullPipeline:
    def test_index_consistent(self, pipeline):
        _, _, _, index = pipeline
        assert index.validate() == []

    def test_queries_match_oracle_on_three_floors(self, pipeline):
        space, _, pop, index = pipeline
        oracle = NaiveEvaluator(space, pop)
        for seed in (3, 7, 11):
            q = space.random_point(seed=seed)
            assert iRQ(q, 70.0, index).ids() == oracle.range_query(q, 70.0)
            knn = ikNNQ(q, 15, index)
            exact = oracle.all_distances(q)
            kth = oracle.kth_distance(q, 15)
            assert len(knn) == 15
            for oid in knn.ids():
                assert exact[oid] <= kth + 1e-6

    def test_cross_floor_query_uses_staircases(self, pipeline):
        space, _, pop, index = pipeline
        q = space.random_point(seed=13)
        result = iRQ(q, 1e9, index)
        # Everything reachable; distances of other-floor objects exceed
        # the floor height.
        oracle = NaiveEvaluator(space, pop)
        exact = oracle.all_distances(q)
        for obj in pop:
            if obj.floor != q.floor:
                assert exact[obj.object_id] >= space.floor_height

    def test_churn_then_query(self, pipeline):
        space, gen, pop, index = pipeline
        q = space.random_point(seed=17)
        # Insert 10, move 5, delete 5, and stay oracle-consistent.
        added = [gen.generate_one() for _ in range(10)]
        for obj in added:
            index.insert_object(obj)
        for obj in added[:5]:
            target = space.random_point(seed=hash(obj.object_id) % 1000)
            region = Circle(target, 5.0)
            index.move_object(
                obj.object_id, region, gen.sample_instances(region)
            )
        for obj in added[5:]:
            index.delete_object(obj.object_id)
        assert index.validate() == []
        oracle = NaiveEvaluator(space, pop)
        assert iRQ(q, 60.0, index).ids() == oracle.range_query(q, 60.0)
        # Clean up for other tests in the module.
        for obj in added[:5]:
            index.delete_object(obj.object_id)

    def test_topology_event_cycle(self, pipeline):
        space, _, pop, index = pipeline
        q = space.random_point(seed=19)
        before = iRQ(q, 80.0, index).ids()
        room = next(
            pid for pid, p in space.partitions.items()
            if p.kind.value == "room" and p.floor == q.floor
        )
        rect = space.partition(room).footprint
        mid = (rect.minx + rect.maxx) / 2.0
        index.apply_event(SplitPartition(room, axis="x", coord=mid))
        assert index.validate() == []
        oracle = NaiveEvaluator(space, pop)
        assert iRQ(q, 80.0, index).ids() == oracle.range_query(q, 80.0)
        index.apply_event(MergePartitions((f"{room}_a", f"{room}_b"), room))
        assert index.validate() == []
        after = iRQ(q, 80.0, index).ids()
        assert after == before

    def test_door_closure_reroutes(self, pipeline):
        space, _, pop, index = pipeline
        # Close one room door: objects in that room become unreachable.
        room_door = next(
            d for d in space.doors.values()
            if any(
                space.partition(pid).kind.value == "room"
                for pid in d.partitions
            )
        )
        room = next(
            pid for pid in room_door.partitions
            if space.partition(pid).kind.value == "room"
        )
        q = space.random_point(seed=23)
        while space.locate(q).partition_id == room:
            q = space.random_point(seed=hash((q.x, q.y)) % 1000)
        index.apply_event(CloseDoor(room_door.door_id))
        oracle = NaiveEvaluator(space, pop)
        exact = oracle.all_distances(q)
        trapped = [
            obj.object_id for obj in pop
            if obj.overlapped_partitions(space) == [room]
        ]
        for oid in trapped:
            assert math.isinf(exact[oid])
        got = iRQ(q, 1e12, index).ids()
        assert got == {
            oid for oid, d in exact.items() if d <= 1e12
        }
        index.apply_event(OpenDoor(room_door.door_id))

    def test_stats_shape_on_medium_building(self, pipeline):
        space, _, _, index = pipeline
        q = space.random_point(seed=29)
        stats = QueryStats()
        iRQ(q, 50.0, index, stats=stats)
        assert stats.filtering_ratio > 0.3
        assert stats.pruning_ratio >= stats.filtering_ratio - 1e-9
