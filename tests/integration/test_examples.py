"""Every example script must run to completion (they are the library's
executable documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # every example narrates what it does


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "mall_advertising",
            "airport_security", "dynamic_venue"} <= names
