"""Every example script must run to completion (they are the library's
executable documentation)."""

import os
import pathlib
import subprocess
import sys

import pytest

REPO = pathlib.Path(__file__).parents[2]
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    # The subprocess does not inherit pytest's `pythonpath` ini setting,
    # so put src on PYTHONPATH explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip()  # every example narrates what it does


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "mall_advertising",
            "airport_security", "dynamic_venue"} <= names
