"""Multi-client integration: one server, many concurrent subscribers.

A :class:`~repro.api.net.NetServer` over a mall-sized
:class:`~repro.api.service.QueryService` serves five concurrent
clients on real threads — mixed iRQ / ikNN / iPRQ standing queries,
some shared between clients, one client reconnecting mid-run — while a
scripted :class:`~repro.objects.MovementStream` churns the population.
At quiesce (one ping/pong barrier per client), every client's replayed
state must equal the service's live ``result_distances``, which in
turn equals a from-scratch :meth:`QueryService.run` — the acceptance
check of the serving layer.
"""

import threading

import pytest

from repro.api.net import NetClient, ServerThread
from repro.api.service import QueryService
from repro.api.specs import KNNSpec, ProbRangeSpec, RangeSpec
from repro.index import CompositeIndex
from repro.objects import MovementStream, ObjectGenerator
from repro.queries import ShardedMonitor


@pytest.fixture(scope="module")
def world(small_mall):
    gen = ObjectGenerator(small_mall, radius=3.0, n_instances=10, seed=5)
    pop = gen.generate(60)
    index = CompositeIndex.build(small_mall, pop)
    stream = MovementStream(small_mall, pop, gen, seed=11)
    return small_mall, index, stream


class _Tail(threading.Thread):
    """One remote subscriber on its own thread: watches its queries,
    then keeps polling (folding deltas) until told to quiesce."""

    def __init__(self, host, port, watches, reconnect_after=None):
        super().__init__(daemon=True)
        self.client = NetClient(host, port, timeout=15.0)
        self.watches = watches  # list of (spec, query_id | None)
        self.reconnect_after = reconnect_after
        self.query_ids: list[str] = []
        self.stop = threading.Event()
        self.ready = threading.Event()
        self.error: BaseException | None = None

    def run(self):
        try:
            self.client.connect()
            for spec, query_id in self.watches:
                self.query_ids.append(
                    self.client.watch(spec, query_id=query_id)
                )
            self.ready.set()
            polls = 0
            while not self.stop.is_set():
                self.client.poll(timeout=0.02)
                polls += 1
                if polls == self.reconnect_after:
                    # an unannounced drop + token resume, mid-stream
                    self.client.disconnect()
                    self.client.reconnect()
            self.client.sync()  # quiesce: drain everything published
        except BaseException as exc:  # surfaced by the main thread
            self.error = exc
            self.ready.set()


class TestManyClients:
    def test_five_concurrent_clients_converge_exactly(self, world):
        space, index, stream = world
        service = QueryService(index)
        q_a = space.random_point(seed=21)
        q_b = space.random_point(seed=22)
        q_c = space.random_point(seed=23)

        with ServerThread(service) as st:
            host, port = st.address
            # Shared standing query, registered server-side up front.
            shared = st.watch(RangeSpec(q_a, 60.0), query_id="lobby")
            tails = [
                _Tail(host, port, [(None, shared)]),
                _Tail(
                    host, port,
                    [(KNNSpec(q_b, 8), None), (None, shared)],
                ),
                _Tail(host, port, [(ProbRangeSpec(q_c, 70.0, 0.5),
                                    "vip")]),
                _Tail(
                    host, port,
                    [(RangeSpec(q_c, 50.0), None),
                     (KNNSpec(q_a, 5), None)],
                    reconnect_after=3,
                ),
                _Tail(host, port, [(None, "vip")]),
            ]
            # "vip" must exist before client 4 subscribes to it by id.
            tails[2].start()
            tails[2].ready.wait(timeout=30)
            assert tails[2].error is None
            for t in (tails[0], tails[1], tails[3], tails[4]):
                t.start()
            for t in tails:
                t.ready.wait(timeout=30)
                assert t.error is None, t.error

            # The scripted churn, concurrent with all five tails.
            for _ in range(12):
                st.ingest(stream.next_moves(25))

            for t in tails:
                t.stop.set()
            for t in tails:
                t.join(timeout=60)
                assert not t.is_alive()
                assert t.error is None, t.error

            # Quiesce reached: every client replayed every query it
            # watched to the exact live state...
            live = {
                qid: st.run(service.result_distances, qid)
                for qid in st.run(lambda: list(service.query_ids()))
            }
            for t in tails:
                for qid in t.query_ids:
                    assert t.client.states[qid] == live[qid]

            # ...and the live state equals from-scratch evaluation.
            for qid, state in live.items():
                spec = st.run(service.query_spec, qid)
                want = st.run(service.run, spec)
                assert set(state) == set(want.ids())

            # The mid-run reconnect actually happened.
            assert tails[3].client.reconnects == 1
            assert st.server.stats.resumes == 1
            # All five connections negotiated watches.
            assert st.server.stats.watches == 7

            for t in tails:
                t.client.close()

    def test_sharded_service_serves_identically(self, world):
        """The same serving path over a ShardedMonitor backend: two
        clients, exact convergence (the router is invisible on the
        wire)."""
        space, index, stream = world
        from repro.api.service import ServiceConfig

        service = QueryService(index, ServiceConfig(n_shards=2))
        assert isinstance(service.monitor, ShardedMonitor)
        q = space.random_point(seed=31)
        with ServerThread(service) as st:
            host, port = st.address
            a = NetClient(host, port)
            b = NetClient(host, port)
            a.connect()
            b.connect()
            qid = a.watch(RangeSpec(q, 55.0), query_id="shared")
            assert b.watch(query_id="shared") == qid
            for _ in range(6):
                st.ingest(stream.next_moves(20))
            a.sync()
            b.sync()
            live = st.run(service.result_distances, qid)
            assert a.states[qid] == live
            assert b.states[qid] == live
            a.close()
            b.close()
