"""Tests for the pruning bounds (Lemmas 1-5): every bound must sandwich
the exact expected indoor distance."""

import math

import numpy as np
import pytest

from repro.distances import (
    DistanceInterval,
    euclidean_lower_bound,
    expected_indoor_distance,
    markov_lower_bound,
    object_bounds,
    probabilistic_bounds,
    subregion_stats,
    topological_bounds,
    topological_looser_upper_bound,
    weighted_topological_bounds,
)
from repro.errors import QueryError
from repro.geometry import Circle, Point
from repro.objects import InstanceSet, ObjectGenerator, UncertainObject
from repro.space import DoorsGraph


def obj_from(points, floor=0, oid="o", probs=None):
    xy = np.array(points, dtype=float)
    cx, cy = xy.mean(axis=0)
    radius = float(np.hypot(xy[:, 0] - cx, xy[:, 1] - cy).max()) + 1.0
    inst = (
        InstanceSet(xy, floor, np.array(probs))
        if probs is not None
        else InstanceSet.uniform(xy, floor)
    )
    return UncertainObject(oid, Circle(Point(cx, cy, floor), radius), inst)


class TestDistanceInterval:
    def test_inverted_rejected(self):
        with pytest.raises(QueryError):
            DistanceInterval(5.0, 1.0)

    def test_predicates(self):
        iv = DistanceInterval(3.0, 7.0)
        assert iv.entirely_within(7.0)
        assert not iv.entirely_within(6.9)
        assert iv.entirely_beyond(2.9)
        assert not iv.entirely_beyond(3.0)

    def test_intersect(self):
        a = DistanceInterval(1.0, 5.0)
        b = DistanceInterval(3.0, 9.0)
        assert a.intersect(b) == DistanceInterval(3.0, 5.0)


class TestEuclideanLowerBound:
    def test_is_lower_bound(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 5], [25, 5]])
        dd = graph.dijkstra_from_point(q)
        exact = expected_indoor_distance(q, obj, dd, five_rooms).value
        assert euclidean_lower_bound(q, obj) <= exact + 1e-9


class TestTopologicalBounds:
    def test_sandwich_single_partition(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 3], [17, 7], [13, 9]])
        dd = graph.dijkstra_from_point(q)
        exact = expected_indoor_distance(q, obj, dd, five_rooms).value
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        iv = topological_bounds(stats)
        assert iv.lower - 1e-9 <= exact <= iv.upper + 1e-9

    def test_sandwich_multi_partition(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        obj = obj_from([[8, 5], [12, 5], [16, 12]])
        dd = graph.dijkstra_from_point(q)
        exact = expected_indoor_distance(q, obj, dd, five_rooms).value
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        for iv in (
            topological_bounds(stats),
            weighted_topological_bounds(stats),
            probabilistic_bounds(stats),
        ):
            assert iv.lower - 1e-9 <= exact <= iv.upper + 1e-9

    def test_weighted_tighter_than_plain(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        obj = obj_from([[5, 5], [15, 12]])  # far + near subregions
        dd = graph.dijkstra_from_point(q)
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        plain = topological_bounds(stats)
        weighted = weighted_topological_bounds(stats)
        assert weighted.lower >= plain.lower - 1e-9
        assert weighted.upper <= plain.upper + 1e-9

    def test_empty_stats_rejected(self):
        with pytest.raises(QueryError):
            topological_bounds([])
        with pytest.raises(QueryError):
            probabilistic_bounds([])
        with pytest.raises(QueryError):
            markov_lower_bound([])


class TestProbabilisticBounds:
    def test_tighter_or_equal_than_topological(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        obj = obj_from(
            [[8, 5], [9, 4], [12, 5], [5, 16]],
            probs=[0.4, 0.3, 0.2, 0.1],
        )
        dd = graph.dijkstra_from_point(q)
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        plain = topological_bounds(stats)
        prob = probabilistic_bounds(stats)
        assert prob.lower >= plain.lower - 1e-9
        assert prob.upper <= plain.upper + 1e-9

    def test_markov_is_valid_lower_bound(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        obj = obj_from([[8, 5], [12, 5], [5, 20]])
        dd = graph.dijkstra_from_point(q)
        exact = expected_indoor_distance(q, obj, dd, five_rooms).value
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        assert markov_lower_bound(stats) <= exact + 1e-9

    def test_degenerates_to_topological_single(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 4], [16, 6]])
        dd = graph.dijkstra_from_point(q)
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        assert probabilistic_bounds(stats) == topological_bounds(stats)


class TestObjectBounds:
    def test_dispatch_matches_table_iii(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        dd = graph.dijkstra_from_point(q)
        single = obj_from([[5, 5], [6, 6]], oid="s")
        multi = obj_from([[8, 5], [12, 5]], oid="m")
        for obj in (single, multi):
            exact = expected_indoor_distance(q, obj, dd, five_rooms).value
            iv = object_bounds(q, obj, dd, five_rooms)
            assert iv.lower - 1e-9 <= exact <= iv.upper + 1e-9

    def test_randomised_sandwich_on_mall(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        gen = ObjectGenerator(small_mall, radius=5.0, n_instances=12, seed=13)
        q = small_mall.random_point(seed=99)
        dd = graph.dijkstra_from_point(q)
        for _ in range(10):
            obj = gen.generate_one()
            exact = expected_indoor_distance(q, obj, dd, small_mall, gen.grid)
            iv = object_bounds(q, obj, dd, small_mall, gen.grid)
            if math.isinf(exact.value):
                continue
            assert iv.lower - 1e-6 <= exact.value <= iv.upper + 1e-6


class TestTLU:
    def test_tlu_is_upper_bound(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 4], [17, 7]])
        dd = graph.dijkstra_from_point(q)
        exact = expected_indoor_distance(q, obj, dd, five_rooms).value
        # Build a deliberately suboptimal known path to r2: through d12.
        d12 = five_rooms.door("d12")
        length = q.distance(d12.midpoint) + 5.0  # padded: still a bound
        tlu = topological_looser_upper_bound(
            q, obj, {"r2": (d12.midpoint, length)}, five_rooms
        )
        assert tlu >= exact - 1e-9

    def test_tlu_looser_than_topological_ub(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 4], [17, 7]])
        dd = graph.dijkstra_from_point(q)
        stats = [
            subregion_stats(q, s, dd, five_rooms)
            for s in obj.subregions(five_rooms)
        ]
        tight = topological_bounds(stats).upper
        d12 = five_rooms.door("d12")
        tlu = topological_looser_upper_bound(
            q, obj,
            {"r2": (d12.midpoint, q.distance(d12.midpoint) + 10.0)},
            five_rooms,
        )
        assert tlu >= tight - 1e-9

    def test_missing_partition_gives_infinity(self, five_rooms):
        q = Point(5, 5, 0)
        obj = obj_from([[15, 4]])
        assert topological_looser_upper_bound(q, obj, {}, five_rooms) == math.inf
