"""Tests for the exact expected indoor distance (Eqs. 2-6).

The key oracle: |q, O|_I computed via the vectorised subregion machinery
must equal the probability-weighted sum of per-instance indoor distances
computed by the reference point-to-point implementation.
"""

import math

import numpy as np
import pytest

from repro.distances import (
    DistanceCase,
    classify_subregion_paths,
    expected_indoor_distance,
    instance_indoor_distances,
)
from repro.geometry import Circle, Point
from repro.objects import InstanceSet, ObjectGenerator, UncertainObject
from repro.space import DoorsGraph


def obj_from(points, floor=0, oid="o", probs=None):
    xy = np.array(points, dtype=float)
    cx, cy = xy.mean(axis=0)
    radius = float(np.hypot(xy[:, 0] - cx, xy[:, 1] - cy).max()) + 1.0
    inst = (
        InstanceSet(xy, floor, np.array(probs))
        if probs is not None
        else InstanceSet.uniform(xy, floor)
    )
    return UncertainObject(oid, Circle(Point(cx, cy, floor), radius), inst)


def reference_expected(graph, q, obj):
    total = 0.0
    for (x, y), p in zip(obj.instances.xy, obj.instances.probs):
        total += graph.indoor_distance(q, Point(x, y, obj.floor)) * p
    return total


class TestAgainstReference:
    def test_same_room(self, five_rooms, q_center):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[2, 2], [8, 8], [5, 1]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_adjacent_room(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 2], [17, 8], [12, 5]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_straddling_object(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)  # in r3
        obj = obj_from([[8, 5], [9, 6], [12, 5], [13, 4]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.case is DistanceCase.MULTI_PARTITION
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_weighted_probs(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 5], [25, 5]], probs=[0.8, 0.2])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_cross_floor(self, two_floor_space):
        graph = DoorsGraph.from_space(two_floor_space)
        q = Point(5, 5, 0)
        obj = obj_from([[3, 3], [7, 7]], floor=1)
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, two_floor_space)
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_randomised_against_reference(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        gen = ObjectGenerator(small_mall, radius=4.0, n_instances=8, seed=31)
        q = small_mall.random_point(seed=77)
        dd = graph.dijkstra_from_point(q)
        for _ in range(6):
            obj = gen.generate_one()
            got = expected_indoor_distance(q, obj, dd, small_mall, gen.grid)
            expected = reference_expected(graph, q, obj)
            assert got.value == pytest.approx(expected, rel=1e-9)

    def test_one_way_door_respected(self, one_way_space):
        graph = DoorsGraph.from_space(one_way_space)
        q = Point(5, 5, 0)  # r1; direct door into r2 is exit-forbidden
        obj = obj_from([[15, 5]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, one_way_space)
        assert got.value == pytest.approx(reference_expected(graph, q, obj))
        assert got.value > q.distance(Point(15, 5, 0))


class TestCases:
    def test_single_path_case(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)  # r3: only one door, so any r1 object is
        obj = obj_from([[2, 2], [3, 3]])  # reached through a fixed last door
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.case is DistanceCase.SINGLE_PARTITION_SINGLE_PATH

    def test_multi_path_case(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(15, 12, 0)  # hallway
        # r1 has two doors (d1 from hallway, d12 from r2).  Instances
        # hugging each door split the Voronoi diagram.
        obj = obj_from([[5, 9.9], [9.9, 5]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert got.case in (
            DistanceCase.SINGLE_PARTITION_MULTI_PATH,
            DistanceCase.SINGLE_PARTITION_SINGLE_PATH,
        )
        assert got.value == pytest.approx(reference_expected(graph, q, obj))

    def test_direct_path_in_same_partition(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(15, 12, 0)
        obj = obj_from([[14, 11], [16, 13]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        direct = obj.instances.expected_distance_to(q, five_rooms.floor_height)
        assert got.value == pytest.approx(direct)

    def test_per_subregion_contributions_sum(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(25, 5, 0)
        obj = obj_from([[8, 5], [12, 5]])
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert sum(c for _, c, _ in got.per_subregion) == pytest.approx(got.value)
        assert sum(m for _, _, m in got.per_subregion) == pytest.approx(1.0)

    def test_unreachable_is_infinite(self, five_rooms):
        from repro.space import CloseDoor
        CloseDoor("d3").apply(five_rooms)
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[25, 5]], oid="trapped")  # r3 sealed
        dd = graph.dijkstra_from_point(q)
        got = expected_indoor_distance(q, obj, dd, five_rooms)
        assert math.isinf(got.value)
        assert not got.is_reachable


class TestBisectorClassification:
    def test_bisector_route_is_conservative(self, five_rooms):
        """Bisector-based single-path detection never contradicts the
        exact argmin test (True implies True); with only two doors the
        two tests coincide."""
        graph = DoorsGraph.from_space(five_rooms)
        rng = np.random.default_rng(5)
        q = Point(15, 12, 0)
        dd = graph.dijkstra_from_point(q)
        for _ in range(20):
            pts = rng.uniform([0.5, 0.5], [9.5, 9.5], size=(6, 2))
            obj = obj_from(pts.tolist())
            (sub,) = obj.subregions(five_rooms)
            via_argmin = classify_subregion_paths(q, sub, dd, five_rooms)
            via_bisector = classify_subregion_paths(
                q, sub, dd, five_rooms, use_bisectors=True
            )
            if via_bisector:
                assert via_argmin
            # r1 has exactly two doors: pairwise == exact here.
            assert via_argmin == via_bisector

    def test_instance_distances_monotone_in_probs(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        obj = obj_from([[15, 2], [18, 8]])
        dd = graph.dijkstra_from_point(q)
        (sub,) = obj.subregions(five_rooms)
        dists = instance_indoor_distances(q, sub, dd, five_rooms)
        for (x, y), d in zip(sub.instances.xy, dists):
            ref = graph.indoor_distance(q, Point(x, y, 0))
            assert d == pytest.approx(ref)
