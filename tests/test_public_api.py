"""API-contract tests: every documented public name must be importable
from the top-level package, the lazy loader must behave, and the
`repro.api` surface must match its reviewed snapshot."""

import pytest

import repro
import repro.api

#: The reviewed public surface of `repro.api`.  A mismatch means the
#: public API changed: update this snapshot *in the same PR* (and the
#: "API" section of ROADMAP.md if the schema version moved).
API_SURFACE_SNAPSHOT = [
    "AsyncNetClient",
    "CheckpointStore",
    "CountSpec",
    "DeltaFeedWriter",
    "FeedReadStats",
    "KNNSpec",
    "NetClient",
    "NetServer",
    "OccupancySpec",
    "ProbRangeSpec",
    "QueryService",
    "QuerySpec",
    "RangeSpec",
    "RecoveryReport",
    "SPEC_SCHEMA_VERSION",
    "ServerThread",
    "ServiceConfig",
    "SnapshotRecord",
    "WIRE_VERSION",
    "WatchRecord",
    "decode_record",
    "encode_record",
    "read_feed",
    "recover",
    "replay_feed",
    "spec_from_dict",
]


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in ("iRQ", "ikNNQ", "CompositeIndex", "build_mall"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_lazy_values_cached(self):
        first = repro.CompositeIndex
        second = repro.CompositeIndex
        assert first is second

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestApiSurface:
    """`repro.api` is the schema-versioned public surface: its exports
    are pinned by snapshot so additions/removals are deliberate."""

    def test_all_matches_snapshot(self):
        assert sorted(repro.api.__all__) == API_SURFACE_SNAPSHOT

    def test_all_exports_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None, name

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.api.not_an_export

    def test_dir_lists_exports(self):
        listing = dir(repro.api)
        for name in API_SURFACE_SNAPSHOT:
            assert name in listing

    def test_schema_versions_are_current(self):
        assert repro.api.SPEC_SCHEMA_VERSION == 1
        # v2: delta records carry `prob_changed` (standing iPRQ); the
        # decoder still reads v1 (tests/api/test_wire.py).
        assert repro.api.WIRE_VERSION == 2

    def test_api_names_reachable_from_top_level(self):
        names = (
            "QueryService",
            "ServiceConfig",
            "QuerySpec",
            "RangeSpec",
            "KNNSpec",
            "ProbRangeSpec",
        )
        for name in names:
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_core_round_trip_through_top_level_names_only(self, tmp_path):
        """A downstream user can do everything via `import repro`."""
        space = repro.build_mall(
            floors=1, bands=2, rooms_per_band_side=2, floor_size=80.0,
            hallway_width=4.0, stair_size=10.0, seed=3,
        )
        path = tmp_path / "plan.json"
        repro.save_space(space, path)
        space = repro.load_space(path)
        objects = repro.ObjectGenerator(
            space, radius=3.0, n_instances=5, seed=3
        ).generate(20)
        index = repro.CompositeIndex.build(space, objects)
        q = space.random_point(seed=1)
        hits = repro.iRQ(q, 30.0, index)
        knn = repro.ikNNQ(q, 3, index)
        prq = repro.iPRQ(q, 30.0, 0.5, index)
        assert len(knn) == 3
        assert prq.ids() <= hits.ids() | prq.ids()
        art = repro.render_floor(space, 0, width=40, show_legend=False)
        assert art.startswith("floor 0")
