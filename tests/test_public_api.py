"""API-contract tests: every documented public name must be importable
from the top-level package, and the lazy loader must behave."""

import pytest

import repro


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in ("iRQ", "ikNNQ", "CompositeIndex", "build_mall"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_lazy_values_cached(self):
        first = repro.CompositeIndex
        second = repro.CompositeIndex
        assert first is second

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_core_round_trip_through_top_level_names_only(self, tmp_path):
        """A downstream user can do everything via `import repro`."""
        space = repro.build_mall(
            floors=1, bands=2, rooms_per_band_side=2, floor_size=80.0,
            hallway_width=4.0, stair_size=10.0, seed=3,
        )
        path = tmp_path / "plan.json"
        repro.save_space(space, path)
        space = repro.load_space(path)
        objects = repro.ObjectGenerator(
            space, radius=3.0, n_instances=5, seed=3
        ).generate(20)
        index = repro.CompositeIndex.build(space, objects)
        q = space.random_point(seed=1)
        hits = repro.iRQ(q, 30.0, index)
        knn = repro.ikNNQ(q, 3, index)
        prq = repro.iPRQ(q, 30.0, 0.5, index)
        assert len(knn) == 3
        assert prq.ids() <= hits.ids() | prq.ids()
        art = repro.render_floor(space, 0, width=40, show_legend=False)
        assert art.startswith("floor 0")
