"""Unit tests for repro.space.partition."""

import pytest

from repro.errors import SpaceError
from repro.geometry import Point, Polygon, Rect
from repro.space import Partition, PartitionKind


class TestConstruction:
    def test_defaults(self):
        p = Partition("r1", Rect(0, 0, 5, 5), floor=2)
        assert p.kind is PartitionKind.ROOM
        assert p.upper_floor == 2
        assert p.floor_span == (2, 2)
        assert not p.is_staircase

    def test_identity_semantics(self):
        a = Partition("r1", Rect(0, 0, 1, 1), 0)
        b = Partition("r1", Rect(5, 5, 9, 9), 3, PartitionKind.HALLWAY)
        assert a == b and hash(a) == hash(b)

    def test_only_staircases_span_floors(self):
        with pytest.raises(SpaceError):
            Partition("r1", Rect(0, 0, 1, 1), 0, upper_floor=1)
        s = Partition(
            "s1", Rect(0, 0, 1, 1), 0, PartitionKind.STAIRCASE, upper_floor=2
        )
        assert s.floor_span == (0, 2)

    def test_inverted_span_rejected(self):
        with pytest.raises(SpaceError):
            Partition(
                "s1", Rect(0, 0, 1, 1), 3, PartitionKind.STAIRCASE, upper_floor=1
            )


class TestGeometry:
    def test_bounds_rect(self):
        p = Partition("r", Rect(1, 2, 3, 4), 0)
        assert p.bounds == Rect(1, 2, 3, 4)
        assert p.area == pytest.approx(4.0)

    def test_bounds_polygon(self):
        poly = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        p = Partition("L", poly, 0, PartitionKind.HALLWAY)
        assert p.bounds == Rect(0, 0, 4, 4)
        assert p.area == pytest.approx(12.0)

    def test_contains_point_checks_floor(self):
        p = Partition("r", Rect(0, 0, 10, 10), floor=1)
        assert p.contains_point(Point(5, 5, 1))
        assert not p.contains_point(Point(5, 5, 0))
        assert not p.contains_point(Point(50, 5, 1))

    def test_staircase_spans_floor_range(self):
        s = Partition(
            "s", Rect(0, 0, 4, 4), 0, PartitionKind.STAIRCASE, upper_floor=2
        )
        assert s.spans_floor(0) and s.spans_floor(1) and s.spans_floor(2)
        assert not s.spans_floor(3)
        assert s.contains_point(Point(1, 1, 1))

    def test_polygon_containment(self):
        poly = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        p = Partition("L", poly, 0)
        assert p.contains_xy(1, 3)
        assert not p.contains_xy(3, 3)
