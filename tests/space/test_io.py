"""Round-trip tests for space serialisation."""

import json

import pytest

from repro.errors import SpaceError
from repro.space import DoorsGraph
from repro.space.io import load_space, save_space, space_from_dict, space_to_dict


def assert_spaces_equivalent(a, b):
    assert a.floor_height == b.floor_height
    assert set(a.partitions) == set(b.partitions)
    assert set(a.doors) == set(b.doors)
    for pid, pa in a.partitions.items():
        pb = b.partitions[pid]
        assert pa.kind == pb.kind
        assert pa.floor_span == pb.floor_span
        assert pa.bounds == pb.bounds
        assert pa.area == pytest.approx(pb.area)
    for did, da in a.doors.items():
        db = b.doors[did]
        assert da.midpoint == db.midpoint
        assert da.partitions == db.partitions
        assert da.direction == db.direction
        assert da.is_open == db.is_open


class TestRoundTrip:
    def test_five_rooms(self, five_rooms):
        clone = space_from_dict(space_to_dict(five_rooms))
        assert_spaces_equivalent(five_rooms, clone)

    def test_one_way_doors_preserved(self, one_way_space):
        clone = space_from_dict(space_to_dict(one_way_space))
        assert_spaces_equivalent(one_way_space, clone)
        d = clone.door("d21")
        assert d.allows_exit("r2") and not d.allows_exit("r1")

    def test_staircases_preserved(self, two_floor_space):
        clone = space_from_dict(space_to_dict(two_floor_space))
        assert_spaces_equivalent(two_floor_space, clone)
        assert clone.partition("stair").floor_span == (0, 1)

    def test_closed_doors_preserved(self, five_rooms):
        five_rooms.door("d1").is_open = False
        clone = space_from_dict(space_to_dict(five_rooms))
        assert not clone.door("d1").is_open

    def test_mall_round_trip_distances_identical(self, small_mall):
        clone = space_from_dict(space_to_dict(small_mall))
        assert_spaces_equivalent(small_mall, clone)
        q = small_mall.random_point(seed=3)
        p = small_mall.random_point(seed=4)
        d1 = DoorsGraph.from_space(small_mall).indoor_distance(q, p)
        d2 = DoorsGraph.from_space(clone).indoor_distance(q, p)
        assert d1 == pytest.approx(d2)

    def test_polygon_footprints(self):
        from repro.geometry import Polygon, Rect
        from repro.space import SpaceBuilder
        b = SpaceBuilder()
        b.add_hallway(
            "L", Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        )
        b.add_room("r", Rect(4, 0, 8, 2))
        b.connect("L", "r")
        space = b.build()
        clone = space_from_dict(space_to_dict(space))
        assert_spaces_equivalent(space, clone)
        assert clone.partition("L").area == pytest.approx(12.0)


class TestFiles:
    def test_save_and_load(self, five_rooms, tmp_path):
        path = tmp_path / "plan.json"
        save_space(five_rooms, path)
        clone = load_space(path)
        assert_spaces_equivalent(five_rooms, clone)
        # File is valid JSON.
        json.loads(path.read_text())

    def test_bad_schema_rejected(self, five_rooms):
        data = space_to_dict(five_rooms)
        data["schema"] = 99
        with pytest.raises(SpaceError):
            space_from_dict(data)

    def test_missing_footprint_rejected(self, five_rooms):
        data = space_to_dict(five_rooms)
        del data["partitions"][0]["rect"]
        with pytest.raises(SpaceError):
            space_from_dict(data)
