"""Unit tests for repro.space.builder."""

import pytest

from repro.errors import SpaceError
from repro.geometry import Point, Rect
from repro.space import DoorDirection, PartitionKind, SpaceBuilder


class TestRooms:
    def test_add_room_kinds(self):
        b = SpaceBuilder()
        b.add_room("r", Rect(0, 0, 1, 1))
        b.add_hallway("h", Rect(1, 0, 2, 1))
        b.add_staircase("s", Rect(2, 0, 3, 1), 0)
        space = b.space
        assert space.partition("r").kind is PartitionKind.ROOM
        assert space.partition("h").kind is PartitionKind.HALLWAY
        assert space.partition("s").kind is PartitionKind.STAIRCASE
        assert space.partition("s").floor_span == (0, 1)


class TestConnect:
    def test_auto_door_on_shared_wall(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(10, 0, 20, 10))
        b.connect("a", "b", door_id="d")
        door = b.space.door("d")
        assert door.midpoint == Point(10, 5, 0)

    def test_auto_door_partial_overlap(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(10, 6, 20, 20))
        b.connect("a", "b", door_id="d")
        assert b.space.door("d").midpoint == Point(10, 8, 0)

    def test_no_shared_wall_raises(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(50, 0, 60, 10))
        with pytest.raises(SpaceError):
            b.connect("a", "b")

    def test_explicit_at(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(50, 0, 60, 10))
        b.connect("a", "b", at=Point(30, 5), door_id="bridge")
        assert b.space.door("bridge").midpoint == Point(30, 5, 0)

    def test_one_way(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(10, 0, 20, 10))
        b.one_way("a", "b", door_id="gate")
        door = b.space.door("gate")
        assert door.direction is DoorDirection.ONE_WAY
        assert door.allows_exit("a") and not door.allows_exit("b")

    def test_auto_door_ids_unique(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10))
        b.add_room("b", Rect(10, 0, 20, 10))
        b.add_room("c", Rect(20, 0, 30, 10))
        b.connect("a", "b")
        b.connect("b", "c")
        assert len(b.space.doors) == 2

    def test_staircase_entrance_floors(self):
        b = SpaceBuilder()
        b.add_hallway("h0", Rect(0, 0, 10, 10), floor=0)
        b.add_hallway("h1", Rect(0, 0, 10, 10), floor=1)
        b.add_staircase("s", Rect(10, 0, 14, 10), 0, 1)
        b.connect("s", "h0", floor=0, door_id="e0")
        b.connect("s", "h1", floor=1, door_id="e1")
        assert b.space.door("e0").midpoint.floor == 0
        assert b.space.door("e1").midpoint.floor == 1

    def test_no_common_floor_raises(self):
        b = SpaceBuilder()
        b.add_room("a", Rect(0, 0, 10, 10), floor=0)
        b.add_room("b", Rect(10, 0, 20, 10), floor=5)
        with pytest.raises(SpaceError):
            b.connect("a", "b")


class TestBuild:
    def test_build_validates(self):
        b = SpaceBuilder()
        b.add_room("isolated", Rect(0, 0, 1, 1))
        with pytest.raises(SpaceError):
            b.build()

    def test_build_skip_validation(self):
        b = SpaceBuilder()
        b.add_room("isolated", Rect(0, 0, 1, 1))
        space = b.build(validate=False)
        assert "isolated" in space.partitions
