"""Unit tests for repro.space.door."""

import pytest

from repro.errors import SpaceError
from repro.geometry import Point
from repro.space import Door, DoorDirection


def mk(direction=DoorDirection.BIDIRECTIONAL, is_open=True):
    return Door("d1", Point(5, 0), ("a", "b"), direction, is_open)


class TestConstruction:
    def test_self_loop_rejected(self):
        with pytest.raises(SpaceError):
            Door("d1", Point(0, 0), ("a", "a"))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SpaceError):
            Door("d1", Point(0, 0), ("a",))  # type: ignore[arg-type]

    def test_identity_semantics(self):
        assert mk() == Door("d1", Point(9, 9), ("x", "y"))
        assert hash(mk()) == hash("d1") == hash(Door("d1", Point(9, 9), ("x", "y")))


class TestTopology:
    def test_connects(self):
        d = mk()
        assert d.connects("a") and d.connects("b")
        assert not d.connects("c")

    def test_other_side(self):
        d = mk()
        assert d.other_side("a") == "b"
        assert d.other_side("b") == "a"
        with pytest.raises(SpaceError):
            d.other_side("c")


class TestPermissions:
    def test_bidirectional_allows_both(self):
        d = mk()
        for pid in ("a", "b"):
            assert d.allows_exit(pid)
            assert d.allows_entry(pid)

    def test_one_way_semantics(self):
        d = mk(DoorDirection.ONE_WAY)
        # movement a -> b only
        assert d.allows_exit("a")
        assert d.allows_entry("b")
        assert not d.allows_exit("b")
        assert not d.allows_entry("a")

    def test_closed_door_blocks_everything(self):
        d = mk(is_open=False)
        for pid in ("a", "b"):
            assert not d.allows_exit(pid)
            assert not d.allows_entry(pid)

    def test_unrelated_partition_never_allowed(self):
        d = mk()
        assert not d.allows_exit("zzz")
        assert not d.allows_entry("zzz")
