"""Unit tests for the doors graph and its Dijkstra (cross-checked with
networkx as an independent oracle)."""

import math

import networkx as nx
import pytest

from repro.errors import SpaceError, UnreachableError
from repro.geometry import Point
from repro.space import DoorsGraph


def to_networkx(graph: DoorsGraph) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(graph.adjacency)
    for src, edges in graph.adjacency.items():
        for dst, weight, _pid in edges:
            if g.has_edge(src, dst):
                g[src][dst]["weight"] = min(g[src][dst]["weight"], weight)
            else:
                g.add_edge(src, dst, weight=weight)
    return g


class TestGraphStructure:
    def test_nodes_are_doors(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        assert set(graph.adjacency) == set(five_rooms.doors)

    def test_bidirectional_edges_symmetric(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        targets_d1 = {t for t, _, _ in graph.adjacency["d1"]}
        targets_d2 = {t for t, _, _ in graph.adjacency["d2"]}
        assert "d2" in targets_d1 and "d1" in targets_d2

    def test_edges_annotated_with_partition(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        pids = {pid for _, _, pid in graph.adjacency["d1"]}
        # d1 borders r1 and h; edges cross one of those two partitions.
        assert pids <= {"r1", "h"}

    def test_one_way_door_directed_edges(self, one_way_space):
        graph = DoorsGraph.from_space(one_way_space)
        # d21 allows movement r2 -> r1 only, so there is an edge
        # d21 -> dh1 (through r1) but no edge d21 -> dh2 (through r2:
        # entering r2 via d21 is forbidden).
        targets = {t for t, _, _ in graph.adjacency["d21"]}
        assert "dh1" in targets
        assert "dh2" not in targets
        # dh2 (entering r2) may continue to d21 (exiting r2).
        assert "d21" in {t for t, _, _ in graph.adjacency["dh2"]}

    def test_closed_door_removed_from_graph(self, five_rooms):
        five_rooms.door("d12").is_open = False
        five_rooms.topology_version += 1
        graph = DoorsGraph.from_space(five_rooms)
        assert graph.adjacency["d12"] == []
        assert all(
            "d12" not in {t for t, _, _ in edges}
            for edges in graph.adjacency.values()
        )

    def test_rebuild_tracks_topology_version(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        edges_before = graph.num_edges
        five_rooms.door("d12").is_open = False
        five_rooms.topology_version += 1
        graph.ensure_fresh()
        assert graph.num_edges < edges_before


class TestDijkstraFromPoint:
    def test_seeds_from_source_partition(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)  # inside r1
        dd = graph.dijkstra_from_point(q)
        assert dd.source_partition == "r1"
        # Both doors of r1 are seeds with the in-room Euclidean leg.
        d1 = five_rooms.door("d1").midpoint
        assert dd.distance_to("d1") == pytest.approx(q.distance(d1))

    def test_matches_networkx(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        dd = graph.dijkstra_from_point(q)
        nxg = to_networkx(graph)
        nxg.add_node("__q__")
        for door in five_rooms.exit_doors("r1"):
            nxg.add_edge(
                "__q__", door.door_id, weight=q.distance(door.midpoint)
            )
        expected = nx.single_source_dijkstra_path_length(nxg, "__q__")
        for door_id in five_rooms.doors:
            assert dd.distance_to(door_id) == pytest.approx(
                expected.get(door_id, math.inf)
            )

    def test_matches_networkx_on_mall(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        q = small_mall.random_point(seed=3)
        src = small_mall.locate(q).partition_id
        dd = graph.dijkstra_from_point(q, src)
        nxg = to_networkx(graph)
        nxg.add_node("__q__")
        for door in small_mall.exit_doors(src):
            nxg.add_edge(
                "__q__", door.door_id,
                weight=q.distance(door.midpoint, small_mall.floor_height),
            )
        expected = nx.single_source_dijkstra_path_length(nxg, "__q__")
        for door_id in small_mall.doors:
            assert dd.distance_to(door_id) == pytest.approx(
                expected.get(door_id, math.inf)
            )

    def test_cutoff_prunes(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        full = graph.dijkstra_from_point(q)
        reachable_far = [
            d for d in five_rooms.doors if full.distance_to(d) > 10.0
        ]
        assert reachable_far  # sanity: some doors are far
        dd = graph.dijkstra_from_point(q, cutoff=10.0)
        for d in reachable_far:
            assert dd.distance_to(d) == math.inf

    def test_subgraph_restriction(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        # Only allow traversing r1: the hallway-side continuation is cut,
        # so doors of far rooms are unreachable.
        dd = graph.dijkstra_from_point(q, allowed_partitions={"r1"})
        assert dd.distance_to("d3") == math.inf
        # d1 and d12 stay reachable as direct seeds.
        assert math.isfinite(dd.distance_to("d1"))
        assert math.isfinite(dd.distance_to("d12"))

    def test_one_way_detour(self, one_way_space):
        graph = DoorsGraph.from_space(one_way_space)
        q = Point(5, 5, 0)  # in r1
        p = Point(15, 5, 0)  # in r2
        dist = graph.indoor_distance(q, p)
        # The direct d21 door is not usable r1 -> r2; must detour via the
        # hallway, which is strictly longer than the straight line.
        assert dist > q.distance(p)
        # And the reverse direction may use the one-way door directly.
        dist_back = graph.indoor_distance(p, q)
        assert dist_back < dist

    def test_point_outside_raises(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        with pytest.raises(SpaceError):
            graph.dijkstra_from_point(Point(500, 500, 0))

    def test_path_reconstruction(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        dd = graph.dijkstra_from_point(q)
        path = dd.path_to("d3")
        assert path[-1] == "d3"
        assert path[0] in {"d1", "d12"}  # seeds of r1

    def test_path_to_unreachable_raises(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        dd = graph.dijkstra_from_point(Point(5, 5, 0), allowed_partitions={"r1"})
        with pytest.raises(UnreachableError):
            dd.path_to("d3")


class TestDijkstraBetweenDoors:
    def test_source_distance_zero(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        dist = graph.dijkstra_between_doors("d1")
        assert dist["d1"] == 0.0

    def test_matches_networkx(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        some_door = sorted(small_mall.doors)[0]
        got = graph.dijkstra_between_doors(some_door)
        expected = nx.single_source_dijkstra_path_length(
            to_networkx(graph), some_door
        )
        assert set(got) == set(expected)
        for k in got:
            assert got[k] == pytest.approx(expected[k])

    def test_unknown_door_raises(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        with pytest.raises(SpaceError):
            graph.dijkstra_between_doors("nope")


class TestIndoorDistance:
    def test_same_partition_is_euclidean(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        assert graph.indoor_distance(
            Point(1, 1, 0), Point(4, 5, 0)
        ) == pytest.approx(5.0)

    def test_adjacent_rooms_via_door(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q, p = Point(5, 5, 0), Point(15, 5, 0)
        d12 = five_rooms.door("d12").midpoint
        expected_via_door = q.distance(d12) + d12.distance(p)
        assert graph.indoor_distance(q, p) == pytest.approx(expected_via_door)

    def test_triangle_inequality_vs_euclidean(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        for seed in range(5):
            q = small_mall.random_point(seed=seed)
            p = small_mall.random_point(seed=seed + 100)
            indoor = graph.indoor_distance(q, p)
            assert indoor >= q.distance(p, small_mall.floor_height) - 1e-9

    def test_cross_floor_goes_through_staircase(self, two_floor_space):
        graph = DoorsGraph.from_space(two_floor_space)
        q = Point(5, 5, 0)
        p = Point(5, 5, 1)
        dist = graph.indoor_distance(q, p)
        # Must pass through both staircase entrances.
        se0 = two_floor_space.door("se0").midpoint
        se1 = two_floor_space.door("se1").midpoint
        lower_bound = (
            q.distance(two_floor_space.door("dr0").midpoint)
        )
        assert dist > lower_bound
        assert dist >= q.distance(se0) + se0.distance(se1) * 0  # sanity
        assert dist > p.distance(q)  # longer than the virtual straight line
