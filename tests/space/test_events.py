"""Unit tests for topology events (Section III-C / Figure 1's room 21)."""

import math

import pytest

from repro.errors import TopologyError
from repro.geometry import Point, Rect
from repro.space import (
    CloseDoor,
    DoorDirection,
    DoorsGraph,
    MergePartitions,
    OpenDoor,
    SetDoorDirection,
    SpaceBuilder,
    SplitPartition,
)


def hall_with_big_room():
    """A banquet hall (room21) with doors d41/d42 onto a hallway —
    the paper's sliding-wall scenario."""
    b = SpaceBuilder()
    b.add_hallway("hall", Rect(0, 20, 40, 26))
    b.add_room("room21", Rect(0, 0, 40, 20))
    b.connect("room21", "hall", at=Point(8, 20), door_id="d41")
    b.connect("room21", "hall", at=Point(32, 20), door_id="d42")
    return b.build()


class TestSplitPartition:
    def test_split_creates_two_halves(self):
        space = hall_with_big_room()
        result = SplitPartition("room21", axis="x", coord=20.0).apply(space)
        assert "room21" not in space.partitions
        assert {p.partition_id for p in result.added_partitions} == {
            "room21_a", "room21_b",
        }
        assert space.partition("room21_a").footprint == Rect(0, 0, 20, 20)
        assert space.partition("room21_b").footprint == Rect(20, 0, 40, 20)

    def test_doors_reassigned_by_midpoint(self):
        space = hall_with_big_room()
        SplitPartition("room21", axis="x", coord=20.0).apply(space)
        assert space.door("d41").partitions == ("room21_a", "hall")
        assert space.door("d42").partitions == ("room21_b", "hall")

    def test_paper_scenario_distance_grows_after_split(self):
        # Before the sliding wall is mounted, s -> t crosses room21
        # directly; afterwards the path must detour through d41 and d42.
        space = hall_with_big_room()
        s, t = Point(5, 10, 0), Point(35, 10, 0)
        before = DoorsGraph.from_space(space).indoor_distance(s, t)
        SplitPartition("room21", axis="x", coord=20.0).apply(space)
        after = DoorsGraph.from_space(space).indoor_distance(s, t)
        assert before == pytest.approx(s.distance(t))
        assert after > before
        d41 = space.door("d41").midpoint
        assert after >= s.distance(d41)

    def test_split_with_connecting_door(self):
        space = hall_with_big_room()
        result = SplitPartition(
            "room21", axis="x", coord=20.0, connecting_door=True
        ).apply(space)
        new_ids = {d.door_id for d in result.added_doors}
        assert "room21_splitdoor" in new_ids
        door = space.door("room21_splitdoor")
        assert set(door.partitions) == {"room21_a", "room21_b"}
        assert door.midpoint == Point(20, 10, 0)

    def test_custom_new_ids(self):
        space = hall_with_big_room()
        SplitPartition(
            "room21", axis="y", coord=10.0, new_ids=("low", "high")
        ).apply(space)
        assert "low" in space.partitions and "high" in space.partitions

    def test_bad_coord_rejected(self):
        space = hall_with_big_room()
        with pytest.raises(TopologyError):
            SplitPartition("room21", axis="x", coord=99.0).apply(space)

    def test_bad_axis_rejected(self):
        space = hall_with_big_room()
        with pytest.raises(TopologyError):
            SplitPartition("room21", axis="z", coord=10.0).apply(space)

    def test_cannot_split_staircase(self, two_floor_space):
        with pytest.raises(TopologyError):
            SplitPartition("stair", axis="x", coord=22.0).apply(two_floor_space)


class TestMergePartitions:
    def test_merge_restores_rectangle(self):
        space = hall_with_big_room()
        SplitPartition("room21", axis="x", coord=20.0).apply(space)
        result = MergePartitions(("room21_a", "room21_b"), "room21").apply(space)
        assert space.partition("room21").footprint == Rect(0, 0, 40, 20)
        assert {p.partition_id for p in result.removed_partitions} == {
            "room21_a", "room21_b",
        }
        # Doors re-attached to the merged partition.
        assert space.door("d41").partitions == ("room21", "hall")

    def test_merge_drops_internal_door(self):
        space = hall_with_big_room()
        SplitPartition(
            "room21", axis="x", coord=20.0, connecting_door=True
        ).apply(space)
        MergePartitions(("room21_a", "room21_b"), "room21").apply(space)
        assert "room21_splitdoor" not in space.doors

    def test_split_merge_roundtrip_distance(self):
        space = hall_with_big_room()
        s, t = Point(5, 10, 0), Point(35, 10, 0)
        before = DoorsGraph.from_space(space).indoor_distance(s, t)
        SplitPartition("room21", axis="x", coord=20.0).apply(space)
        MergePartitions(("room21_a", "room21_b"), "room21").apply(space)
        after = DoorsGraph.from_space(space).indoor_distance(s, t)
        assert after == pytest.approx(before)

    def test_non_tiling_merge_rejected(self):
        space = hall_with_big_room()
        SplitPartition("room21", axis="x", coord=20.0).apply(space)
        with pytest.raises(TopologyError):
            # A half-room plus the hallway is not a rectangle.
            MergePartitions(("room21_a", "hall")).apply(space)

    def test_cross_floor_merge_rejected(self, two_floor_space):
        with pytest.raises(TopologyError):
            MergePartitions(("room0", "room1")).apply(two_floor_space)


class TestDoorEvents:
    def test_close_door_blocks_path(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        CloseDoor("d1").apply(five_rooms)
        CloseDoor("d12").apply(five_rooms)
        graph.ensure_fresh()
        dd = graph.dijkstra_from_point(q)
        assert dd.distance_to("d3") == math.inf

    def test_close_then_open_restores(self, five_rooms):
        graph = DoorsGraph.from_space(five_rooms)
        q = Point(5, 5, 0)
        before = graph.dijkstra_from_point(q).distance_to("d3")
        CloseDoor("d12").apply(five_rooms)
        OpenDoor("d12").apply(five_rooms)
        graph.ensure_fresh()
        assert graph.dijkstra_from_point(q).distance_to("d3") == pytest.approx(before)

    def test_double_close_rejected(self, five_rooms):
        CloseDoor("d1").apply(five_rooms)
        with pytest.raises(TopologyError):
            CloseDoor("d1").apply(five_rooms)

    def test_double_open_rejected(self, five_rooms):
        with pytest.raises(TopologyError):
            OpenDoor("d1").apply(five_rooms)

    def test_set_direction_one_way(self, five_rooms):
        SetDoorDirection(
            "d12", DoorDirection.ONE_WAY, from_partition="r2"
        ).apply(five_rooms)
        door = five_rooms.door("d12")
        assert door.allows_exit("r2") and not door.allows_exit("r1")

    def test_one_way_needs_from_partition(self, five_rooms):
        with pytest.raises(TopologyError):
            SetDoorDirection("d12", DoorDirection.ONE_WAY).apply(five_rooms)

    def test_back_to_bidirectional(self, five_rooms):
        SetDoorDirection(
            "d12", DoorDirection.ONE_WAY, from_partition="r2"
        ).apply(five_rooms)
        SetDoorDirection("d12", DoorDirection.BIDIRECTIONAL).apply(five_rooms)
        assert five_rooms.door("d12").allows_exit("r1")
