"""Unit tests for repro.space.floorplan (IndoorSpace)."""

import pytest

from repro.errors import SpaceError
from repro.geometry import Point, Rect
from repro.space import Door, IndoorSpace, Partition


def simple_space():
    s = IndoorSpace()
    s.add_partition(Partition("a", Rect(0, 0, 10, 10), 0))
    s.add_partition(Partition("b", Rect(10, 0, 20, 10), 0))
    s.add_door(Door("d", Point(10, 5), ("a", "b")))
    return s


class TestMutation:
    def test_duplicate_partition_rejected(self):
        s = simple_space()
        with pytest.raises(SpaceError):
            s.add_partition(Partition("a", Rect(0, 0, 1, 1), 0))

    def test_duplicate_door_rejected(self):
        s = simple_space()
        with pytest.raises(SpaceError):
            s.add_door(Door("d", Point(10, 2), ("a", "b")))

    def test_door_requires_known_partitions(self):
        s = simple_space()
        with pytest.raises(SpaceError):
            s.add_door(Door("d2", Point(0, 0), ("a", "zzz")))

    def test_add_door_registers_with_partitions(self):
        s = simple_space()
        assert s.partition("a").door_ids == ["d"]
        assert s.partition("b").door_ids == ["d"]

    def test_remove_door_detaches(self):
        s = simple_space()
        s.remove_door("d")
        assert s.partition("a").door_ids == []
        assert "d" not in s.doors
        with pytest.raises(SpaceError):
            s.remove_door("d")

    def test_remove_partition_cascades_doors(self):
        s = simple_space()
        s.remove_partition("a")
        assert "d" not in s.doors
        assert s.partition("b").door_ids == []
        with pytest.raises(SpaceError):
            s.partition("a")

    def test_topology_version_bumps(self):
        s = IndoorSpace()
        v0 = s.topology_version
        s.add_partition(Partition("a", Rect(0, 0, 1, 1), 0))
        assert s.topology_version > v0


class TestAccessors:
    def test_doors_of(self, five_rooms):
        ids = {d.door_id for d in five_rooms.doors_of("r1")}
        assert ids == {"d1", "d12"}

    def test_adjacent_partitions(self, five_rooms):
        assert set(five_rooms.adjacent_partitions("r1")) == {"h", "r2"}
        assert set(five_rooms.adjacent_partitions("h")) == {
            "r1", "r2", "r3", "r4", "r5",
        }

    def test_one_way_adjacency_asymmetric(self, one_way_space):
        # d21 permits r2 -> r1 only.
        assert "r1" in one_way_space.adjacent_partitions("r2")
        assert "r2" not in one_way_space.adjacent_partitions("r1")

    def test_exit_entry_doors_one_way(self, one_way_space):
        r1_exits = {d.door_id for d in one_way_space.exit_doors("r1")}
        r1_entries = {d.door_id for d in one_way_space.entry_doors("r1")}
        assert r1_exits == {"dh1"}
        assert r1_entries == {"dh1", "d21"}

    def test_staircases(self, two_floor_space):
        assert [p.partition_id for p in two_floor_space.staircases()] == ["stair"]

    def test_partitions_on_floor(self, two_floor_space):
        on0 = {p.partition_id for p in two_floor_space.partitions_on_floor(0)}
        assert on0 == {"room0", "hall0", "stair"}
        on1 = {p.partition_id for p in two_floor_space.partitions_on_floor(1)}
        assert on1 == {"room1", "hall1", "stair"}

    def test_num_floors(self, two_floor_space, five_rooms):
        assert two_floor_space.num_floors == 2
        assert five_rooms.num_floors == 1


class TestGeometry:
    def test_bounds(self, five_rooms):
        assert five_rooms.bounds() == Rect(0, 0, 30, 24)

    def test_empty_bounds_raises(self):
        with pytest.raises(SpaceError):
            IndoorSpace().bounds()

    def test_locate(self, five_rooms):
        assert five_rooms.locate(Point(5, 5, 0)).partition_id == "r1"
        assert five_rooms.locate(Point(15, 12, 0)).partition_id == "h"
        assert five_rooms.locate(Point(5, 5, 3)) is None

    def test_intra_distance_same_floor(self, five_rooms):
        assert five_rooms.intra_distance(
            Point(0, 0, 0), Point(3, 4, 0)
        ) == pytest.approx(5.0)

    def test_door_to_door_cross_floor(self, two_floor_space):
        d0 = two_floor_space.door("se0")
        d1 = two_floor_space.door("se1")
        dist = two_floor_space.door_to_door(d0, d1)
        assert dist >= two_floor_space.floor_height

    def test_random_point_is_inside(self, five_rooms):
        for seed in range(10):
            p = five_rooms.random_point(seed=seed)
            assert five_rooms.locate(p) is not None

    def test_random_point_avoids_staircases(self, two_floor_space):
        for seed in range(20):
            p = two_floor_space.random_point(seed=seed)
            part = two_floor_space.locate(p)
            assert part.kind.value != "staircase"


class TestValidation:
    def test_valid_space(self, five_rooms):
        assert five_rooms.validate() == []

    def test_isolated_partition_reported(self):
        s = IndoorSpace()
        s.add_partition(Partition("lonely", Rect(0, 0, 1, 1), 0))
        assert any("no doors" in p for p in s.validate())

    def test_door_floor_mismatch_reported(self):
        s = IndoorSpace()
        s.add_partition(Partition("a", Rect(0, 0, 10, 10), 0))
        s.add_partition(Partition("b", Rect(10, 0, 20, 10), 0))
        s.add_door(Door("d", Point(10, 5, floor=7), ("a", "b")))
        assert any("outside partition" in p for p in s.validate())
