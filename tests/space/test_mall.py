"""Unit tests for the synthetic mall generator."""

import pytest

from repro.errors import SpaceError
from repro.space import DoorsGraph, PartitionKind
from repro.space.mall import MallParameters, build_mall, generate_mall, mall_statistics


class TestStructure:
    def test_default_counts_match_paper_plan(self):
        space = build_mall(floors=1)
        stats = mall_statistics(space)
        assert stats["rooms"] == 100
        assert stats["floors"] == 1
        assert stats["staircases"] == 0  # single floor: no shafts needed

    def test_two_floor_staircases(self):
        space = build_mall(floors=2)
        stats = mall_statistics(space)
        assert stats["staircases"] == 4
        assert stats["floors"] == 2

    def test_multi_floor_shaft_count(self):
        space = build_mall(floors=4, bands=2, rooms_per_band_side=2)
        assert mall_statistics(space)["staircases"] == 4 * 3

    def test_partitions_per_floor_formula(self):
        params = MallParameters(floors=1, bands=3, rooms_per_band_side=4)
        space = generate_mall(params)
        assert len(space.partitions) == params.partitions_per_floor
        assert params.rooms_per_floor == 24

    def test_validates(self, small_mall):
        assert small_mall.validate() == []

    def test_no_partition_overlaps_on_same_floor(self, small_mall):
        """Only stacked shafts of one corner may overlap in plan; every
        other same-floor pair (including room vs staircase) is disjoint."""
        parts = list(small_mall.partitions.values())
        for i, a in enumerate(parts):
            for b in parts[i + 1:]:
                shared_floors = set(
                    range(a.floor, a.upper_floor + 1)
                ) & set(range(b.floor, b.upper_floor + 1))
                if not shared_floors:
                    continue
                both_stairs = (
                    a.kind is PartitionKind.STAIRCASE
                    and b.kind is PartitionKind.STAIRCASE
                )
                if both_stairs:
                    continue  # same-corner shaft stacks legitimately align
                inter = a.bounds.intersection(b.bounds)
                assert inter is None or inter.area == pytest.approx(0.0), (
                    a.partition_id, b.partition_id,
                )


class TestConnectivity:
    def test_every_door_reachable_from_any_room(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        q = small_mall.random_point(seed=0)
        dd = graph.dijkstra_from_point(q)
        unreachable = [
            d for d in small_mall.doors
            if d not in dd.dist
        ]
        assert unreachable == []

    def test_cross_floor_distance_exceeds_floor_height(self, small_mall):
        graph = DoorsGraph.from_space(small_mall)
        q = small_mall.random_point(seed=1)
        p_other = None
        for seed in range(2, 50):
            cand = small_mall.random_point(seed=seed)
            if cand.floor != q.floor:
                p_other = cand
                break
        assert p_other is not None
        dist = graph.indoor_distance(q, p_other)
        assert dist > small_mall.floor_height


class TestParameters:
    def test_bad_parameters_rejected(self):
        with pytest.raises(SpaceError):
            build_mall(floors=0)
        with pytest.raises(SpaceError):
            build_mall(bands=0)
        with pytest.raises(SpaceError):
            build_mall(hallway_width=200.0, floor_size=300.0)

    def test_one_way_fraction(self):
        space = build_mall(
            floors=1, bands=2, rooms_per_band_side=3, floor_size=120.0,
            hallway_width=4.0, one_way_fraction=1.0, seed=1,
        )
        room_doors = [
            d for d in space.doors.values()
            if any(
                space.partition(pid).kind is PartitionKind.ROOM
                for pid in d.partitions
            )
        ]
        assert room_doors
        assert all(d.direction.value == "one_way" for d in room_doors)

    def test_determinism(self):
        a = build_mall(floors=2, seed=5, one_way_fraction=0.3)
        b = build_mall(floors=2, seed=5, one_way_fraction=0.3)
        assert set(a.doors) == set(b.doors)
        for did in a.doors:
            assert a.door(did).direction == b.door(did).direction
