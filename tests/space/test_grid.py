"""Unit tests for the partition grid accelerator."""


from repro.geometry import Point, Rect
from repro.space.grid import PartitionGrid


class TestCandidates:
    def test_point_candidates_match_scan(self, five_rooms):
        grid = PartitionGrid.build(five_rooms, cell_size=5.0)
        for seed in range(20):
            p = five_rooms.random_point(seed=seed)
            via_grid = {c.partition_id for c in grid.candidates_for_point(p)}
            expected = {
                pid for pid, part in five_rooms.partitions.items()
                if part.contains_point(p)
            }
            assert via_grid == expected

    def test_rect_candidates_superset_of_hits(self, five_rooms):
        grid = PartitionGrid.build(five_rooms, cell_size=7.0)
        probe = Rect(8, 4, 12, 12)
        got = {p.partition_id for p in grid.candidates_for_rect(probe, 0)}
        expected = {
            pid for pid, part in five_rooms.partitions.items()
            if part.bounds.intersects(probe)
        }
        assert got == expected

    def test_rect_on_missing_floor(self, five_rooms):
        grid = PartitionGrid.build(five_rooms)
        assert grid.candidates_for_rect(Rect(0, 0, 5, 5), floor=9) == []

    def test_locate_matches_space_locate(self, small_mall):
        grid = PartitionGrid.build(small_mall, cell_size=20.0)
        for seed in range(15):
            p = small_mall.random_point(seed=seed)
            got = grid.locate(p)
            assert got is not None and got.contains_point(p)

    def test_locate_outside(self, five_rooms):
        grid = PartitionGrid.build(five_rooms)
        assert grid.locate(Point(-100, -100, 0)) is None

    def test_staircase_spans_multiple_floors(self, two_floor_space):
        grid = PartitionGrid.build(two_floor_space, cell_size=5.0)
        for floor in (0, 1):
            p = Point(22, 5, floor)
            got = {c.partition_id for c in grid.candidates_for_point(p)}
            assert got == {"stair"}


class TestFreshness:
    def test_rebuild_after_topology_change(self, five_rooms):
        grid = PartitionGrid.build(five_rooms)
        from repro.space import Partition
        five_rooms.add_partition(
            Partition("annex", Rect(30, 0, 40, 10), 0)
        )
        # ensure_fresh is called internally by lookups.
        p = Point(35, 5, 0)
        assert grid.locate(p).partition_id == "annex"

    def test_cell_size_does_not_change_results(self, small_mall):
        coarse = PartitionGrid.build(small_mall, cell_size=100.0)
        fine = PartitionGrid.build(small_mall, cell_size=5.0)
        probe = Rect(20, 20, 60, 60)
        a = {p.partition_id for p in coarse.candidates_for_rect(probe, 0)}
        b = {p.partition_id for p in fine.candidates_for_rect(probe, 0)}
        assert a == b
