"""Crash-restart of the served network layer.

The acceptance story for the durable serving stack: a
:class:`~repro.api.net.ServerThread` with a
:class:`~repro.persist.store.CheckpointStore` is **killed** mid-stream
(connections aborted, no goodbye, no final checkpoint), brought back
with :meth:`~repro.api.net.ServerThread.from_store` on the same port,
and every pre-crash client — resume token minted by the dead process —
reconnects transparently and ends **bit-identical** to a client whose
server never died, and to a from-scratch evaluation of the same
queries.  The fault harness from ``test_net_faults`` composes on top:
a connection that was *already* misbehaving before the crash still
converges after it.
"""

import signal
import time

import pytest

from repro.api.net import NetClient, ServerThread
from repro.api.service import QueryService, ServiceConfig
from repro.api.specs import CountSpec, KNNSpec, ProbRangeSpec, RangeSpec
from repro.api.testing import FlakyTransportFactory
from repro.errors import NetError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import InstanceSet, ObjectPopulation, UncertainObject
from repro.objects.population import ObjectMove
from repro.persist import CheckpointStore


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _build_index(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return CompositeIndex.build(five_rooms, pop)


@pytest.fixture
def service(five_rooms):
    return QueryService(_build_index(five_rooms))


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)

#: The move script driven before and after the crash (absolute
#: positions, so the same script replays onto any twin engine).
PRE_CRASH = [
    [_point_move("far", 6.0, 5.0)],
    [_point_move("mid", 25.0, 5.0)],
    [_point_move("far", 25.0, 5.0)],
]
POST_CRASH = [
    [_point_move("mid", 8.0, 5.0)],
    [_point_move("far", 6.5, 5.0)],
]

SPECS = {
    "kiosk": RangeSpec(Q1, 8.0),
    "board": KNNSpec(Q3, 2),
    "vip": ProbRangeSpec(Q1, 8.0, 0.5),
    "crowd": CountSpec(Q1, 8.0, 2),
}


def _manifest_seqs(store: CheckpointStore) -> list[int]:
    return [e["seq"] for e in store.read_manifest()]


class TestKillRestartResume:
    @pytest.mark.parametrize(
        "config",
        [ServiceConfig(), ServiceConfig(n_shards=2, workers=2)],
        ids=["single", "sharded-parallel"],
    )
    def test_client_resumes_bit_identical(
        self, five_rooms, config, tmp_path
    ):
        """The acceptance path: kill mid-stream, restart from the
        manifest on the same port, reconnected client == uninterrupted
        twin == from-scratch evaluation."""
        service = QueryService(_build_index(five_rooms), config)
        # The uninterrupted twin: same engine, same scripted moves,
        # never crashes.
        twin = QueryService(_build_index(five_rooms), config)
        twin_ids = {
            name: twin.watch(spec, query_id=name)
            for name, spec in SPECS.items()
        }

        store = CheckpointStore(tmp_path)
        st = ServerThread(service, store=store).__enter__()
        host, port = st.address
        client = NetClient(host, port, timeout=5.0)
        client.connect()
        for name, spec in SPECS.items():
            client.watch(spec, query_id=name)
        client.sync()

        for i, moves in enumerate(PRE_CRASH):
            st.ingest(list(moves))
            twin.ingest(list(moves))
            if i == 0:
                st.checkpoint_now()  # later moves live in the WAL
        client.sync()
        st.kill()

        st2 = ServerThread.from_store(store, port=port).__enter__()
        assert st2.recovery.wal_records > 0
        for moves in POST_CRASH:
            st2.ingest(list(moves))
            twin.ingest(list(moves))
        client.poll()
        client.sync()
        assert client.reconnects == 1

        restored = st2.service
        for name in SPECS:
            live = st2.run(restored.result_distances, name)
            assert client.states[name] == live
            assert live == twin.result_distances(twin_ids[name])
        # From-scratch one-shots on the restored engine agree
        # (CountSpec is watch-only; its from-scratch form is the range
        # count).
        assert set(client.states["kiosk"]) == \
            st2.run(restored.run, SPECS["kiosk"]).ids()
        assert set(client.states["board"]) == \
            st2.run(restored.run, SPECS["board"]).ids()
        assert set(client.states["vip"]) == \
            st2.run(restored.run, SPECS["vip"]).ids()
        n_in_range = len(
            st2.run(restored.run, RangeSpec(Q1, 8.0)).objects
        )
        want = {"count": float(n_in_range)} if n_in_range >= 2 else {}
        assert client.states["crowd"] == want

        client.close()
        st2.close()
        service.close()
        restored.close()
        twin.close()

    def test_faulty_connection_then_crash_still_converges(
        self, five_rooms, tmp_path
    ):
        """Compose the PR-6 fault harness with the crash: the client's
        first connection dies to a scripted mid-frame cut, the resumed
        connection then dies to the server kill — two generations of
        resume token, one exact final state."""
        service = QueryService(_build_index(five_rooms))
        store = CheckpointStore(tmp_path)
        st = ServerThread(service, store=store).__enter__()
        host, port = st.address
        factory = FlakyTransportFactory(host, port, faults=("cut",))
        client = NetClient(
            host, port, timeout=2.0, transport_factory=factory
        )
        client.connect()
        client.watch(SPECS["kiosk"], query_id="kiosk")
        client.sync()
        # Trip the scripted cut while the stream flows.
        for i in range(4):
            st.ingest([_point_move("far", 6.0 if i % 2 else 25.0, 5.0)])
            client.poll(timeout=0.1)
        client.sync()
        assert client.reconnects == 1  # the scripted fault fired

        st.checkpoint_now()
        st.kill()
        st2 = ServerThread.from_store(store, port=port).__enter__()
        st2.ingest([_point_move("far", 6.0, 5.0)])
        client.poll()
        client.sync()
        assert client.reconnects == 2  # ...and the crash resume
        assert client.states["kiosk"] == st2.run(
            st2.service.result_distances, "kiosk"
        )
        client.close()
        st2.close()
        service.close()
        st2.service.close()

    def test_kill_preserves_only_durable_state(
        self, five_rooms, tmp_path
    ):
        """kill() cuts no checkpoint: recovery sees exactly the last
        durable point plus the WAL tail, not the in-memory state the
        crash destroyed — and that is still the *same* state, because
        the WAL captured every mutation."""
        service = QueryService(_build_index(five_rooms))
        store = CheckpointStore(tmp_path)
        st = ServerThread(service, store=store).__enter__()
        st.watch(SPECS["kiosk"], query_id="kiosk")
        st.ingest([_point_move("far", 6.0, 5.0)])
        live = st.run(service.result_distances, "kiosk")
        seqs_before = _manifest_seqs(store)
        st.kill()
        assert _manifest_seqs(store) == seqs_before  # no parting cut

        st2 = ServerThread.from_store(store)
        assert st2.recovery.wal_records == 2  # watch + moves
        thread = st2.__enter__()
        assert thread.run(
            thread.service.result_distances, "kiosk"
        ) == live
        thread.close()
        service.close()
        thread.service.close()


class TestDurabilityLifecycle:
    def test_boot_cuts_the_first_durable_point(
        self, service, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        with ServerThread(service, store=store):
            assert _manifest_seqs(store) == [1]
        service.close()

    def test_clean_close_cuts_a_final_checkpoint(
        self, service, tmp_path
    ):
        store = CheckpointStore(tmp_path)
        st = ServerThread(service, store=store).__enter__()
        st.watch(SPECS["kiosk"], query_id="kiosk")
        st.ingest([_point_move("far", 6.0, 5.0)])
        live = st.run(service.result_distances, "kiosk")
        st.close()
        # The close-time cut means recovery replays nothing.
        st2 = ServerThread.from_store(store)
        assert st2.recovery.wal_records == 0
        thread = st2.__enter__()
        assert thread.service.query_ids() == ["kiosk"]
        assert thread.run(
            thread.service.result_distances, "kiosk"
        ) == live
        thread.close()
        service.close()
        thread.service.close()

    def test_periodic_checkpoints_accumulate(self, service, tmp_path):
        store = CheckpointStore(tmp_path)
        with ServerThread(
            service, store=store, checkpoint_every_s=0.05
        ):
            deadline = time.monotonic() + 5.0
            while (
                len(_manifest_seqs(store)) < 2
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
        # keep=2 compaction holds the manifest at two entries while
        # sequence numbers keep climbing (boot + periodic + close).
        seqs = _manifest_seqs(store)
        assert len(seqs) == 2
        assert seqs[-1] >= 3
        service.close()

    def test_sigterm_cuts_a_checkpoint_then_chains(
        self, service, tmp_path
    ):
        hits: list[int] = []
        prev = signal.signal(
            signal.SIGTERM, lambda signum, frame: hits.append(signum)
        )
        try:
            store = CheckpointStore(tmp_path)
            st = ServerThread(
                service, store=store, install_sigterm=True
            ).__enter__()
            before = _manifest_seqs(store)[-1]
            signal.raise_signal(signal.SIGTERM)
            assert hits == [signal.SIGTERM]  # chained to the previous
            assert _manifest_seqs(store)[-1] == before + 1
            # The handler uninstalled itself: a second SIGTERM skips
            # the checkpoint and goes straight through.
            signal.raise_signal(signal.SIGTERM)
            assert hits == [signal.SIGTERM, signal.SIGTERM]
            assert _manifest_seqs(store)[-1] == before + 1
            st.close()
        finally:
            signal.signal(signal.SIGTERM, prev)
        service.close()

    def test_checkpoint_now_requires_a_store(self, service):
        with ServerThread(service) as st:
            with pytest.raises(NetError, match="store"):
                st.checkpoint_now()
        service.close()

    def test_checkpoint_every_requires_a_store(self, service):
        with pytest.raises(NetError, match="store"):
            ServerThread(service, checkpoint_every_s=1.0)
        service.close()

    def test_sessions_ride_the_checkpoint(self, service, tmp_path):
        """The resume-session table is part of every durable point:
        a token minted before the cut is honoured after recovery."""
        store = CheckpointStore(tmp_path)
        st = ServerThread(service, store=store).__enter__()
        host, port = st.address
        client = NetClient(host, port, timeout=5.0)
        client.connect()
        client.watch(SPECS["kiosk"], query_id="kiosk")
        client.sync()
        token = client.token
        st.checkpoint_now()
        st.kill()
        st2 = ServerThread.from_store(store, port=port).__enter__()
        sessions = st2.recovery.extra["net_sessions"]
        assert [s["token"] for s in sessions] == [token]
        assert sessions[0]["watched"] == ["kiosk"]
        client.poll()
        client.sync()
        assert client.token == token  # resumed, not re-helloed
        client.close()
        st2.close()
        service.close()
        st2.service.close()
