"""Fault injection: the serving layer under a misbehaving network.

The invariant, from the module docs: a client either **converges to
the exact live result** (reconnect + snapshot re-prime) or **surfaces
a loud error** — never a silent divergence.  Every scenario here
manufactures one failure with :class:`~repro.api.testing.FlakyTransport`
(mid-frame disconnect, duplicated chunk, stalled read, one-byte
writes), then asserts the client's replayed state equals
``service.result_distances`` bit for bit.
"""

import pytest

from repro.api.net import NetClient, ServerThread
from repro.api.service import QueryService
from repro.api.specs import KNNSpec, RangeSpec
from repro.api.testing import FlakyTransportFactory
from repro.errors import NetError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import InstanceSet, ObjectPopulation, UncertainObject
from repro.objects.population import ObjectMove


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


@pytest.fixture
def service(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return QueryService(CompositeIndex.build(five_rooms, pop))


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)


def _flaky_client(st: ServerThread, *faults: str | None) -> tuple[
    NetClient, FlakyTransportFactory
]:
    host, port = st.address
    factory = FlakyTransportFactory(host, port, faults=faults)
    client = NetClient(
        host, port, timeout=2.0, transport_factory=factory
    )
    return client, factory


def _converges(client: NetClient, st: ServerThread, qid: str) -> None:
    client.sync()
    assert client.states[qid] == st.run(
        st.service.result_distances, qid
    )


class TestRecoverableFaults:
    """One transport fault mid-stream; the client transparently resumes
    and converges to the exact live result."""

    @pytest.mark.parametrize("fault", ["cut", "dup", "stall"])
    def test_fault_then_reconnect_then_exact_state(
        self, service, fault
    ):
        with ServerThread(service) as st:
            client, factory = _flaky_client(st, fault)
            client.connect()
            qid = client.watch(RangeSpec(Q1, 8.0), query_id="kiosk")
            client.sync()
            # Mutations keep flowing; somewhere in here the transport
            # misbehaves and the client must resume behind our back.
            for i in range(6):
                x = 6.0 if i % 2 == 0 else 25.0
                st.ingest([_point_move("far", x, 5.0)])
                client.poll(timeout=0.1)
            _converges(client, st, qid)
            assert client.reconnects == 1
            assert factory.connections == 2  # faulty + clean resume
            # The query was (re-)primed from a snapshot; whether that
            # counts as a "resync" depends on whether the fault tore
            # the original prime, so only convergence is asserted.
            client.close()

    def test_mid_frame_disconnect_drops_the_torn_half(self, service):
        """The frame torn by the cut must not be half-applied: after
        resume the state comes from the re-prime, not the fragment."""
        with ServerThread(service) as st:
            client, _factory = _flaky_client(st, "cut")
            client.connect()
            qid = client.watch(KNNSpec(Q3, 2), query_id="board")
            client.sync()
            st.ingest([_point_move("near", 24.0, 5.0)])
            st.ingest([_point_move("near", 4.0, 5.0)])
            _converges(client, st, qid)
            client.close()

    def test_duplicated_chunk_never_double_applies(self, service):
        """Without sequence numbers a duplicated chunk would silently
        re-apply deltas; with them it is a loud reconnect, and the
        counters prove the double-delivery was actually seen."""
        with ServerThread(service) as st:
            client, factory = _flaky_client(st, "dup")
            client.connect()
            qid = client.watch(RangeSpec(Q1, 8.0))
            client.sync()
            for i in range(6):
                x = 6.0 if i % 2 == 0 else 25.0
                st.ingest([_point_move("far", x, 5.0)])
                client.poll(timeout=0.1)
            _converges(client, st, qid)
            assert factory.transports[0]._armed_fired
            assert client.reconnects == 1
            client.close()

    def test_two_successive_faults_still_converge(self, service):
        with ServerThread(service) as st:
            client, _factory = _flaky_client(st, "cut", "dup")
            client.connect()
            qid = client.watch(RangeSpec(Q1, 8.0))
            client.sync()
            for i in range(10):
                x = 6.0 if i % 2 == 0 else 25.0
                st.ingest([_point_move("far", x, 5.0)])
                client.poll(timeout=0.1)
            _converges(client, st, qid)
            assert client.reconnects == 2
            client.close()

    def test_tiny_writes_are_not_a_fault_at_all(self, service):
        """One-byte client writes: the server's incremental decoder
        reassembles; nothing drops, nothing reconnects."""
        with ServerThread(service) as st:
            client, _factory = _flaky_client(st, "tiny")
            client.connect()
            qid = client.watch(RangeSpec(Q1, 8.0))
            st.ingest([_point_move("far", 6.0, 5.0)])
            _converges(client, st, qid)
            assert client.reconnects == 0
            client.close()


class TestSurfacedErrors:
    """Failures that must NOT be silently retried."""

    def test_reconnect_disabled_surfaces_the_fault(self, service):
        with ServerThread(service) as st:
            client, _factory = _flaky_client(st, "cut")
            client.auto_reconnect = False
            client.connect()
            client.watch(RangeSpec(Q1, 8.0))
            with pytest.raises(NetError, match="connection lost"):
                client.sync()
                st.ingest([_point_move("far", 6.0, 5.0)])
                for _ in range(50):
                    client.poll(timeout=0.05)

    def test_reconnect_budget_exhausts_loudly(self, service):
        with ServerThread(service) as st:
            # Every connection faulty, budget of 2: the client must
            # give up with an error, not spin forever.
            client, _factory = _flaky_client(
                st, *(["cut"] * 10)
            )
            client.max_reconnects = 2
            client.connect()
            client.watch(RangeSpec(Q1, 8.0))
            with pytest.raises(NetError, match="connection lost"):
                client.sync()
                for i in range(50):
                    x = 6.0 if i % 2 == 0 else 25.0
                    st.ingest([_point_move("far", x, 5.0)])
                    client.poll(timeout=0.05)
            assert client.reconnects == 2

    def test_server_error_record_is_never_swallowed(self, service):
        """A server-refused negotiation surfaces even with
        auto-reconnect on: error records are fatal by contract."""
        with ServerThread(service) as st:
            st.watch(RangeSpec(Q1, 6.0), query_id="kiosk")
            client = NetClient(*st.address)  # auto_reconnect=True
            client.connect()
            with pytest.raises(NetError, match="different spec"):
                client.watch(RangeSpec(Q1, 99.0), query_id="kiosk")

    def test_fresh_connection_failure_has_no_token_to_resume(
        self, service
    ):
        """A fault before the hello completes cannot loop: with no
        token there is nothing to resume, so the failure surfaces."""
        with ServerThread(service) as st:
            host, port = st.address
            factory = FlakyTransportFactory(
                host, port, faults=("stall",), after_recvs=0
            )
            client = NetClient(
                host, port, timeout=0.3, transport_factory=factory
            )
            with pytest.raises(NetError):
                client.connect()
