"""The wire protocol's two contracts.

* **Byte-identity** (property-tested): for every record type,
  ``encode_record(decode_record(line)) == line`` byte for byte — the
  canonical encoding admits exactly one serialization per value, so
  feeds can be diffed, deduplicated and content-addressed.
* **Replay fidelity**: a feed written by a live
  :class:`~repro.api.service.QueryService` (moves, insert, delete,
  topology event, late registration, deregistration) decodes and
  replays into exactly the standing queries' live results.
"""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import wire
from repro.api.specs import KNNSpec, ProbRangeSpec, RangeSpec
from repro.api.service import QueryService, ServiceConfig
from repro.errors import WireError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import InstanceSet, ObjectPopulation, UncertainObject
from repro.objects.population import ObjectMove
from repro.queries import DeltaBatch, ResultDelta
from repro.queries.deltas import DELTA_CAUSES
from repro.space.events import CloseDoor

# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------

finite = st.floats(
    allow_nan=False,
    allow_infinity=False,
    width=64,
    min_value=-1e9,
    max_value=1e9,
)
non_negative = st.floats(
    allow_nan=False, allow_infinity=False, min_value=0.0, max_value=1e9
)
points = st.builds(
    Point,
    x=finite,
    y=finite,
    floor=st.integers(min_value=-3, max_value=40),
)
object_ids = st.text(
    alphabet="abco123-_ .é√",  # ascii + a non-ascii spot check
    min_size=1,
    max_size=12,
)
distances = st.one_of(st.none(), non_negative)
specs = st.one_of(
    st.builds(RangeSpec, q=points, r=non_negative),
    st.builds(KNNSpec, q=points, k=st.integers(1, 500)),
    st.builds(
        ProbRangeSpec,
        q=points,
        r=non_negative,
        p_min=st.floats(min_value=0.01, max_value=1.0),
    ),
)
deltas = st.builds(
    ResultDelta,
    query_id=object_ids,
    cause=st.sampled_from(DELTA_CAUSES),
    entered=st.dictionaries(object_ids, distances, max_size=5),
    left=st.lists(object_ids, max_size=5).map(tuple),
    distance_changed=st.dictionaries(object_ids, distances, max_size=5),
    probability_changed=st.dictionaries(
        object_ids,
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
        max_size=5,
    ),
)
records = st.one_of(
    specs,
    deltas,
    st.builds(
        DeltaBatch, deltas=st.lists(deltas, max_size=4).map(tuple)
    ),
    st.builds(wire.WatchRecord, query_id=object_ids, spec=specs),
    st.builds(
        wire.SnapshotRecord,
        query_id=object_ids,
        members=st.dictionaries(object_ids, distances, max_size=6),
    ),
)


class TestByteIdentity:
    @given(record=records)
    @settings(max_examples=200, deadline=None)
    def test_encode_decode_encode_is_byte_identical(self, record):
        line = wire.encode_record(record)
        decoded = wire.decode_record(line)
        assert wire.encode_record(decoded) == line

    @given(record=st.one_of(deltas, specs))
    @settings(max_examples=100, deadline=None)
    def test_decode_inverts_encode_as_values(self, record):
        assert wire.decode_record(wire.encode_record(record)) == record


class TestRejection:
    def test_bad_json_rejected(self):
        with pytest.raises(WireError):
            wire.decode_record("{not json")
        with pytest.raises(WireError):
            wire.decode_record('"just a string"')

    def test_unknown_version_and_type_rejected(self):
        line = wire.encode_record(ResultDelta("q", "move", {"a": 1.0}))
        assert '"v":2' in line  # the current wire version
        with pytest.raises(WireError):
            wire.decode_record(line.replace('"v":2', '"v":99'))
        with pytest.raises(WireError):
            wire.decode_record(
                line.replace('"type":"delta"', '"type":"mystery"')
            )

    def test_non_finite_distance_refused(self):
        with pytest.raises(WireError):
            wire.encode_record(
                ResultDelta("q", "move", {"a": float("inf")})
            )

    def test_boolean_distance_refused_on_decode(self):
        """bool is an int subclass; a JSON `true` distance must fail
        loudly, not decode as 1.0."""
        line = wire.encode_record(ResultDelta("q", "move", {"a": 1.0}))
        with pytest.raises(WireError):
            wire.decode_record(line.replace('"a":1.0', '"a":true'))

    def test_unknown_cause_refused_on_decode(self):
        line = wire.encode_record(ResultDelta("q", "move", {"a": 1.0}))
        with pytest.raises(WireError):
            wire.decode_record(
                line.replace('"cause":"move"', '"cause":"teleport"')
            )

    def test_unencodable_record_refused(self):
        with pytest.raises(WireError):
            wire.encode_record({"not": "a record"})


class TestV1Compatibility:
    """WIRE_VERSION is 2 (the ``prob_changed`` delta field); the
    decoder must keep reading version-1 feeds unchanged."""

    def _as_v1(self, line: str) -> str:
        """Strip a freshly encoded v2 line down to its v1 form."""
        import json

        data = json.loads(line)
        data["v"] = 1

        def strip(body):
            assert body.pop("prob_changed") == {}
            return body

        if data["type"] == "delta":
            strip(data)
        elif data["type"] == "batch":
            data["deltas"] = [strip(b) for b in data["deltas"]]
        return json.dumps(
            data, sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @given(record=records)
    @settings(max_examples=100, deadline=None)
    def test_v1_records_decode(self, record):
        from hypothesis import assume

        # Only records without probability annotations ever existed in
        # v1 feeds.
        if isinstance(record, ResultDelta):
            assume(not record.probability_changed)
        elif isinstance(record, DeltaBatch):
            assume(
                all(not d.probability_changed for d in record.deltas)
            )
        line = wire.encode_record(record)
        assert wire.decode_record(self._as_v1(line)) == \
            wire.decode_record(line)

    def test_v1_delta_decodes_with_empty_probabilities(self):
        line = (
            '{"cause":"move","changed":{"o2":3.5},"entered":{"o1":1.0},'
            '"left":["o3"],"query_id":"kiosk","type":"delta","v":1}'
        )
        delta = wire.decode_record(line)
        assert delta == ResultDelta(
            "kiosk", "move", {"o1": 1.0}, ("o3",), {"o2": 3.5}
        )
        assert delta.probability_changed == {}
        # Re-encoding yields the v2 form of the same value.
        v2 = wire.encode_record(delta)
        assert '"v":2' in v2 and '"prob_changed":{}' in v2
        assert wire.decode_record(v2) == delta

    def test_v1_feed_replays_like_v2(self):
        service_deltas = [
            ResultDelta("q", "register", {"a": 1.0, "b": 2.0}),
            ResultDelta("q", "move", {"c": 3.0}, ("a",), {"b": 1.5}),
            ResultDelta("q", "delete", {}, ("c",)),
        ]
        v2_lines = [wire.encode_record(d) for d in service_deltas]
        v1_lines = [self._as_v1(line) for line in v2_lines]
        want = wire.replay_feed(wire.read_feed(v2_lines))
        assert wire.replay_feed(wire.read_feed(v1_lines)) == want
        assert want == {"q": {"b": 1.5}}

    def test_v2_probability_delta_round_trips(self):
        delta = ResultDelta(
            "vip", "move", {"o1": None}, ("o2",),
            probability_changed={"o3": 0.75},
        )
        line = wire.encode_record(delta)
        assert '"prob_changed":{"o3":0.75}' in line
        decoded = wire.decode_record(line)
        assert decoded == delta
        assert wire.encode_record(decoded) == line
        state = {"o2": 0.9, "o3": 0.5}
        decoded.apply_to(state)
        assert state == {"o1": None, "o3": 0.75}


# ---------------------------------------------------------------------
# live replay fidelity
# ---------------------------------------------------------------------


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


@pytest.fixture
def five_rooms_index(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return CompositeIndex.build(five_rooms, pop)


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)


class TestFeedReplay:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_replayed_feed_equals_live_results(
        self, five_rooms_index, n_shards
    ):
        service = QueryService(
            five_rooms_index, ServiceConfig(n_shards=n_shards)
        )
        a = service.watch(RangeSpec(Q1, 10.0))
        fp = io.StringIO()
        service.attach_feed(fp)  # header covers the pre-existing query
        b = service.watch(KNNSpec(Q3, 2))  # late watch rides the feed
        service.ingest([_point_move("far", 6.0, 6.0)])
        service.insert(_point_object("new", 24.0, 5.0))
        service.ingest([_point_move("near", 21.0, 5.0)])
        service.delete("mid")
        service.apply_event(CloseDoor("d12"))
        service.ingest([_point_move("far", 25.0, 5.0)])

        states = wire.replay_feed(
            wire.read_feed(fp.getvalue().splitlines())
        )
        live = {
            qid: service.result_distances(qid)
            for qid in service.query_ids()
        }
        assert states == live
        assert set(states) == {a, b}

        # Deregistration closes the query on the wire too.
        service.unwatch(a)
        states = wire.replay_feed(
            wire.read_feed(fp.getvalue().splitlines())
        )
        assert set(states) == {b}
        assert states[b] == service.result_distances(b)

    def test_feed_lines_round_trip_byte_identically(
        self, five_rooms_index
    ):
        service = QueryService(five_rooms_index)
        fp = io.StringIO()
        service.attach_feed(fp)
        service.watch(RangeSpec(Q1, 10.0))
        service.ingest([_point_move("far", 6.0, 6.0)])
        lines = fp.getvalue().splitlines()
        assert lines  # watch + register + move records at least
        for line in lines:
            assert wire.encode_record(wire.decode_record(line)) == line

    def test_blank_lines_skipped(self):
        delta = ResultDelta("q", "move", {"a": 1.0})
        text = "\n" + wire.encode_record(delta) + "\n\n"
        assert list(wire.read_feed(text.splitlines())) == [delta]


class TestTornTail:
    """A writer killed mid-record leaves a torn final line; tailing it
    must replay everything before the tear, skip the tear with a
    counter, and still crash loudly on *mid*-feed corruption."""

    LINES = [
        wire.encode_record(ResultDelta("q", "register", {"a": 1.0})),
        wire.encode_record(
            ResultDelta("q", "move", {"b": 2.0}, ("a",))
        ),
    ]

    def test_torn_final_record_skipped_and_counted(self):
        torn = self.LINES + [self.LINES[1][: len(self.LINES[1]) // 2]]
        stats = wire.FeedReadStats()
        records = list(wire.read_feed(torn, stats))
        assert records == list(wire.read_feed(self.LINES))
        assert stats.records == 2
        assert stats.torn_tail == 1
        assert wire.replay_feed(records) == {"q": {"b": 2.0}}

    def test_torn_tail_tolerated_without_stats(self):
        torn = self.LINES + ['{"half a reco']
        assert list(wire.read_feed(torn)) == \
            list(wire.read_feed(self.LINES))

    def test_trailing_blank_lines_after_tear_still_a_tail(self):
        torn = self.LINES + ['{"v":2,"type":"del', "", "  ", ""]
        stats = wire.FeedReadStats()
        assert len(list(wire.read_feed(torn, stats))) == 2
        assert stats.torn_tail == 1

    def test_mid_feed_corruption_still_raises(self):
        corrupt = [self.LINES[0], '{"not a record', self.LINES[1]]
        with pytest.raises(WireError):
            list(wire.read_feed(corrupt))

    def test_intact_feed_counts_no_tear(self):
        stats = wire.FeedReadStats()
        assert len(list(wire.read_feed(self.LINES, stats))) == 2
        assert stats == wire.FeedReadStats(records=2, torn_tail=0)

    def test_replay_feed_surfaces_stats_for_raw_lines(self):
        """One call does it all: raw lines in, folded states out, the
        decode pass (including a skipped tear) observable via stats."""
        torn = self.LINES + ['{"half a reco']
        stats = wire.FeedReadStats()
        assert wire.replay_feed(torn, stats) == {"q": {"b": 2.0}}
        assert stats == wire.FeedReadStats(records=2, torn_tail=1)

    def test_replay_feed_surfaces_stats_for_decoded_records(self):
        records = list(wire.read_feed(self.LINES))
        stats = wire.FeedReadStats()
        assert wire.replay_feed(records, stats) == {"q": {"b": 2.0}}
        assert stats == wire.FeedReadStats(records=2, torn_tail=0)

    def test_live_feed_with_torn_tail_replays_to_live_state(
        self, five_rooms_index
    ):
        """End to end: kill the writer mid-record, tail the feed — the
        replay equals the last fully written state."""
        service = QueryService(five_rooms_index)
        fp = io.StringIO()
        service.attach_feed(fp)
        a = service.watch(RangeSpec(Q1, 10.0))
        service.ingest([_point_move("far", 6.0, 6.0)])
        want = wire.replay_feed(wire.read_feed(
            fp.getvalue().splitlines()
        ))
        # the writer dies 10 bytes into the next record
        torn = fp.getvalue() + wire.encode_record(
            ResultDelta(a, "move", {"x": 1.0})
        )[:10]
        stats = wire.FeedReadStats()
        got = wire.replay_feed(wire.read_feed(
            torn.splitlines(), stats
        ))
        assert got == want
        assert stats.torn_tail == 1

    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_standing_iprq_rides_the_feed(self, five_rooms_index,
                                          n_shards):
        """A watched ProbRangeSpec flows through the v2 wire end to
        end: watch header, probability-annotated deltas, exact replay."""
        service = QueryService(
            five_rooms_index, ServiceConfig(n_shards=n_shards)
        )
        fp = io.StringIO()
        service.attach_feed(fp)
        c = service.watch(ProbRangeSpec(Q1, 10.0, 0.5))
        service.ingest([_point_move("far", 6.0, 6.0)])
        service.insert(_point_object("new", 24.0, 5.0))
        service.delete("mid")
        service.ingest([_point_move("far", 25.0, 5.0)])
        records = list(wire.read_feed(fp.getvalue().splitlines()))
        watches = [
            r for r in records if isinstance(r, wire.WatchRecord)
        ]
        assert any(
            w.query_id == c and w.spec == ProbRangeSpec(Q1, 10.0, 0.5)
            for w in watches
        )
        states = wire.replay_feed(records)
        assert states[c] == service.result_distances(c)

    def test_lossy_subscription_writes_midstream_snapshot(
        self, five_rooms_index
    ):
        """Feed resumption after loss: a bounded subscription shedding
        deltas makes the server emit the query's current result as a
        snapshot record into every attached feed — so a consumer
        resuming at (or joining after) the loss point replays exactly."""
        service = QueryService(five_rooms_index)
        a = service.watch(RangeSpec(Q1, 10.0))
        fp = io.StringIO()
        service.attach_feed(fp)
        sub = service.subscribe(a, snapshot=False, maxlen=1)
        service.ingest([_point_move("far", 6.0, 6.0)])   # queue fills
        service.ingest([_point_move("far", 25.0, 5.0)])  # drops oldest
        service.ingest([_point_move("far", 6.5, 6.0)])   # drops again
        assert sub.dropped == 2
        records = list(wire.read_feed(fp.getvalue().splitlines()))
        snapshots = [
            (i, r)
            for i, r in enumerate(records)
            if isinstance(r, wire.SnapshotRecord) and r.query_id == a
        ]
        # The attach-time header snapshot plus one per lossy publish.
        assert len(snapshots) == 3
        last_index, last_snapshot = snapshots[-1]
        assert last_snapshot.members == service.result_distances(a)
        # A consumer that resumes from the latest snapshot alone — no
        # earlier history — still reconstructs the live result...
        resumed = wire.replay_feed(records[last_index:])
        assert resumed[a] == service.result_distances(a)
        # ...and a full replay remains exact, snapshots included.
        assert wire.replay_feed(records)[a] == \
            service.result_distances(a)

    def test_lossless_runs_write_no_extra_snapshots(
        self, five_rooms_index
    ):
        service = QueryService(five_rooms_index)
        a = service.watch(RangeSpec(Q1, 10.0))
        fp = io.StringIO()
        service.attach_feed(fp)
        service.subscribe(a, snapshot=False)  # unbounded: never drops
        service.ingest([_point_move("far", 6.0, 6.0)])
        service.ingest([_point_move("far", 25.0, 5.0)])
        records = list(wire.read_feed(fp.getvalue().splitlines()))
        snapshots = [
            r for r in records if isinstance(r, wire.SnapshotRecord)
        ]
        assert len(snapshots) == 1  # the attach-time header only
