"""The durable-state subsystem: checkpoint format, service round
trips, and store-driven crash recovery.

The contract under test, from :mod:`repro.persist`: a checkpoint plus
its WAL tail brings a service back **bit-identical** — same results,
same delta sequences from the same subsequent updates, same auto-id
allocation — and every corruption mode is either tolerated exactly
where the design says (one torn final WAL record) or raises
:class:`~repro.errors.PersistError` loudly (digest mismatch, unknown
version, mid-log corruption) with recovery falling back to the
previous manifest entry rather than restoring silently-wrong state.
"""

import json
import random

import pytest

from repro.api.service import QueryService, ServiceConfig
from repro.api.specs import CountSpec, KNNSpec, ProbRangeSpec, RangeSpec
from repro.errors import PersistError, QueryError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import (
    InstanceSet,
    ObjectGenerator,
    ObjectPopulation,
    UncertainObject,
)
from repro.objects.generator import MovementStream
from repro.objects.population import ObjectMove
from repro.persist import (
    CheckpointStore,
    read_checkpoint,
    recover,
    write_checkpoint,
)
from repro.space.events import CloseDoor
from repro.space.mall import build_mall


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


@pytest.fixture
def five_rooms_index(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return CompositeIndex.build(five_rooms, pop)


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)


def _delta_key(delta):
    """Everything a delta says, as a comparable value — bit-identity
    means these match one for one across a checkpoint boundary."""
    return (
        delta.query_id,
        delta.cause,
        dict(delta.entered),
        tuple(delta.left),
        dict(delta.distance_changed),
        dict(delta.probability_changed),
    )


def _batch_keys(batch):
    return [_delta_key(d) for d in batch if not d.is_empty]


def _mall_world(seed=7, n_objects=40):
    space = build_mall(
        floors=2, bands=2, rooms_per_band_side=2, floor_size=100.0,
        hallway_width=4.0, stair_size=10.0, seed=seed,
    )
    gen = ObjectGenerator(space, radius=3.0, n_instances=6, seed=seed)
    pop = gen.generate(n_objects)
    index = CompositeIndex.build(space, pop)
    stream = MovementStream(space, pop, gen, seed=seed)
    return space, stream, index


def _mall_specs(space, seed=7):
    rng = random.Random(seed)
    return [
        RangeSpec(space.random_point(rng=rng), 40.0),
        KNNSpec(space.random_point(rng=rng), 5),
        ProbRangeSpec(space.random_point(rng=rng), 30.0, 0.4),
        CountSpec(space.random_point(rng=rng), 35.0, 2),
    ]


# ---------------------------------------------------------------------
# checkpoint file format
# ---------------------------------------------------------------------


class TestCheckpointFormat:
    def _checkpoint(self, five_rooms_index, tmp_path):
        service = QueryService(five_rooms_index)
        service.watch(RangeSpec(Q1, 8.0), query_id="kiosk")
        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path)
        return path

    def test_file_is_sealed_and_tmp_free(
        self, five_rooms_index, tmp_path
    ):
        path = self._checkpoint(five_rooms_index, tmp_path)
        lines = path.read_text().splitlines()
        tail = json.loads(lines[-1])
        assert tail["type"] == "digest"
        assert tail["records"] == len(lines) - 1
        assert not list(tmp_path.glob("*.tmp"))
        state = read_checkpoint(path)
        assert state.queries[0]["query_id"] == "kiosk"
        assert [o["id"] for o in state.objects] == ["near", "mid", "far"]

    def test_flipped_bit_raises(self, five_rooms_index, tmp_path):
        path = self._checkpoint(five_rooms_index, tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(PersistError, match="digest mismatch"):
            read_checkpoint(path)

    def test_missing_digest_line_is_torn(
        self, five_rooms_index, tmp_path
    ):
        path = self._checkpoint(five_rooms_index, tmp_path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(PersistError, match="torn"):
            read_checkpoint(path)

    def test_truncated_body_raises(self, five_rooms_index, tmp_path):
        path = self._checkpoint(five_rooms_index, tmp_path)
        lines = path.read_text().splitlines()
        del lines[1]  # drop an object record, keep the digest
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError):
            read_checkpoint(path)

    def test_unknown_version_rejected(
        self, five_rooms_index, tmp_path
    ):
        path = self._checkpoint(five_rooms_index, tmp_path)
        state = read_checkpoint(path)
        import repro.persist.checkpoint as cp

        original = cp.CHECKPOINT_VERSION
        cp.CHECKPOINT_VERSION = 99  # writer from the future
        try:
            write_checkpoint(path, state)
        finally:
            cp.CHECKPOINT_VERSION = original
        with pytest.raises(PersistError, match="version"):
            read_checkpoint(path)


# ---------------------------------------------------------------------
# service round trip
# ---------------------------------------------------------------------


class TestServiceRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            ServiceConfig(),
            ServiceConfig(n_shards=4, workers=2),
            ServiceConfig(n_shards=4, workers=2, backend="process"),
        ],
        ids=["single", "sharded-parallel", "sharded-process"],
    )
    def test_restore_is_bit_identical(self, tmp_path, config):
        """Same results, same subsequent delta sequences, same auto-id
        allocation — for single and sharded (parallel) engines, across
        all three builtin maintainers plus the count watch."""
        space, stream, index = _mall_world()
        service = QueryService(index, config)
        ids = [service.watch(s) for s in _mall_specs(space)]
        for _ in range(6):
            service.ingest(list(stream.next_moves(10)))

        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path)
        restored = QueryService.restore(path)

        for qid in ids:
            assert restored.result_distances(qid) == \
                service.result_distances(qid)
        for _ in range(4):
            batch = list(stream.next_moves(10))
            assert _batch_keys(restored.ingest(batch)) == \
                _batch_keys(service.ingest(batch))
        a = service.watch(KNNSpec(space.random_point(seed=5), 3))
        b = restored.watch(KNNSpec(space.random_point(seed=5), 3))
        assert a == b
        service.close()
        restored.close()

    def test_config_override_reshapes_the_engine(self, tmp_path):
        """A single-engine checkpoint restored sharded (and vice
        versa) still lands on the same results — the checkpoint
        captures state, not engine shape."""
        space, stream, index = _mall_world()
        service = QueryService(index)
        ids = [service.watch(s) for s in _mall_specs(space)]
        for _ in range(3):
            service.ingest(list(stream.next_moves(10)))
        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path)
        resharded = QueryService.restore(
            path, config=ServiceConfig(n_shards=3)
        )
        for qid in ids:
            assert resharded.result_distances(qid) == \
                service.result_distances(qid)
        service.close()
        resharded.close()

    def test_count_watch_state_round_trips(
        self, five_rooms_index, tmp_path
    ):
        """The two-layer CountMaintainer state (private membership +
        published count) survives the trip: the next crossing emits
        the right delta, not a phantom re-entry."""
        service = QueryService(five_rooms_index)
        qid = service.watch(CountSpec(Q1, 8.0, 2), query_id="crowd")
        assert service.result_distances(qid) == {"count": 2.0}
        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path)
        restored = QueryService.restore(path)
        assert restored.result_distances(qid) == {"count": 2.0}
        # Drop below threshold on both: identical "left" delta.
        move = _point_move("mid", 25.0, 5.0)
        assert _batch_keys(restored.ingest([move])) == \
            _batch_keys(service.ingest([move]))
        assert restored.result_distances(qid) == {}
        service.close()
        restored.close()

    def test_count_spec_is_watch_only(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        with pytest.raises(QueryError, match="watch"):
            service.run(CountSpec(Q1, 8.0, 2))
        service.close()

    def test_topology_version_survives(
        self, five_rooms_index, tmp_path
    ):
        """A restored engine must not trust pre-event caches: the
        space's topology version rides the checkpoint."""
        service = QueryService(five_rooms_index)
        qid = service.watch(RangeSpec(Q1, 8.0), query_id="kiosk")
        service.apply_event(CloseDoor("d12"))
        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path)
        restored = QueryService.restore(path)
        assert restored.index.space.topology_version == \
            service.index.space.topology_version
        assert restored.result_distances(qid) == \
            service.result_distances(qid)
        service.close()
        restored.close()

    def test_extra_payload_round_trips(
        self, five_rooms_index, tmp_path
    ):
        service = QueryService(five_rooms_index)
        path = tmp_path / "ckpt.jsonl"
        service.checkpoint(path, extra={"net_sessions": [{"token": "t"}]})
        state = read_checkpoint(path)
        assert state.extra == {"net_sessions": [{"token": "t"}]}
        service.close()


# ---------------------------------------------------------------------
# store: manifest, rotation, compaction, recovery
# ---------------------------------------------------------------------


class TestStoreRecovery:
    def _service(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        service.watch(RangeSpec(Q1, 8.0), query_id="kiosk")
        service.watch(KNNSpec(Q3, 2), query_id="board")
        return service

    def test_wal_tail_replays_onto_the_checkpoint(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)
        # Mutations of every kind land in the WAL, not a checkpoint.
        service.ingest([_point_move("far", 6.0, 5.0)])
        service.insert(_point_object("new", 24.0, 5.0))
        service.delete("mid")
        service.apply_event(CloseDoor("d12"))
        watched = service.watch(RangeSpec(Q3, 6.0))

        recovered, report = CheckpointStore(tmp_path).recover()
        assert report.restored_seq == 1
        assert report.wal_records == 5
        assert report.torn_tail == 0
        assert report.fell_back == 0
        for qid in ("kiosk", "board", watched):
            assert recovered.result_distances(qid) == \
                service.result_distances(qid)
        # Replay restored the auto-id counter too.
        assert recovered.watch(KNNSpec(Q1, 1)) == \
            service.watch(KNNSpec(Q1, 1))
        service.close()
        recovered.close()

    def test_corrupt_newest_falls_back_to_previous(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)                      # seq 1
        service.ingest([_point_move("far", 6.0, 5.0)])
        store.checkpoint(service)                  # seq 2
        service.ingest([_point_move("far", 25.0, 5.0)])

        newest = tmp_path / "checkpoint-000002.jsonl"
        raw = bytearray(newest.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        newest.write_bytes(bytes(raw))

        recovered, report = CheckpointStore(tmp_path).recover()
        assert report.fell_back == 1
        assert report.restored_seq == 1
        # Both WAL segments (>= seq 1) replay, so the post-seq-2
        # mutation is not lost with the bad checkpoint.
        assert report.wal_records == 2
        for qid in ("kiosk", "board"):
            assert recovered.result_distances(qid) == \
                service.result_distances(qid)
        service.close()
        recovered.close()

    def test_all_checkpoints_bad_raises(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        CheckpointStore(tmp_path).attach(service)
        path = tmp_path / "checkpoint-000001.jsonl"
        path.write_text(path.read_text()[: path.stat().st_size // 2])
        with pytest.raises(PersistError, match="no readable checkpoint"):
            CheckpointStore(tmp_path).recover()
        service.close()

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(PersistError, match="nothing to recover"):
            CheckpointStore(tmp_path).recover()

    def test_torn_wal_tail_tolerated(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)
        service.ingest([_point_move("far", 6.0, 5.0)])
        pre_tear = service.result_distances("kiosk")
        # The crash interrupts the next append mid-record.
        wal = tmp_path / "wal-000001.jsonl"
        with open(wal, "a", encoding="utf-8") as fp:
            fp.write('{"w":1,"op":"moves","moves":[{"id"')

        recovered, report = CheckpointStore(tmp_path).recover()
        assert report.torn_tail == 1
        assert report.wal_records == 1
        assert recovered.result_distances("kiosk") == pre_tear
        service.close()
        recovered.close()

    def test_mid_wal_corruption_raises(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)
        service.ingest([_point_move("far", 6.0, 5.0)])
        service.ingest([_point_move("far", 25.0, 5.0)])
        wal = tmp_path / "wal-000001.jsonl"
        lines = wal.read_text().splitlines()
        lines[0] = lines[0][: len(lines[0]) // 2]
        wal.write_text("\n".join(lines) + "\n")
        with pytest.raises(PersistError):
            CheckpointStore(tmp_path).recover()
        service.close()

    def test_compaction_keeps_the_last_two(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path, keep=2)
        for i in range(4):
            store.checkpoint(service)
            service.ingest(
                [_point_move("far", 6.0 + i, 5.0)]
            )
        entries = store.read_manifest()
        assert [e["seq"] for e in entries] == [3, 4]
        names = sorted(p.name for p in tmp_path.glob("checkpoint-*"))
        assert names == [
            "checkpoint-000003.jsonl",
            "checkpoint-000004.jsonl",
        ]
        wal_names = sorted(p.name for p in tmp_path.glob("wal-*"))
        assert wal_names == ["wal-000003.jsonl", "wal-000004.jsonl"]
        service.close()

    def test_rotation_is_atomic_with_the_capture(
        self, five_rooms_index, tmp_path
    ):
        """No mutation lands astride a checkpoint: everything before
        the cut is in the old segment (and the snapshot), everything
        after in the new one."""
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)
        service.ingest([_point_move("far", 6.0, 5.0)])
        store.checkpoint(service)
        service.ingest([_point_move("far", 25.0, 5.0)])
        wal1 = (tmp_path / "wal-000001.jsonl").read_text().splitlines()
        wal2 = (tmp_path / "wal-000002.jsonl").read_text().splitlines()
        assert len(wal1) == 1
        assert len(wal2) == 1
        service.close()

    def test_orphan_segment_still_replays(
        self, five_rooms_index, tmp_path
    ):
        """Crash between rotation and manifest append: the new segment
        exists but no manifest entry references it.  Recovery globs by
        sequence number, so its records are not lost."""
        service = self._service(five_rooms_index)
        store = CheckpointStore(tmp_path)
        store.attach(service)                    # seq 1 (manifested)
        manifest = (tmp_path / "MANIFEST.jsonl").read_bytes()
        store.checkpoint(service)                # seq 2
        service.ingest([_point_move("far", 6.0, 5.0)])
        # Undo the manifest append — as if the crash hit before it.
        (tmp_path / "MANIFEST.jsonl").write_bytes(manifest)

        recovered, report = CheckpointStore(tmp_path).recover()
        assert report.restored_seq == 1
        assert report.wal_records == 1  # the orphan wal-000002 record
        assert recovered.result_distances("kiosk") == \
            service.result_distances("kiosk")
        service.close()
        recovered.close()

    def test_recovery_cuts_a_fresh_durable_point(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        CheckpointStore(tmp_path).attach(service)
        service.ingest([_point_move("far", 6.0, 5.0)])
        recovered, report = CheckpointStore(tmp_path).recover()
        assert report.checkpoint_seq == report.restored_seq + 1
        # The fresh cut is immediately recoverable with no WAL tail.
        again, report2 = CheckpointStore(tmp_path).recover()
        assert report2.restored_seq == report.checkpoint_seq
        assert again.result_distances("kiosk") == \
            recovered.result_distances("kiosk")
        service.close()
        recovered.close()
        again.close()

    def test_module_level_recover_shorthand(
        self, five_rooms_index, tmp_path
    ):
        service = self._service(five_rooms_index)
        CheckpointStore(tmp_path).attach(service)
        recovered, report = recover(tmp_path)
        assert report.restored_seq == 1
        assert recovered.result_distances("kiosk") == \
            service.result_distances("kiosk")
        service.close()
        recovered.close()
