"""Unit tests for the declarative query specs: validation at
construction, versioned dict round-trips, and the standing-spec gate."""

import pytest

from repro.api.specs import (
    KNNSpec,
    ProbRangeSpec,
    QuerySpec,
    RangeSpec,
    SPEC_SCHEMA_VERSION,
    spec_from_dict,
    standing_spec,
)
from repro.errors import QueryError
from repro.geometry import Point

Q = Point(5.0, 7.5, 1)


class TestValidation:
    def test_range_spec_rejects_negative_radius(self):
        with pytest.raises(QueryError):
            RangeSpec(Q, -1.0)
        with pytest.raises(QueryError):
            RangeSpec(Q, float("nan"))

    def test_knn_spec_rejects_bad_k(self):
        with pytest.raises(QueryError):
            KNNSpec(Q, 0)
        with pytest.raises(QueryError):
            KNNSpec(Q, 2.5)
        assert KNNSpec(Q, 2.0).k == 2  # integral float is coerced

    def test_prob_range_spec_rejects_bad_threshold(self):
        with pytest.raises(QueryError):
            ProbRangeSpec(Q, 10.0, 0.0)
        with pytest.raises(QueryError):
            ProbRangeSpec(Q, 10.0, 1.5)
        with pytest.raises(QueryError):
            ProbRangeSpec(Q, -1.0, 0.5)

    def test_numeric_fields_canonicalised(self):
        spec = RangeSpec(Q, 10)  # int radius
        assert isinstance(spec.r, float) and spec.r == 10.0

    def test_booleans_are_not_numbers(self):
        # bool is an int subclass; a True radius/k is always a bug.
        with pytest.raises(QueryError):
            RangeSpec(Q, True)
        with pytest.raises(QueryError):
            KNNSpec(Q, True)

    def test_specs_are_hashable_values(self):
        assert RangeSpec(Q, 10) == RangeSpec(Q, 10.0)
        assert len({KNNSpec(Q, 3), KNNSpec(Q, 3)}) == 1


class TestDictRoundTrip:
    SPECS = (
        RangeSpec(Q, 12.5),
        KNNSpec(Q, 4),
        ProbRangeSpec(Q, 30.0, 0.75),
    )

    @pytest.mark.parametrize("spec", SPECS, ids=lambda s: s.kind)
    def test_round_trip(self, spec):
        data = spec.to_dict()
        assert data["v"] == SPEC_SCHEMA_VERSION
        assert data["kind"] == spec.kind
        rebuilt = spec_from_dict(data)
        assert rebuilt == spec
        assert type(rebuilt) is type(spec)
        assert rebuilt.to_dict() == data
        # The classmethod alias dispatches identically.
        assert QuerySpec.from_dict(data) == spec

    def test_int_coordinates_round_trip(self):
        spec = RangeSpec(Point(5, 5, 0), 10)
        rebuilt = spec_from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.to_dict() == spec.to_dict()

    def test_unsupported_version_rejected(self):
        data = RangeSpec(Q, 1.0).to_dict()
        data["v"] = SPEC_SCHEMA_VERSION + 1
        with pytest.raises(QueryError):
            spec_from_dict(data)
        data.pop("v")
        with pytest.raises(QueryError):
            spec_from_dict(data)

    def test_unknown_kind_rejected(self):
        data = RangeSpec(Q, 1.0).to_dict()
        data["kind"] = "irq2"
        with pytest.raises(QueryError):
            spec_from_dict(data)

    def test_malformed_inputs_rejected(self):
        base = RangeSpec(Q, 1.0).to_dict()
        with pytest.raises(QueryError):
            spec_from_dict("irq")
        with pytest.raises(QueryError):
            spec_from_dict(dict(base, q=[1.0, 2.0]))  # 2-d point
        with pytest.raises(QueryError):
            spec_from_dict(dict(base, q=[1.0, 2.0, "up"]))
        with pytest.raises(QueryError):
            spec_from_dict(dict(base, r="wide"))


class TestStandingGate:
    def test_watchable_specs_pass(self):
        spec = RangeSpec(Q, 5.0)
        assert standing_spec(spec) is spec
        assert standing_spec(KNNSpec(Q, 2)).k == 2
        # iPRQ is watchable since the maintainer layer landed.
        prob = ProbRangeSpec(Q, 5.0, 0.5)
        assert standing_spec(prob) is prob

    def test_unwatchable_spec_rejected(self):
        class OneShotSpec(RangeSpec):
            watchable = False

        with pytest.raises(QueryError):
            standing_spec(OneShotSpec(Q, 5.0))

    def test_non_spec_rejected(self):
        with pytest.raises(QueryError):
            standing_spec(("irq", Q, 5.0))
