"""The network serving layer's contracts, fault-free.

* **Framing**: arbitrary read boundaries reassemble; duplicated,
  reordered, oversized or torn frames raise
  :class:`~repro.errors.FramingError` (the property suite widens this).
* **Serving**: negotiation (watch by spec, by id, both), the snapshot
  prime, live deltas, the ping/pong drain barrier, heartbeats, idle
  teardown, server-side deregistration, and error surfacing.
* **Resume**: a disconnected client presenting its token is re-acked
  and re-primed to the exact live result.
* **Backpressure**: a connection that sheds deltas re-primes in-band
  from a snapshot and still converges exactly.

Every convergence check is the strong form: the client's replayed
state is compared against ``service.result_distances`` (annotations
included), not just membership.
"""

import asyncio
import time

import pytest

from repro.api import wire
from repro.api.framing import (
    ByeRecord,
    ErrorRecord,
    FrameDecoder,
    FrameEncoder,
    HeartbeatRecord,
    HelloRecord,
    PingRecord,
    PongRecord,
    ResumeRequest,
    WatchRequest,
    decode_net_record,
    encode_net_record,
)
from repro.api.net import AsyncNetClient, NetClient, NetServer, ServerThread
from repro.api.service import QueryService
from repro.api.specs import KNNSpec, ProbRangeSpec, RangeSpec
from repro.errors import FramingError, NetError, WireError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import InstanceSet, ObjectPopulation, UncertainObject
from repro.objects.population import ObjectMove
from repro.queries import ResultDelta


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


@pytest.fixture
def service(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return QueryService(CompositeIndex.build(five_rooms, pop))


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)


# ---------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------


class TestFraming:
    def test_frames_reassemble_across_any_boundaries(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        payloads = ["alpha", "", "beta\nwith\nnewlines", "γδε"]
        data = b"".join(enc.encode(p) for p in payloads)
        # one byte at a time
        out = []
        for i in range(len(data)):
            out.extend(dec.feed(data[i:i + 1]))
        assert out == payloads
        assert dec.partial_bytes == 0
        # and all at once
        dec2 = FrameDecoder()
        assert dec2.feed(data) == payloads

    def test_duplicated_frame_is_a_sequence_violation(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        frame = enc.encode("hello")
        dec.feed(frame)
        with pytest.raises(FramingError, match="sequence violation"):
            dec.feed(frame)

    def test_skipped_frame_is_a_sequence_violation(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        enc.encode("lost")
        second = enc.encode("arrives")
        with pytest.raises(FramingError, match="sequence violation"):
            dec.feed(second)

    def test_bad_header_rejected(self):
        with pytest.raises(FramingError, match="bad frame header"):
            FrameDecoder().feed(b"garbage without at-sign\n")
        with pytest.raises(FramingError, match="bad frame header"):
            FrameDecoder().feed(b"@1 notanumber\n")

    def test_oversized_length_rejected_without_buffering(self):
        with pytest.raises(FramingError, match="ceiling"):
            FrameDecoder().feed(b"@0 99999999999\n")

    def test_runaway_header_rejected(self):
        with pytest.raises(FramingError, match="header terminator"):
            FrameDecoder().feed(b"@" + b"1" * 100)

    def test_missing_terminator_rejected(self):
        enc = FrameEncoder()
        frame = bytearray(enc.encode("abc"))
        frame[-1] = ord("X")  # clobber the trailing newline
        with pytest.raises(FramingError, match="newline-terminated"):
            FrameDecoder().feed(bytes(frame))

    def test_torn_tail_stays_pending(self):
        enc, dec = FrameEncoder(), FrameDecoder()
        frame = enc.encode("complete")
        torn = enc.encode("torn in half")
        assert dec.feed(frame + torn[: len(torn) // 2]) == ["complete"]
        assert dec.partial_bytes > 0  # EOF here = torn tail, detectable


class TestControlRecords:
    RECORDS = [
        HelloRecord(),
        HelloRecord("tok-1", heartbeat_s=2.0),
        WatchRequest(RangeSpec(Q1, 60.0), "kiosk"),
        WatchRequest(None, "kiosk"),
        WatchRequest(KNNSpec(Q3, 3), None),
        ResumeRequest("tok-1"),
        HeartbeatRecord(7),
        PingRecord(41),
        PongRecord(41),
        ErrorRecord("boom"),
        ByeRecord(),
    ]

    @pytest.mark.parametrize(
        "record", RECORDS, ids=lambda r: type(r).__name__
    )
    def test_round_trip_and_byte_identity(self, record):
        line = encode_net_record(record)
        decoded = decode_net_record(line)
        assert decoded == record
        assert encode_net_record(decoded) == line

    def test_data_records_pass_through_to_wire(self):
        delta = ResultDelta("kiosk", "move", {"o1": 1.5}, ("o2",))
        line = encode_net_record(delta)
        assert line == wire.encode_record(delta)
        assert decode_net_record(line) == delta

    def test_versioned_like_the_wire(self):
        line = encode_net_record(PingRecord(1))
        assert f'"v":{wire.WIRE_VERSION}' in line
        with pytest.raises(WireError, match="version"):
            decode_net_record(line.replace('"v":2', '"v":99'))

    def test_missing_field_rejected(self):
        with pytest.raises(WireError, match="missing"):
            decode_net_record('{"type":"ping","v":2}')


# ---------------------------------------------------------------------
# serving
# ---------------------------------------------------------------------


class TestServing:
    def test_watch_prime_deltas_and_barrier(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            assert client.token is not None
            assert client.state.heartbeat_s == st.server.heartbeat_s
            qid = client.watch(RangeSpec(Q1, 6.0), query_id="kiosk")
            assert qid == "kiosk"
            client.sync()  # snapshot prime has arrived
            assert client.states[qid] == st.run(
                service.result_distances, qid
            )
            st.ingest([_point_move("far", 6.0, 5.0)])
            st.ingest([_point_move("mid", 25.0, 5.0)])
            client.sync()
            assert client.states[qid] == st.run(
                service.result_distances, qid
            )
            assert set(client.states[qid]) == {"near", "far"}
            # ...and equals a fresh one-shot evaluation.
            want = st.run(service.run, RangeSpec(Q1, 6.0))
            assert set(client.states[qid]) == set(want.ids())
            client.close()

    def test_watch_existing_query_by_id(self, service):
        with ServerThread(service) as st:
            qid = st.watch(KNNSpec(Q3, 2), query_id="board")
            client = NetClient(*st.address)
            client.connect()
            assert client.watch(query_id=qid) == qid
            client.sync()
            assert client.watched[qid] == KNNSpec(Q3, 2)
            assert client.states[qid] == st.run(
                service.result_distances, qid
            )
            client.close()

    def test_one_connection_many_queries(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            a = client.watch(RangeSpec(Q1, 6.0))
            b = client.watch(KNNSpec(Q3, 2))
            c = client.watch(ProbRangeSpec(Q1, 10.0, 0.5))
            st.ingest([_point_move("far", 6.0, 5.0)])
            client.sync()
            for qid in (a, b, c):
                assert client.states[qid] == st.run(
                    service.result_distances, qid
                )
            client.close()

    def test_server_side_unwatch_closes_the_query(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            qid = client.watch(RangeSpec(Q1, 6.0))
            client.sync()
            assert qid in client.states
            st.unwatch(qid)
            client.sync()
            assert qid not in client.states
            assert qid not in client.watched
            client.close()

    def test_watch_spec_mismatch_surfaces_error(self, service):
        with ServerThread(service) as st:
            st.watch(RangeSpec(Q1, 6.0), query_id="kiosk")
            client = NetClient(*st.address)
            client.connect()
            with pytest.raises(NetError, match="different spec"):
                client.watch(RangeSpec(Q1, 99.0), query_id="kiosk")

    def test_watch_nothing_rejected(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            with pytest.raises(NetError):
                client.watch()  # neither spec nor id
            client.close()

    def test_heartbeats_flow_while_idle(self, service):
        with ServerThread(service, heartbeat_s=0.05) as st:
            client = NetClient(*st.address)
            client.connect()
            client.watch(RangeSpec(Q1, 6.0))
            deadline = time.monotonic() + 5.0
            while (
                client.state.heartbeats_seen < 2
                and time.monotonic() < deadline
            ):
                client.poll(timeout=0.05)
            assert client.state.heartbeats_seen >= 2
            client.close()

    def test_idle_connection_torn_down(self, service):
        with ServerThread(
            service, heartbeat_s=0.05, idle_timeout_s=0.2
        ) as st:
            client = NetClient(*st.address, auto_reconnect=False)
            client.connect()  # never watches anything
            with pytest.raises(NetError, match="idle"):
                deadline = time.monotonic() + 5.0
                while time.monotonic() < deadline:
                    client.poll(timeout=0.05)
            assert st.server.stats.idle_teardowns == 1

    def test_resume_reprimes_to_live_state(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            qid = client.watch(RangeSpec(Q1, 6.0))
            client.sync()
            client.disconnect()  # no goodbye: session stays resumable
            # the world moves on while the client is gone
            st.ingest([_point_move("far", 6.0, 5.0)])
            st.ingest([_point_move("near", 25.0, 5.0)])
            client.reconnect()
            client.sync()
            assert client.states[qid] == st.run(
                service.result_distances, qid
            )
            assert client.state.resyncs >= 1  # the re-prime snapshot
            assert st.server.stats.resumes == 1
            client.close()

    def test_resume_of_deregistered_query_closes_it(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            qid = client.watch(RangeSpec(Q1, 6.0))
            client.sync()
            client.disconnect()
            st.unwatch(qid)
            client.reconnect()
            client.sync()
            assert qid not in client.states
            client.close()

    def test_unknown_resume_token_is_refused(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address, auto_reconnect=False)
            client.state.token = "never-issued"
            with pytest.raises(NetError):
                client.connect()

    def test_bye_ends_the_session(self, service):
        with ServerThread(service) as st:
            client = NetClient(*st.address)
            client.connect()
            token = client.token
            client.close()  # polite: the session is forgotten
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if token not in st.run(
                    lambda: dict(st.server._sessions)
                ):
                    break
                time.sleep(0.01)
            fresh = NetClient(*st.address, auto_reconnect=False)
            fresh.state.token = token
            with pytest.raises(NetError):
                fresh.connect()

    def test_backpressure_drop_reprimes_in_band(self, service):
        with ServerThread(service, maxlen=2) as st:
            client = NetClient(*st.address)
            client.connect()
            qid = client.watch(RangeSpec(Q1, 8.0))
            client.sync()

            def burst():
                # Back-to-back sync mutations on the loop thread: the
                # pump cannot run between them, so the maxlen=2 queue
                # must shed deltas.  Each move flips membership (in at
                # x=6, out at x=25), so every ingest publishes one.
                for i in range(8):
                    x = 6.0 if i % 2 == 0 else 25.0
                    service.ingest([_point_move("far", x, 5.0)])
                    service.ingest([_point_move("mid", x, 5.0)])

            st.run(burst)
            client.sync()
            assert client.states[qid] == st.run(
                service.result_distances, qid
            )
            assert client.state.resyncs >= 1
            client.close()

    def test_server_close_says_bye(self, service):
        st = ServerThread(service)
        st.__enter__()
        client = NetClient(*st.address)
        client.connect()
        client.watch(RangeSpec(Q1, 6.0))
        st.close()
        deadline = time.monotonic() + 5.0
        while (
            not client.state.server_said_bye
            and time.monotonic() < deadline
        ):
            client.poll(timeout=0.05)
        assert client.state.server_said_bye


# ---------------------------------------------------------------------
# the async client
# ---------------------------------------------------------------------


class TestAsyncClient:
    def test_watch_stream_sync_and_resume(self, service):
        async def scenario():
            server = NetServer(service)
            await server.start()
            client = AsyncNetClient(*server.address)
            await client.connect()
            qid = await client.watch(RangeSpec(Q1, 6.0))
            await client.sync()
            assert client.states[qid] == service.result_distances(qid)

            await service.server.apply_moves(
                [_point_move("far", 6.0, 5.0)]
            )
            await client.sync()
            assert client.states[qid] == service.result_distances(qid)
            assert set(client.states[qid]) == {"near", "mid", "far"}

            # resume: drop without bye, mutate, reconnect, converge
            await client.aclose(say_bye=False)
            await service.server.apply_moves(
                [_point_move("far", 25.0, 5.0)]
            )
            await client.resume()
            await client.sync()
            assert client.states[qid] == service.result_distances(qid)
            assert client.reconnects == 1

            await client.aclose()
            await server.aclose()

        asyncio.run(scenario())

    def test_async_iteration_sees_typed_records(self, service):
        async def scenario():
            server = NetServer(service)
            await server.start()
            client = AsyncNetClient(*server.address)
            await client.connect()
            await client.watch(RangeSpec(Q1, 6.0), query_id="kiosk")
            await service.server.apply_moves(
                [_point_move("far", 6.0, 5.0)]
            )
            kinds = []
            async for record in client:
                kinds.append(type(record).__name__)
                if isinstance(record, ResultDelta):
                    break
            # The watch ack is folded inside watch() itself; iteration
            # sees what follows: the prime, then the live delta.
            assert kinds[0] == "SnapshotRecord"
            assert kinds[-1] == "ResultDelta"
            assert client.states["kiosk"] == \
                service.result_distances("kiosk")
            await client.aclose()
            await server.aclose()

        asyncio.run(scenario())
