"""QueryService façade tests: run/watch/subscribe/ingest against the
legacy entry points for all three spec kinds, the single id-claiming
guard, ServiceConfig engine selection, and feed plumbing."""

import asyncio

import pytest

from repro.api.service import QueryService, ServiceConfig
from repro.api.specs import KNNSpec, ProbRangeSpec, RangeSpec
from repro.errors import QueryError
from repro.geometry import Circle, Point
from repro.index import CompositeIndex
from repro.objects import (
    InstanceSet,
    MovementStream,
    ObjectGenerator,
    ObjectPopulation,
    UncertainObject,
)
from repro.objects.population import ObjectMove
from repro.queries import (
    QueryMonitor,
    QuerySession,
    ShardedMonitor,
    iPRQ,
    iRQ,
    ikNNQ,
    replay_deltas,
)
from repro.space.events import CloseDoor


def _point_object(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return UncertainObject(object_id, Circle(p, 0.0), InstanceSet.single(p))


def _point_move(object_id: str, x: float, y: float, floor: int = 0):
    p = Point(x, y, floor)
    return ObjectMove(object_id, Circle(p, 0.0), InstanceSet.single(p))


@pytest.fixture
def five_rooms_index(five_rooms):
    pop = ObjectPopulation(five_rooms)
    pop.insert(_point_object("near", 4.0, 5.0))
    pop.insert(_point_object("mid", 8.0, 5.0))
    pop.insert(_point_object("far", 25.0, 5.0))
    return CompositeIndex.build(five_rooms, pop)


@pytest.fixture
def mall_setup(small_mall):
    gen = ObjectGenerator(small_mall, radius=3.0, n_instances=10, seed=77)
    pop = gen.generate(40)
    index = CompositeIndex.build(small_mall, pop)
    return index, gen, pop


Q1 = Point(5.0, 5.0, 0)
Q3 = Point(25.0, 5.0, 0)


class TestRun:
    """run(spec) is bit-identical to the legacy one-shot entry points."""

    def test_range_spec_matches_irq(self, mall_setup, small_mall):
        index, _gen, _pop = mall_setup
        service = QueryService(index)
        for seed, r in ((1, 25.0), (2, 40.0), (3, 60.0)):
            q = small_mall.random_point(seed=seed)
            got = service.run(RangeSpec(q, r))
            assert got.ids() == iRQ(q, r, index).ids()
            # ...and bit-identical to the session path it wraps.
            want = QuerySession(index).irq(q, r)
            assert got.distances == want.distances

    def test_knn_spec_matches_iknnq(self, mall_setup, small_mall):
        index, _gen, _pop = mall_setup
        service = QueryService(index)
        for seed, k in ((1, 3), (2, 5), (4, 8)):
            q = small_mall.random_point(seed=seed)
            got = service.run(KNNSpec(q, k))
            assert got.ids() == ikNNQ(q, k, index).ids()
            want = QuerySession(index).iknnq(q, k)
            assert got.distances == want.distances

    def test_prob_range_spec_matches_iprq(self, mall_setup, small_mall):
        index, _gen, _pop = mall_setup
        service = QueryService(index)
        q = small_mall.random_point(seed=5)
        got = service.run(ProbRangeSpec(q, 30.0, 0.5))
        want = iPRQ(q, 30.0, 0.5, index)
        assert got.ids() == want.ids()
        assert got.distances == want.distances

    def test_run_shares_the_session_cache(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        service.run(RangeSpec(Q1, 10.0))
        assert service.session.misses == 1
        service.run(KNNSpec(Q1, 2))  # same point: cache hit
        assert service.session.hits == 1

    def test_unknown_spec_rejected(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        with pytest.raises(QueryError):
            service.run(("irq", Q1, 10.0))


class TestWatchAndIngest:
    """watch + ingest maintain results bit-identical to a legacy
    QueryMonitor driven with the same mutations."""

    @pytest.mark.parametrize("n_shards", [1, 3])
    def test_matches_legacy_monitor(self, mall_setup, small_mall,
                                    n_shards):
        index, gen, pop = mall_setup
        # Twin world for the legacy monitor (streams mutate the index).
        gen2 = ObjectGenerator(
            small_mall, radius=3.0, n_instances=10, seed=77
        )
        pop2 = gen2.generate(40)
        index2 = CompositeIndex.build(small_mall, pop2)
        legacy = QueryMonitor(index2)

        service = QueryService(index, ServiceConfig(n_shards=n_shards))
        qa, qb = (small_mall.random_point(seed=s) for s in (11, 12))
        a = service.watch(RangeSpec(qa, 30.0))
        b = service.watch(KNNSpec(qb, 4))
        la = legacy.register(RangeSpec(qa, 30.0))
        lb = legacy.register(KNNSpec(qb, 4))

        stream = MovementStream(small_mall, pop, gen, seed=5)
        for _ in range(4):
            moves = stream.next_moves(12)
            service.ingest(moves)
            legacy.apply_moves(moves)
            assert service.result_distances(a) == \
                legacy.result_distances(la)
            assert service.result_distances(b) == \
                legacy.result_distances(lb)

        obj = gen.generate_one()
        service.insert(obj)
        legacy.apply_insert(obj)
        victim = sorted(index.population.ids())[0]
        service.delete(victim)
        legacy.apply_delete(victim)
        assert service.result_distances(a) == legacy.result_distances(la)
        assert service.result_distances(b) == legacy.result_distances(lb)

    def test_watch_prob_range_spec(self, five_rooms_index, five_rooms):
        """Standing iPRQ end to end through the façade: watch, ingest,
        delete — membership tracks the one-shot iPRQ after every
        mutation and the feed replays to the live result."""
        from repro.baselines import NaiveEvaluator
        from repro.queries import iPRQ

        service = QueryService(five_rooms_index)
        c = service.watch(ProbRangeSpec(Q1, 10.0, 0.5))
        assert service.query_spec(c) == ProbRangeSpec(Q1, 10.0, 0.5)
        service.ingest([_point_move("far", 6.0, 6.0)])
        assert service.result_ids(c) == iPRQ(
            Q1, 10.0, 0.5, five_rooms_index
        ).ids()
        service.delete("mid")
        oracle = NaiveEvaluator(five_rooms, five_rooms_index.population)
        assert service.result_ids(c) == \
            oracle.prob_range_query(Q1, 10.0, 0.5)

    def test_unwatch_and_introspection(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        a = service.watch(RangeSpec(Q1, 10.0), query_id="kiosk")
        assert a == "kiosk" and a in service and len(service) == 1
        assert service.query_ids() == ["kiosk"]
        assert service.query_spec(a) == RangeSpec(Q1, 10.0)
        assert service.result_ids(a) == {"near", "mid"}
        assert service.results() == {"kiosk": {"near", "mid"}}
        service.unwatch(a)
        assert a not in service
        with pytest.raises(QueryError):
            service.result_ids(a)

    def test_topology_event_resyncs(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        a = service.watch(RangeSpec(Q1, 6.0))
        assert service.result_ids(a) == {"near", "mid"}
        result = service.apply_event(CloseDoor("d12"))
        assert result is not None
        assert service.stats.topology_invalidations >= 1
        # Results stay correct under the new topology.
        assert service.result_ids(a) == iRQ(
            Q1, 6.0, service.index
        ).ids()


class TestIdClaiming:
    def test_duplicate_explicit_id_rejected(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        service.watch(RangeSpec(Q1, 10.0), query_id="kiosk")
        with pytest.raises(QueryError):
            service.watch(KNNSpec(Q3, 2), query_id="kiosk")

    def test_generated_ids_skip_claimed(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        service.watch(RangeSpec(Q1, 10.0), query_id="irq-1")
        auto = service.watch(RangeSpec(Q1, 12.0))
        assert auto != "irq-1" and len(service) == 2

    def test_cross_shard_collision_rejected(self, five_rooms_index):
        """The satellite bugfix end to end: an id claimed directly on a
        shard monitor cannot be re-claimed through the service."""
        service = QueryService(five_rooms_index, ServiceConfig(n_shards=2))
        assert isinstance(service.monitor, ShardedMonitor)
        home = service.monitor.shard_of(Q3)
        service.monitor.shards[home].register(
            RangeSpec(Q3, 5.0), query_id="rogue"
        )
        with pytest.raises(QueryError):
            service.watch(RangeSpec(Q1, 5.0), query_id="rogue")

    def test_claim_validates_spec(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        with pytest.raises(QueryError):
            service.claim_query_id("x", ("irq", Q1, 5.0))
        # A watchable iPRQ spec claims its own kind prefix.
        assert service.claim_query_id(
            None, ProbRangeSpec(Q1, 5.0, 0.5)
        ).startswith("iprq-")


class TestServiceConfig:
    def test_single_monitor_by_default(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        assert isinstance(service.monitor, QueryMonitor)
        assert service.routing is None

    def test_sharded_engine_selected(self, five_rooms_index):
        config = ServiceConfig(
            n_shards=3, workers=2, bucketed_router=False
        )
        with QueryService(five_rooms_index, config) as service:
            assert isinstance(service.monitor, ShardedMonitor)
            assert service.monitor.n_shards == 3
            assert service.monitor.workers == 2
            assert not service.monitor.bucketed_router
            assert service.routing is not None

    def test_invalid_config_rejected(self):
        with pytest.raises(QueryError):
            ServiceConfig(n_shards=0)
        with pytest.raises(QueryError):
            ServiceConfig(workers=0)
        with pytest.raises(QueryError):
            ServiceConfig(maxlen=0)

    def test_config_maxlen_is_subscription_default(
        self, five_rooms_index
    ):
        service = QueryService(five_rooms_index, ServiceConfig(maxlen=2))
        a = service.watch(RangeSpec(Q1, 10.0))
        bounded = service.subscribe(a, snapshot=False)
        unbounded = service.subscribe(a, snapshot=False, maxlen=None)
        assert bounded.maxlen == 2
        assert unbounded.maxlen is None
        for i in range(6):
            # In and out of range alternately: one delta per ingest.
            x = 6.0 if i % 2 == 0 else 25.0
            service.ingest([_point_move("far", x, 5.0)])
        assert bounded.pending <= 2
        assert unbounded.dropped == 0 and unbounded.pending == 6
        assert service.deltas_dropped == bounded.dropped > 0

    def test_closed_service_rejects_work(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        a = service.watch(RangeSpec(Q1, 10.0))
        service.close()
        with pytest.raises(QueryError):
            service.ingest([_point_move("far", 6.0, 6.0)])
        with pytest.raises(QueryError):
            service.watch(RangeSpec(Q1, 5.0))
        with pytest.raises(QueryError):
            service.subscribe(a)


class TestSubscribe:
    def test_subscribe_by_spec_registers_and_primes(
        self, five_rooms_index
    ):
        async def run():
            service = QueryService(five_rooms_index)
            sub = service.subscribe(RangeSpec(Q1, 10.0))
            assert sub.query_id in service
            delta = await sub.next_delta()
            assert delta.cause == "snapshot"
            assert set(delta.entered) == {"near", "mid"}

        asyncio.run(run())

    def test_subscription_replays_to_live_result(self, five_rooms_index):
        async def run():
            service = QueryService(five_rooms_index)
            sub = service.subscribe(KNNSpec(Q1, 2))
            qid = sub.query_id
            service.ingest([_point_move("far", 6.0, 6.0)])
            service.ingest([_point_move("far", 25.0, 5.0)])
            service.delete("mid")
            service.close()  # ends the stream so the fold terminates
            seen = []
            async for delta in sub:
                seen.append(delta)
            assert replay_deltas(seen) == service.result_distances(qid)

        asyncio.run(run())

    def test_serve_reports_drops(self, mall_setup, small_mall):
        """ServeReport surfaces the dropped total (the satellite)."""
        index, gen, pop = mall_setup
        service = QueryService(index)
        q = small_mall.random_point(seed=11)
        # A kNN feed churns every batch (member moves re-refine stored
        # distances), so a maxlen=1 queue must shed continuously.
        sub = service.subscribe(
            KNNSpec(q, 4), snapshot=False, maxlen=1
        )
        stream = MovementStream(small_mall, pop, gen, seed=5)

        async def run():
            return await service.serve(stream, n_batches=6, batch_size=15)

        report = asyncio.run(run())
        assert report.batches == 6
        assert report.deltas_published > 0
        # The never-drained maxlen=1 queue sheds all but the newest.
        assert report.deltas_dropped == sub.dropped
        assert sub.dropped > 0 and sub.pending == 1

    def test_subscribe_unknown_id_rejected(self, five_rooms_index):
        service = QueryService(five_rooms_index)
        with pytest.raises(QueryError):
            service.subscribe("nope")
