"""Property-based tests for the R*-tree: randomized insert/delete
workloads must stay consistent with brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box3
from repro.index import RStarTree, str_bulk_load

coord = st.floats(0, 100, allow_nan=False, allow_infinity=False)
size = st.floats(0.1, 10, allow_nan=False, allow_infinity=False)


@st.composite
def boxes(draw):
    x, y = draw(coord), draw(coord)
    z = draw(st.sampled_from([0.0, 4.0, 8.0]))
    w, h = draw(size), draw(size)
    return Box3(x, y, z, x + w, y + h, z + 0.01)


@st.composite
def workloads(draw):
    """A list of (op, item) steps: insert new items, delete live ones."""
    n = draw(st.integers(1, 60))
    items = [(i, draw(boxes())) for i in range(n)]
    deletions = draw(
        st.lists(st.integers(0, n - 1), max_size=n // 2, unique=True)
    )
    return items, deletions


class TestRandomWorkloads:
    @given(workloads(), st.sampled_from([4, 6, 20]))
    @settings(max_examples=40, deadline=None)
    def test_contents_and_invariants(self, workload, fanout):
        items, deletions = workload
        tree = RStarTree(fanout=fanout)
        for i, b in items:
            tree.insert(i, b)
        for i in deletions:
            assert tree.delete(i, items[i][1])
        alive = {i for i, _ in items} - set(deletions)
        assert set(tree) == alive
        assert tree.validate() == []

    @given(workloads(), boxes())
    @settings(max_examples=40, deadline=None)
    def test_search_matches_brute_force(self, workload, probe):
        items, deletions = workload
        tree = RStarTree(fanout=6)
        for i, b in items:
            tree.insert(i, b)
        for i in deletions:
            tree.delete(i, items[i][1])
        alive = [(i, b) for i, b in items if i not in set(deletions)]
        expected = sorted(i for i, b in alive if b.intersects(probe))
        assert sorted(tree.items_in_box(probe)) == expected

    @given(st.lists(boxes(), min_size=1, max_size=80), boxes())
    @settings(max_examples=40, deadline=None)
    def test_bulk_load_matches_brute_force(self, box_list, probe):
        items = list(enumerate(box_list))
        tree = str_bulk_load(items, fanout=8)
        expected = sorted(i for i, b in items if b.intersects(probe))
        assert sorted(tree.items_in_box(probe)) == expected
        assert sorted(tree) == [i for i, _ in items]

    @given(st.lists(boxes(), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_bulk_then_dynamic(self, box_list):
        """A bulk-loaded tree must survive subsequent dynamic updates."""
        items = list(enumerate(box_list))
        tree = str_bulk_load(items, fanout=6)
        extra = Box3(0, 0, 0, 1, 1, 0.01)
        for j in range(5):
            tree.insert(1000 + j, extra)
        for i, b in items[: len(items) // 2]:
            assert tree.delete(i, b)
        expected = {i for i, _ in items[len(items) // 2:]} | {
            1000 + j for j in range(5)
        }
        assert set(tree) == expected
        assert tree.validate(check_fill=False) == []
